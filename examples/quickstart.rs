//! Quickstart: a three-node dependable distributed OSGi cluster.
//!
//! Deploys one customer's virtual OSGi instance, serves requests through
//! it, crashes its host node and watches the platform redeploy it — the
//! paper's headline capability, in ~40 lines.
//!
//! Run with: `cargo run -p dosgi-core --example quickstart`

use dosgi_core::{migration, workloads, ClusterConfig, DosgiCluster};
use dosgi_net::SimDuration;
use dosgi_san::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three nodes, LAN links, shared SAN, default policies, seed 42.
    let mut cluster = DosgiCluster::new(3, ClusterConfig::default(), 42);
    cluster.run_for(SimDuration::from_millis(500)); // group forms

    // One customer: a stateless web instance that shares the host's log
    // service through the explicit-export delegating loader (Fig. 4).
    cluster.deploy(workloads::web_instance("acme", "acme-web"), 0)?;
    cluster.run_for(SimDuration::from_millis(500));
    println!(
        "deployed acme-web on node {}",
        cluster.home_of("acme-web").unwrap()
    );

    // Serve a few requests.
    for i in 1..=3 {
        let out = cluster.call(
            "acme-web",
            workloads::WEB_SERVICE,
            "handle",
            &Value::map().with("work_us", 300i64),
        )?;
        println!(
            "request {i}: status={} served={}",
            out.get("status").and_then(Value::as_int).unwrap_or(0),
            out.get("served").and_then(Value::as_int).unwrap_or(0)
        );
    }

    // Kill the host node. The group communication layer detects the crash,
    // the survivors agree on a new view, and the deterministic placement
    // redeploys the instance from its SAN-persisted state.
    let crash_at = cluster.now();
    println!("\ncrashing node 0 at {crash_at} …");
    cluster.crash_node(0);
    cluster.run_for(SimDuration::from_secs(3));

    let new_home = cluster.home_of("acme-web").expect("failed over");
    let events = cluster.take_events();
    let latency =
        migration::failover_latency(&events, "acme-web", crash_at).expect("failover observed");
    println!("acme-web redeployed on node {new_home} after {latency}");

    // And it serves again.
    let out = cluster.call("acme-web", workloads::WEB_SERVICE, "handle", &Value::Null)?;
    println!(
        "post-failover request: status={}",
        out.get("status").and_then(Value::as_int).unwrap_or(0)
    );
    let rec = cluster.sla().record("acme-web");
    println!(
        "availability so far: {:.4} ({} outage, longest {})",
        rec.availability(),
        rec.outages,
        rec.longest_outage
    );
    Ok(())
}
