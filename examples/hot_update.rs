//! Run-time evolution: the OSGi promise the paper's introduction leans on.
//!
//! > *"adding new functionality to an existing system could be achieved by
//! > adding a new bundle (or changing an existing one) without disrupting
//! > the production environment."*
//!
//! A customer's instance keeps serving while (1) a brand-new bundle is
//! hot-installed into it and (2) an existing bundle is updated to a new
//! version in place. A `ServiceTracker` watches the churn the way a real
//! consumer would.
//!
//! Run with: `cargo run -p dosgi-core --example hot_update`

use dosgi_core::workloads;
use dosgi_osgi::{
    CallContext, FnActivator, Framework, ManifestBuilder, ServiceError, ServiceTracker, Version,
};
use dosgi_san::Value;
use dosgi_vosgi::{InstanceDescriptor, InstanceManager};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mgr = InstanceManager::new(
        Framework::new("host"),
        workloads::standard_repository(),
        workloads::standard_factory(),
    );

    // Provision a new bundle + activator into the node's repository.
    mgr.repository_mut().add(
        ManifestBuilder::new("org.acme.search", Version::new(1, 0, 0))
            .private_package("org.acme.search.impl", ["Index"])
            .build()?,
    );
    mgr.factory_mut().register("org.acme.search", |m| {
        let version = m.version;
        Box::new(FnActivator::on_start(move |ctx| {
            ctx.register_service(
                &["org.acme.search.Search"],
                BTreeMap::new(),
                Box::new(
                    move |_: &mut CallContext<'_>, method: &str, _: &Value| match method {
                        "version" => Ok(Value::from(version.to_string())),
                        m => Err(ServiceError::Failed(format!("no {m}"))),
                    },
                ),
            );
            Ok(())
        }))
    });

    // The customer's instance starts with just the web bundle.
    let id = mgr.create_instance(
        InstanceDescriptor::builder("acme", "acme-prod")
            .bundle(workloads::WEB_BUNDLE)
            .build(),
    )?;
    mgr.start_instance(id)?;

    let mut tracker = ServiceTracker::new("org.acme.search.Search");
    tracker.open(mgr.instance(id).unwrap().framework().registry());
    println!("serving; search services tracked: {}", tracker.len());

    // 1. Hot-install the search bundle — no restart of anything else.
    let before = mgr
        .call_service(id, workloads::WEB_SERVICE, "handle", &Value::Null)?
        .get("served")
        .and_then(Value::as_int)
        .unwrap_or(0);
    mgr.install_bundle(id, "org.acme.search")?;
    for e in mgr
        .instance_mut(id)
        .unwrap()
        .framework_mut()
        .take_service_events()
    {
        tracker.on_event(mgr.instance(id).unwrap().framework().registry(), &e);
    }
    println!(
        "hot-installed search v{} (tracked: {}); web already served {} requests and keeps going",
        mgr.call_service(id, "org.acme.search.Search", "version", &Value::Null)?,
        tracker.len(),
        before
    );

    // 2. Hot-update the search bundle to 2.0.0.
    mgr.update_bundle(
        id,
        "org.acme.search",
        ManifestBuilder::new("org.acme.search", Version::new(2, 0, 0))
            .private_package("org.acme.search.impl", ["Index", "Ranker"])
            .build()?,
    )?;
    for e in mgr
        .instance_mut(id)
        .unwrap()
        .framework_mut()
        .take_service_events()
    {
        tracker.on_event(mgr.instance(id).unwrap().framework().registry(), &e);
    }
    let (added, removed) = tracker.churn();
    println!(
        "hot-updated search to v{} (tracker saw {added} registrations, {removed} removals)",
        mgr.call_service(id, "org.acme.search.Search", "version", &Value::Null)?
    );

    // The web bundle never blinked.
    let after = mgr
        .call_service(id, workloads::WEB_SERVICE, "handle", &Value::Null)?
        .get("served")
        .and_then(Value::as_int)
        .unwrap_or(0);
    println!("web served counter continued uninterrupted: {before} -> {after}");
    assert_eq!(after, before + 1);
    Ok(())
}
