//! Multi-tenant SLA enforcement: the Autonomic Module in action.
//!
//! Two customers share a node. One stays within its SLA; the other is a
//! CPU hog. The default policy script
//! ([`dosgi_core::autonomic::DEFAULT_POLICY`]) detects the sustained
//! overuse through the Monitoring Module and migrates the offender to
//! another node — §3.3's *"swap it, if possible, to a suitable node"*.
//!
//! Run with: `cargo run -p dosgi-core --example multi_tenant_sla`

use dosgi_core::{workloads, ClusterConfig, DosgiCluster, NodeEvent};
use dosgi_net::SimDuration;
use dosgi_san::Value;
use dosgi_vosgi::ResourceQuota;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cluster = DosgiCluster::new(3, ClusterConfig::default(), 7);
    cluster.run_for(SimDuration::from_millis(500));

    // Both tenants get a small CPU quota: 100 ms of CPU per second.
    let tame = dosgi_vosgi::InstanceDescriptor::builder("tame-corp", "tame-web")
        .bundle(workloads::WEB_BUNDLE)
        .quota(ResourceQuota::small())
        .build();
    let hog = dosgi_vosgi::InstanceDescriptor::builder("hog-corp", "hog-web")
        .bundle(workloads::WEB_BUNDLE)
        .quota(ResourceQuota::small())
        .build();
    cluster.deploy(tame, 0)?;
    cluster.deploy(hog, 0)?;
    cluster.run_for(SimDuration::from_millis(500));
    println!(
        "tame-web on node {}, hog-web on node {}",
        cluster.home_of("tame-web").unwrap(),
        cluster.home_of("hog-web").unwrap()
    );

    // Drive load for 5 simulated seconds: the tame tenant asks for ~50ms
    // CPU/s, the hog for ~400ms CPU/s — 4x its quota.
    for _ in 0..50 {
        let _ = cluster.call(
            "tame-web",
            workloads::WEB_SERVICE,
            "handle",
            &Value::map().with("work_us", 5_000i64),
        );
        for _ in 0..4 {
            let _ = cluster.call(
                "hog-web",
                workloads::WEB_SERVICE,
                "handle",
                &Value::map().with("work_us", 10_000i64),
            );
        }
        cluster.run_for(SimDuration::from_millis(100));
    }
    cluster.run_for(SimDuration::from_secs(3));

    // The autonomic module observed the sustained violation and migrated
    // the hog; the tame tenant was untouched.
    println!();
    for (node, event) in cluster.take_events() {
        if let NodeEvent::PolicyFired { at, decision } = event {
            println!("{at} {node}: policy fired: {decision}");
        }
    }
    println!(
        "\nafter enforcement: tame-web on node {:?}, hog-web on node {:?}",
        cluster.home_of("tame-web"),
        cluster.home_of("hog-web")
    );
    assert_eq!(
        cluster.home_of("tame-web"),
        Some(0),
        "tame tenant untouched"
    );
    assert_ne!(cluster.home_of("hog-web"), Some(0), "hog migrated away");
    println!("SLA enforcement migrated the noisy tenant; the tame one never moved.");
    Ok(())
}
