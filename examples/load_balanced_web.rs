//! Service localization with shared IPs and ipvs (Figure 6).
//!
//! A web service runs as three replicas behind one shared virtual IP. The
//! fault-tolerant ipvs director load-balances clients across the replicas,
//! survives a backend crash (rerouting its connections) and survives the
//! crash of the *director itself* via VIP takeover by its standby — the
//! paper's "scale the service performance beyond the performance of a
//! single node" claim.
//!
//! Run with: `cargo run -p dosgi-core --example load_balanced_web`

use dosgi_ipvs::{replicated_service, FaultTolerantIpvs, IpvsDirector, Scheduler};
use dosgi_net::{IpAddr, IpBindings, NodeId, Port, SocketAddr};

fn main() {
    let vip = SocketAddr::new(IpAddr::new(10, 0, 0, 100), Port(80));
    let backends = [NodeId(10), NodeId(11), NodeId(12)];

    let mut director = IpvsDirector::new();
    director.add_service(replicated_service(vip, Scheduler::RoundRobin, &backends));
    // Director pair on nodes 0/1 with connection synchronization on.
    let mut ipvs = FaultTolerantIpvs::new(NodeId(0), NodeId(1), director, true);
    let mut bindings = IpBindings::new();
    ipvs.bind_vips(&mut bindings);
    println!(
        "VIP {} answered by director {}",
        vip,
        bindings.owner_of(vip.ip).unwrap()
    );

    // 300 clients connect: the scheduler spreads them evenly.
    for client in 0..300u64 {
        ipvs.connect(client, vip).expect("routable");
    }
    for b in backends {
        println!(
            "backend {b}: {} connections",
            ipvs.director().routed_to(vip, b)
        );
    }

    // A backend dies: its connections are broken, new ones avoid it.
    println!("\nbackend n11 crashes …");
    let broken = ipvs.director_mut().node_down(NodeId(11));
    println!("{broken} connections broken, rerouting clients …");
    for client in 0..300u64 {
        let node = ipvs.connect(client, vip).expect("rerouted");
        assert_ne!(node, NodeId(11));
    }
    println!(
        "post-crash distribution: n10={} n12={}",
        ipvs.director().routed_to(vip, NodeId(10)),
        ipvs.director().routed_to(vip, NodeId(12))
    );

    // The active director dies: the standby takes over the VIP; with
    // connection sync, clients keep their backends.
    println!("\ndirector {} crashes …", ipvs.active());
    ipvs.fail_active(&mut bindings);
    println!(
        "VIP {} now answered by director {} ({} failover)",
        vip,
        bindings.owner_of(vip.ip).unwrap(),
        ipvs.failovers()
    );
    let before = ipvs.connect(7, vip).unwrap();
    println!("client 7 still reaches backend {before} (affinity preserved by sync)");
    println!(
        "\ntotals: routed={} rejected={} tracked={}",
        ipvs.director().stats().routed,
        ipvs.director().stats().rejected,
        ipvs.director().stats().tracked
    );
}
