//! Dependability under failure: stateful services, graceful shutdown and
//! crash failover side by side.
//!
//! Shows the §3.2 state-migration semantics concretely:
//!
//! * a **graceful** migration (operator-initiated or node shutdown)
//!   persists the running context — nothing is lost;
//! * a **crash** loses the running context; only SAN-persisted state
//!   survives, so the write-through counter variant keeps its count while
//!   the persist-on-stop baseline restarts from its last checkpoint.
//!
//! Run with: `cargo run -p dosgi-core --example failover_cluster`

use dosgi_core::{workloads, ClusterConfig, DosgiCluster};
use dosgi_net::SimDuration;
use dosgi_san::Value;

fn count(c: &mut DosgiCluster, name: &str) -> i64 {
    c.call(name, workloads::COUNTER_SERVICE, "get", &Value::Null)
        .ok()
        .and_then(|v| v.as_int())
        .unwrap_or(-1)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five nodes: after two crashes the three survivors still form a
    // majority, so failover stays permitted (primary-component rule).
    let mut cluster = DosgiCluster::new(5, ClusterConfig::default(), 99);
    cluster.run_for(SimDuration::from_millis(500));

    // Two stateful counters with different durability strategies.
    cluster.deploy(workloads::counter_instance("bank", "ledger-baseline"), 0)?;
    cluster.deploy(
        workloads::counter_instance_with("bank", "ledger-wt", workloads::COUNTER_WRITE_THROUGH),
        0,
    )?;
    cluster.run_for(SimDuration::from_millis(500));

    for _ in 0..10 {
        cluster.call(
            "ledger-baseline",
            workloads::COUNTER_SERVICE,
            "incr",
            &Value::Null,
        )?;
        cluster.call(
            "ledger-wt",
            workloads::COUNTER_SERVICE,
            "incr",
            &Value::Null,
        )?;
    }
    println!(
        "before any failure: baseline={} write-through={}",
        count(&mut cluster, "ledger-baseline"),
        count(&mut cluster, "ledger-wt")
    );

    // 1. Graceful migration: nothing is lost either way.
    cluster.migrate("ledger-baseline", 1)?;
    cluster.run_for(SimDuration::from_secs(2));
    println!(
        "after graceful migration to node {}: baseline={} (context persisted on stop)",
        cluster.home_of("ledger-baseline").unwrap(),
        count(&mut cluster, "ledger-baseline")
    );

    // 2. Crash the node hosting both counters' SAN-visible state? No —
    //    crash ledger-wt's host: write-through survives; then crash the
    //    baseline's host: its post-migration increments are lost.
    for _ in 0..5 {
        cluster.call(
            "ledger-baseline",
            workloads::COUNTER_SERVICE,
            "incr",
            &Value::Null,
        )?;
        cluster.call(
            "ledger-wt",
            workloads::COUNTER_SERVICE,
            "incr",
            &Value::Null,
        )?;
    }
    let wt_home = cluster.home_of("ledger-wt").unwrap();
    println!("\ncrashing node {wt_home} (hosts ledger-wt) …");
    cluster.crash_node(wt_home);
    cluster.run_for(SimDuration::from_secs(3));
    println!(
        "ledger-wt after crash failover: {} of 15 (write-through lost nothing)",
        count(&mut cluster, "ledger-wt")
    );

    let base_home = cluster.home_of("ledger-baseline").unwrap();
    println!("\ncrashing node {base_home} (hosts ledger-baseline) …");
    cluster.crash_node(base_home);
    cluster.run_for(SimDuration::from_secs(3));
    println!(
        "ledger-baseline after crash failover: {} of 15 \
         (running context since the last orderly stop is gone — the paper's §3.2 caveat)",
        count(&mut cluster, "ledger-baseline")
    );

    let rec_wt = cluster.sla().record("ledger-wt");
    let rec_base = cluster.sla().record("ledger-baseline");
    println!(
        "\navailability: ledger-wt {:.4}, ledger-baseline {:.4}",
        rec_wt.availability(),
        rec_base.availability()
    );
    Ok(())
}
