#!/usr/bin/env bash
# The repeatable CI entrypoint. The workspace is hermetic: every dependency
# is an in-tree path crate, so everything here must succeed with an empty
# cargo registry cache and no network. If any step ever needs the registry,
# that is a policy violation (see README.md "Hermetic build policy") and a
# bug in the change that introduced it.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> SAN backend conformance (golden fixtures x every backend)"
cargo run --offline --release -p dosgi-bench --bin san_conformance

echo "==> chaos sweep (seeded nemesis schedules + replay verification)"
scripts/chaos.sh

echo "==> e15 overload knee (admission on/off + policy reaction + flash-crowd chaos)"
cargo run --offline --release -p dosgi-bench --bin e15_overload

echo "==> e16 slo burn-rate alerting (lead-time race + alert-driven policy + bounded series)"
cargo run --offline --release -p dosgi-bench --bin e16_slo

echo "==> e14 hot swap (blackout vs migration + rolling wave under traffic)"
cargo run --offline --release -p dosgi-bench --bin e14_hot_swap

echo "==> e13 real-clock throughput (ops/sec vs threads; >=2.5x at 4 threads)"
cargo run --offline --release -p dosgi-bench --bin e13_throughput

echo "==> telemetry snapshot schema check"
cargo run --offline --release -p dosgi-bench --bin telemetry_check

echo "==> causal trace check (zero happens-before violations over the sweep)"
cargo run --offline --release -p dosgi-bench --bin trace_check
cargo run --offline --release -p dosgi-bench --bin trace_check results/trace_e14_hot_swap.json

echo "==> perf guard (e5 migration SAN bytes + e15 admission hot path + e14 blackout vs committed baselines)"
cargo run --offline --release -p dosgi-bench --bin perf_guard

echo "==> verifying zero registry dependencies"
if cargo metadata --format-version 1 --offline \
    | grep -o '"source":"[^"]*"' | grep -v '"source":""' | grep -q 'registry'; then
  echo "ERROR: registry dependency detected; this workspace must stay path-only" >&2
  cargo metadata --format-version 1 --offline \
    | grep -o '"name":"[^"]*","version":"[^"]*","id":"[^"]*registry[^"]*"' >&2 || true
  exit 1
fi

echo "All checks passed."
