#!/usr/bin/env bash
# Seeded chaos sweep: nemesis schedules against the full stack, invariant
# checks, and byte-identical replay verification (each seed runs with
# telemetry on and off; the fingerprints must match). Deterministic — a
# failure here is a real protocol bug, and the bin prints the exact
# CHAOS_SEED0=... one-liner that reproduces it plus, per failing seed, the
# path of the results/trace_chaos_s<seed>.json causal trace; the
# results/telemetry_chaos.json snapshot holds the sweep's metrics and
# spans.
#
# Every seed also replays on every other registered SAN backend and must
# fingerprint identically — storage conformance is part of the sweep.
#
# Overrides: CHAOS_SEEDS (schedules, default 10), CHAOS_SEED0 (first seed),
# CHAOS_NODES (cluster size), CHAOS_FAULTS (faults per schedule),
# CHAOS_BACKEND (primary SAN backend: `map` default, or `log`; the others
# cross-check it).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> chaos sweep (release)"
if ! cargo run --offline --release -p dosgi-bench --bin chaos; then
  echo "chaos sweep FAILED — reproducer + causal trace path above;" >&2
  echo "telemetry snapshot: $(pwd)/results/telemetry_chaos.json" >&2
  exit 1
fi
