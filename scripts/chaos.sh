#!/usr/bin/env bash
# Seeded chaos sweep: nemesis schedules against the full stack, invariant
# checks, and byte-identical replay verification. Deterministic — a failure
# here is a real protocol bug, and the bin prints the exact
# CHAOS_SEED0=... one-liner that reproduces it.
#
# Overrides: CHAOS_SEEDS (schedules, default 10), CHAOS_SEED0 (first seed),
# CHAOS_NODES (cluster size), CHAOS_FAULTS (faults per schedule).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> chaos sweep (release)"
cargo run --offline --release -p dosgi-bench --bin chaos
