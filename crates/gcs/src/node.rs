//! The per-node protocol engine: failure detection, view agreement,
//! reliable FIFO broadcast and sequencer-based total order.

use crate::{GcsConfig, GcsWire, Transport, View, ViewId};
use dosgi_net::{NodeId, SimTime};
use dosgi_telemetry::{Telemetry, TraceContext};
use std::collections::{BTreeMap, BTreeSet};

/// Events a [`GroupNode`] delivers to the layer above.
#[derive(Debug, Clone, PartialEq)]
pub enum GcsEvent<A> {
    /// A new membership view was installed.
    ViewChange {
        /// The installed view.
        view: View,
        /// Members present now but not before.
        joined: Vec<NodeId>,
        /// Members present before but not now — the trigger for the paper's
        /// failover redeployment.
        left: Vec<NodeId>,
    },
    /// A reliable-FIFO message.
    Deliver {
        /// The sender.
        from: NodeId,
        /// The payload.
        payload: A,
    },
    /// A totally-ordered message. All members of a stable view deliver
    /// these in the same `gseq` order.
    OrderedDeliver {
        /// The global sequence number (per sequencer epoch).
        gseq: u64,
        /// The original sender.
        origin: NodeId,
        /// The payload.
        payload: A,
        /// The origin's causal trace context, if the flow was traced
        /// (carried opaquely: GCS never inspects or alters it).
        trace: Option<TraceContext>,
    },
}

/// One node's endpoint of the group.
///
/// Drive it with [`handle`](Self::handle) for every incoming wire message
/// and [`tick`](Self::tick) periodically (at least once per heartbeat
/// interval); collect outputs with [`take_events`](Self::take_events).
#[derive(Debug)]
pub struct GroupNode<A> {
    id: NodeId,
    peers: Vec<NodeId>,
    config: GcsConfig,

    // Failure detection.
    incarnation: u64,
    peer_incarnations: BTreeMap<NodeId, u64>,
    last_heard: BTreeMap<NodeId, SimTime>,
    last_hb_sent: Option<SimTime>,
    departed: BTreeSet<NodeId>,

    // View agreement.
    view: View,
    proposal: Option<Proposal>,

    // Reliable FIFO.
    send_seq: u64,
    send_buffer: BTreeMap<u64, A>,
    recv_next: BTreeMap<NodeId, u64>,
    recv_ooo: BTreeMap<NodeId, BTreeMap<u64, A>>,
    last_nack: BTreeMap<NodeId, SimTime>,

    // Total order.
    order_seq: u64,
    pending_orders: BTreeMap<u64, (A, Option<TraceContext>)>,
    pending_last_sent: Option<SimTime>,
    gseq_counter: u64,
    assigned: BTreeMap<(NodeId, u64, u64), u64>,
    ordered_buffer: BTreeMap<u64, (NodeId, u64, u64, A, Option<TraceContext>)>,
    expected_gseq: u64,
    ordered_ooo: BTreeMap<u64, (NodeId, u64, u64, A, Option<TraceContext>)>,
    delivered_orders: BTreeSet<(NodeId, u64, u64)>,
    last_order_nack: Option<SimTime>,

    events: Vec<GcsEvent<A>>,
    telemetry: Telemetry,
}

#[derive(Debug)]
struct Proposal {
    view: View,
    acks: BTreeSet<NodeId>,
    last_sent: SimTime,
}

impl<A: Clone> GroupNode<A> {
    /// Creates a node for `id` in a fixed universe of `peers` (which must
    /// include `id`). The initial view optimistically contains every peer;
    /// the failure detector prunes it within a suspicion timeout.
    ///
    /// # Panics
    ///
    /// Panics if `peers` does not contain `id`.
    pub fn new(id: NodeId, peers: Vec<NodeId>, config: GcsConfig, now: SimTime) -> Self {
        assert!(peers.contains(&id), "peers must include the local node");
        let view = View::new(
            ViewId {
                epoch: 0,
                proposer: NodeId(0),
            },
            peers.clone(),
        );
        let last_heard = peers.iter().map(|p| (*p, now)).collect();
        let mut node = GroupNode {
            id,
            peers,
            config,
            incarnation: now.as_micros().wrapping_add(1),
            peer_incarnations: BTreeMap::new(),
            last_heard,
            last_hb_sent: None,
            departed: BTreeSet::new(),
            view: view.clone(),
            proposal: None,
            send_seq: 0,
            send_buffer: BTreeMap::new(),
            recv_next: BTreeMap::new(),
            recv_ooo: BTreeMap::new(),
            last_nack: BTreeMap::new(),
            order_seq: 0,
            pending_orders: BTreeMap::new(),
            pending_last_sent: None,
            gseq_counter: 0,
            assigned: BTreeMap::new(),
            ordered_buffer: BTreeMap::new(),
            expected_gseq: 1,
            ordered_ooo: BTreeMap::new(),
            delivered_orders: BTreeSet::new(),
            last_order_nack: None,
            events: Vec::new(),
            telemetry: Telemetry::disabled(),
        };
        let members = view.members.clone();
        node.events.push(GcsEvent::ViewChange {
            view,
            joined: members,
            left: Vec::new(),
        });
        node
    }

    /// Attaches a telemetry handle (`gcs.*` metrics). Telemetry is
    /// passive: it never alters protocol behaviour.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The currently installed view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// The fixed universe size (for majority tests).
    pub fn universe(&self) -> usize {
        self.peers.len()
    }

    /// True if this node is the current view's coordinator/sequencer.
    pub fn is_coordinator(&self) -> bool {
        self.view.coordinator() == Some(self.id)
    }

    /// Drains accumulated events.
    pub fn take_events(&mut self) -> Vec<GcsEvent<A>> {
        std::mem::take(&mut self.events)
    }

    /// Number of ordered messages sent but not yet sequenced. A node that
    /// intends to leave gracefully must wait until this reaches zero, or
    /// its final control messages die with it.
    pub fn pending_orders(&self) -> usize {
        self.pending_orders.len()
    }

    // ------------------------------------------------------------------
    // Sending
    // ------------------------------------------------------------------

    /// Reliable-FIFO broadcast to the current view (self-delivery is
    /// immediate).
    pub fn broadcast(&mut self, t: &mut impl Transport<A>, payload: A) {
        self.telemetry.incr("gcs.fifo.sent");
        self.send_seq += 1;
        self.send_buffer.insert(self.send_seq, payload.clone());
        for m in self.view.members.clone() {
            if m != self.id {
                t.send(
                    m,
                    GcsWire::Data {
                        seq: self.send_seq,
                        payload: payload.clone(),
                    },
                );
            }
        }
        self.events.push(GcsEvent::Deliver {
            from: self.id,
            payload,
        });
    }

    /// Totally-ordered broadcast: the message is sequenced by the view
    /// coordinator and delivered everywhere in global order. Retries
    /// automatically across sequencer failovers until ordered.
    ///
    /// Per-origin FIFO is preserved by keeping at most one order request
    /// outstanding: later messages queue locally until the head is
    /// sequenced (ordering traffic is low-rate control-plane traffic, so
    /// the extra round trip is immaterial).
    pub fn order(&mut self, t: &mut impl Transport<A>, payload: A) {
        self.order_traced(t, payload, None);
    }

    /// [`order`](Self::order) with a causal [`TraceContext`] that rides
    /// the wire to every deliverer. GCS carries it opaquely — tracing
    /// never alters ordering behaviour.
    pub fn order_traced(
        &mut self,
        t: &mut impl Transport<A>,
        payload: A,
        trace: Option<TraceContext>,
    ) {
        self.telemetry.incr("gcs.order.sent");
        self.order_seq += 1;
        self.pending_orders
            .insert(self.order_seq, (payload.clone(), trace));
        let is_head = self.pending_orders.len() == 1;
        let origin_seq = self.order_seq;
        if !is_head {
            return; // the tick timer sends it once the head clears
        }
        if self.is_coordinator() {
            let inc = self.incarnation;
            self.assign_and_broadcast(t, self.id, inc, origin_seq, payload, trace);
        } else if let Some(seq) = self.view.coordinator() {
            t.send(
                seq,
                GcsWire::OrderRequest {
                    incarnation: self.incarnation,
                    origin_seq,
                    payload,
                    trace,
                },
            );
        }
    }

    /// Announces a graceful departure (the paper's normal-shutdown path):
    /// peers exclude this node without waiting for suspicion.
    pub fn leave(&mut self, t: &mut impl Transport<A>) {
        for m in self.peers.clone() {
            if m != self.id {
                t.send(m, GcsWire::Leave);
            }
        }
    }

    // ------------------------------------------------------------------
    // Periodic work
    // ------------------------------------------------------------------

    /// Runs heartbeats, suspicion, view proposal and retransmission timers.
    /// Call at least once per heartbeat interval.
    pub fn tick(&mut self, t: &mut impl Transport<A>, now: SimTime) {
        // Heartbeats.
        let due = self
            .last_hb_sent
            .map(|at| now.since(at) >= self.config.heartbeat_interval)
            .unwrap_or(true);
        if due {
            for m in self.peers.clone() {
                if m != self.id {
                    t.send(
                        m,
                        GcsWire::Heartbeat {
                            sent: self.send_seq,
                            ordered: self.gseq_counter,
                            incarnation: self.incarnation,
                            view: self.view.id,
                        },
                    );
                }
            }
            self.last_hb_sent = Some(now);
        }

        // Suspicion: who do I currently believe is alive?
        let alive = self.alive_set(now);

        // Proposer election: the lowest *live current member* proposes. A
        // freshly-(re)started outsider with a stale optimistic view must
        // not pre-empt the incumbent coordinator — otherwise a restarted
        // lowest-id node and the incumbent each wait for the other and the
        // merge never happens. If no current member is alive (a node alone
        // after a wipe), fall back to the lowest live node.
        let proposer = alive
            .iter()
            .find(|m| self.view.contains(**m))
            .or(alive.first())
            .copied();
        if proposer == Some(self.id) && alive != self.view.members {
            let need_new = match &self.proposal {
                Some(p) => p.view.members != alive,
                None => true,
            };
            let resend_due = self
                .proposal
                .as_ref()
                .map(|p| now.since(p.last_sent) >= self.config.propose_resend)
                .unwrap_or(false);
            if need_new || resend_due {
                // Every (re-)proposal bumps the epoch: if the previous one
                // could not gather acks (e.g. the other side of a healed
                // partition sits at a higher epoch), the retry eventually
                // overtakes it.
                let epoch = self
                    .proposal
                    .as_ref()
                    .map(|p| p.view.id.epoch)
                    .unwrap_or(0)
                    .max(self.view.id.epoch)
                    + 1;
                // The proposer is the lowest live node, i.e. the new
                // view's coordinator. If it is *already* sequencing (its
                // coordinatorship survives the change), the stream
                // continues and joiners must skip its history; a freshly
                // elected coordinator starts a new stream at zero.
                let stream_base = if self.is_coordinator() {
                    self.gseq_counter
                } else {
                    0
                };
                let view = View::new(
                    ViewId {
                        epoch,
                        proposer: self.id,
                    },
                    alive.clone(),
                )
                .with_stream_base(stream_base);
                let mut acks = BTreeSet::new();
                acks.insert(self.id);
                self.proposal = Some(Proposal {
                    view,
                    acks,
                    last_sent: now,
                });
                self.send_proposal(t);
            }
            self.try_commit(t);
        }

        // Retry pending ordered messages (sequencer may have changed or a
        // request may have been lost).
        if !self.pending_orders.is_empty() {
            let due = self
                .pending_last_sent
                .map(|at| now.since(at) >= self.config.order_resend)
                .unwrap_or(true);
            if due {
                self.pending_last_sent = Some(now);
                // Only the head of the queue goes out (per-origin FIFO).
                let head = self
                    .pending_orders
                    .iter()
                    .next()
                    .map(|(&s, p)| (s, p.clone()));
                if let (Some(seq), Some((origin_seq, (payload, trace)))) =
                    (self.view.coordinator(), head)
                {
                    if seq == self.id {
                        let inc = self.incarnation;
                        self.assign_and_broadcast(t, self.id, inc, origin_seq, payload, trace);
                    } else {
                        t.send(
                            seq,
                            GcsWire::OrderRequest {
                                incarnation: self.incarnation,
                                origin_seq,
                                payload,
                                trace,
                            },
                        );
                    }
                }
            }
        }
    }

    fn alive_set(&self, now: SimTime) -> Vec<NodeId> {
        let mut alive: Vec<NodeId> = self
            .peers
            .iter()
            .filter(|&&p| {
                p == self.id
                    || (!self.departed.contains(&p)
                        && self
                            .last_heard
                            .get(&p)
                            .map(|&at| now.since(at) <= self.config.suspect_timeout)
                            .unwrap_or(false))
            })
            .copied()
            .collect();
        alive.sort();
        alive
    }

    fn send_proposal(&mut self, t: &mut impl Transport<A>) {
        if let Some(p) = &self.proposal {
            // One clone to build the message; byte transports serialize it
            // once for the whole broadcast (`send_all`), typed transports
            // clone per recipient exactly as the old per-member loop did.
            let msg = GcsWire::ViewPropose(p.view.clone());
            t.send_all(&p.view.members, self.id, &msg);
        }
    }

    fn try_commit(&mut self, t: &mut impl Transport<A>) {
        let ready = self
            .proposal
            .as_ref()
            .map(|p| p.view.members.iter().all(|m| p.acks.contains(m)))
            .unwrap_or(false);
        if ready {
            let view = self.proposal.take().expect("checked").view;
            let msg = GcsWire::ViewCommit(view);
            let GcsWire::ViewCommit(view_ref) = &msg else {
                unreachable!()
            };
            t.send_all(&view_ref.members, self.id, &msg);
            let GcsWire::ViewCommit(view) = msg else {
                unreachable!()
            };
            self.install_view(view);
        }
    }

    // ------------------------------------------------------------------
    // Receiving
    // ------------------------------------------------------------------

    /// Processes one incoming wire message.
    pub fn handle(
        &mut self,
        t: &mut impl Transport<A>,
        from: NodeId,
        msg: GcsWire<A>,
        now: SimTime,
    ) {
        // Any traffic counts as liveness.
        self.last_heard.insert(from, now);
        self.departed.remove(&from);
        match msg {
            GcsWire::Heartbeat {
                sent,
                ordered,
                incarnation,
                view,
            } => {
                // View anti-entropy. A `ViewCommit` is sent exactly once;
                // if the one carrying this member into the current view was
                // lost, no later message repairs it — the member waits for
                // a proposal from a coordinator that, seeing its own view
                // already match the alive set, never proposes again. So:
                // a current member advertising an older view id missed a
                // commit; push it the view we hold. `install_view` ignores
                // anything not newer than the receiver's own, so
                // concurrent pushes are harmless.
                if view < self.view.id && self.view.contains(from) {
                    self.telemetry.incr("gcs.antientropy.view_repairs");
                    t.send(from, GcsWire::ViewCommit(self.view.clone()));
                }
                // A changed incarnation means the peer truly restarted:
                // its streams begin again at 1. (Suspicion flaps keep the
                // incarnation, so no duplicate re-delivery.)
                let prev = self.peer_incarnations.insert(from, incarnation);
                if prev.is_some() && prev != Some(incarnation) {
                    self.recv_next.insert(from, 1);
                    self.recv_ooo.remove(&from);
                    // The restarted peer's origin_seq counter restarted at
                    // 1 too: forget old-incarnation dedupe entries, or its
                    // new ordered messages would be swallowed as replays —
                    // both the delivery dedupe and (when we are the
                    // sequencer) the assignment dedupe, which would recycle
                    // a stale gseq otherwise.
                    // With incarnation-scoped identities collisions are
                    // impossible; pruning old-incarnation entries is pure
                    // garbage collection.
                    self.delivered_orders
                        .retain(|(o, i, _)| *o != from || *i == incarnation);
                    self.assigned
                        .retain(|(o, i, _), _| *o != from || *i == incarnation);
                    // And if it is the current sequencer, its global order
                    // counter restarted: reset our cursor for its stream.
                    if Some(from) == self.view.coordinator() {
                        self.expected_gseq = 1;
                        self.ordered_ooo.clear();
                    }
                }
                // Anti-entropy: if the sender claims more messages than we
                // have seen, nack the missing prefix — this recovers streams
                // whose every copy was lost (no gap visible locally).
                let next = self.recv_next.get(&from).copied().unwrap_or(1);
                if sent >= next {
                    let nack_due = self
                        .last_nack
                        .get(&from)
                        .map(|&at| now.since(at) >= self.config.order_resend)
                        .unwrap_or(true);
                    if nack_due {
                        self.last_nack.insert(from, now);
                        self.telemetry.incr("gcs.antientropy.nacks");
                        t.send(from, GcsWire::Nack { from_seq: next });
                    }
                }
                // Same for the ordered stream, against the sequencer.
                if Some(from) == self.view.coordinator() && ordered >= self.expected_gseq {
                    self.request_ordered_replay(t, from, now);
                }
            }
            GcsWire::OrderedReplayRequest { from_gseq } => {
                if self.is_coordinator() {
                    self.replay_ordered(t, from, from_gseq);
                }
            }
            GcsWire::Leave => {
                self.departed.insert(from);
                self.last_heard.remove(&from);
            }
            GcsWire::ViewPropose(view) => {
                if view.id > self.view.id {
                    // If we would coordinate the proposed view and already
                    // sequence our current one, the stream continues at our
                    // counter; report it so the commit carries the right
                    // `stream_base` (the proposer may not be us).
                    let stream_base =
                        if view.coordinator() == Some(self.id) && self.is_coordinator() {
                            self.gseq_counter
                        } else {
                            0
                        };
                    t.send(
                        view.id.proposer,
                        GcsWire::ViewAck {
                            id: view.id,
                            stream_base,
                        },
                    );
                }
            }
            GcsWire::ViewAck { id, stream_base } => {
                self.telemetry.incr("gcs.view.acks");
                if let Some(p) = self.proposal.as_mut() {
                    if p.view.id == id {
                        p.acks.insert(from);
                        if p.view.coordinator() == Some(from) {
                            p.view.stream_base = stream_base;
                        }
                    }
                }
                self.try_commit(t);
            }
            GcsWire::ViewCommit(view) => {
                if view.id > self.view.id {
                    self.install_view(view);
                }
            }
            GcsWire::Data { seq, payload } => self.handle_data(t, from, seq, payload, now),
            GcsWire::Nack { from_seq } => {
                for (&seq, payload) in self.send_buffer.range(from_seq..) {
                    t.send(
                        from,
                        GcsWire::Data {
                            seq,
                            payload: payload.clone(),
                        },
                    );
                }
            }
            GcsWire::OrderRequest {
                incarnation,
                origin_seq,
                payload,
                trace,
            } => {
                if self.is_coordinator() {
                    self.assign_and_broadcast(t, from, incarnation, origin_seq, payload, trace);
                }
                // Otherwise: stale request to an ex-coordinator; the origin
                // will retry against the new one.
            }
            GcsWire::Ordered {
                gseq,
                origin,
                origin_inc,
                origin_seq,
                payload,
                trace,
            } => self.handle_ordered(
                t, from, gseq, origin, origin_inc, origin_seq, payload, trace, now,
            ),
        }
    }

    fn handle_data(
        &mut self,
        t: &mut impl Transport<A>,
        from: NodeId,
        seq: u64,
        payload: A,
        now: SimTime,
    ) {
        let next = self.recv_next.entry(from).or_insert(1);
        if seq < *next {
            return; // duplicate
        }
        if seq > *next {
            self.recv_ooo.entry(from).or_default().insert(seq, payload);
            // Rate-limited nack.
            let nack_due = self
                .last_nack
                .get(&from)
                .map(|&at| now.since(at) >= self.config.order_resend)
                .unwrap_or(true);
            if nack_due {
                let missing = *next;
                self.last_nack.insert(from, now);
                self.telemetry.incr("gcs.antientropy.nacks");
                t.send(from, GcsWire::Nack { from_seq: missing });
            }
            return;
        }
        // In-order: deliver it and any buffered successors.
        *next += 1;
        self.telemetry.incr("gcs.fifo.delivered");
        self.events.push(GcsEvent::Deliver { from, payload });
        if let Some(buf) = self.recv_ooo.get_mut(&from) {
            loop {
                let expected = self.recv_next.get(&from).copied().unwrap_or(1);
                match buf.remove(&expected) {
                    Some(p) => {
                        self.recv_next.insert(from, expected + 1);
                        self.telemetry.incr("gcs.fifo.delivered");
                        self.events.push(GcsEvent::Deliver { from, payload: p });
                    }
                    None => break,
                }
            }
        }
    }

    fn assign_and_broadcast(
        &mut self,
        t: &mut impl Transport<A>,
        origin: NodeId,
        origin_inc: u64,
        origin_seq: u64,
        payload: A,
        trace: Option<TraceContext>,
    ) {
        let gseq = match self.assigned.get(&(origin, origin_inc, origin_seq)) {
            Some(&g) => g,
            None => {
                self.gseq_counter += 1;
                self.assigned
                    .insert((origin, origin_inc, origin_seq), self.gseq_counter);
                self.ordered_buffer.insert(
                    self.gseq_counter,
                    (origin, origin_inc, origin_seq, payload.clone(), trace),
                );
                self.gseq_counter
            }
        };
        for m in self.view.members.clone() {
            if m != self.id {
                t.send(
                    m,
                    GcsWire::Ordered {
                        gseq,
                        origin,
                        origin_inc,
                        origin_seq,
                        payload: payload.clone(),
                        trace,
                    },
                );
            }
        }
        // Sequencer self-delivery.
        self.deliver_ordered_chain(gseq, origin, origin_inc, origin_seq, payload, trace);
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_ordered(
        &mut self,
        t: &mut impl Transport<A>,
        from: NodeId,
        gseq: u64,
        origin: NodeId,
        origin_inc: u64,
        origin_seq: u64,
        payload: A,
        trace: Option<TraceContext>,
        now: SimTime,
    ) {
        // Only the current coordinator's stream counts.
        if Some(from) != self.view.coordinator() {
            return;
        }
        if gseq < self.expected_gseq {
            // Duplicate of something already processed; still clears pending.
            self.clear_pending(origin, origin_inc, origin_seq);
            return;
        }
        if gseq > self.expected_gseq {
            self.ordered_ooo
                .insert(gseq, (origin, origin_inc, origin_seq, payload, trace));
            self.request_ordered_replay(t, from, now);
            return;
        }
        self.deliver_ordered_chain(gseq, origin, origin_inc, origin_seq, payload, trace);
    }

    /// Rate-limited request to the sequencer to replay the ordered stream
    /// from our cursor.
    fn request_ordered_replay(
        &mut self,
        t: &mut impl Transport<A>,
        sequencer: NodeId,
        now: SimTime,
    ) {
        let due = self
            .last_order_nack
            .map(|at| now.since(at) >= self.config.order_resend)
            .unwrap_or(true);
        if due {
            self.last_order_nack = Some(now);
            self.telemetry.incr("gcs.antientropy.replay_requests");
            t.send(
                sequencer,
                GcsWire::OrderedReplayRequest {
                    from_gseq: self.expected_gseq,
                },
            );
        }
    }

    fn deliver_ordered_chain(
        &mut self,
        gseq: u64,
        origin: NodeId,
        origin_inc: u64,
        origin_seq: u64,
        payload: A,
        trace: Option<TraceContext>,
    ) {
        self.deliver_ordered_one(gseq, origin, origin_inc, origin_seq, payload, trace);
        loop {
            let next = self.expected_gseq;
            match self.ordered_ooo.remove(&next) {
                Some((o, oi, os, p, tr)) => self.deliver_ordered_one(next, o, oi, os, p, tr),
                None => break,
            }
        }
    }

    fn deliver_ordered_one(
        &mut self,
        gseq: u64,
        origin: NodeId,
        origin_inc: u64,
        origin_seq: u64,
        payload: A,
        trace: Option<TraceContext>,
    ) {
        // Monotone: a replayed/stale gseq must never pull the cursor back.
        self.expected_gseq = self.expected_gseq.max(gseq + 1);
        self.clear_pending(origin, origin_inc, origin_seq);
        if self
            .delivered_orders
            .insert((origin, origin_inc, origin_seq))
        {
            self.telemetry.incr("gcs.order.delivered");
            self.events.push(GcsEvent::OrderedDeliver {
                gseq,
                origin,
                payload,
                trace,
            });
        }
    }

    fn clear_pending(&mut self, origin: NodeId, origin_inc: u64, origin_seq: u64) {
        if origin == self.id
            && origin_inc == self.incarnation
            && self.pending_orders.remove(&origin_seq).is_some()
        {
            // Head cleared: let the next tick dispatch the next pending
            // message immediately.
            self.pending_last_sent = None;
        }
    }

    fn install_view(&mut self, view: View) {
        self.telemetry.incr("gcs.view.installed");
        let old = std::mem::replace(&mut self.view, view.clone());
        let (joined, left) = view.diff(&old);
        // (Stream resets for genuinely restarted peers are driven by the
        // incarnation number on their heartbeats, not by view membership —
        // a suspicion flap must not replay the retransmission buffer.)
        // Sequencer change: reset the ordered-stream cursor; pending orders
        // will be retried against the new sequencer by the tick timer.
        //
        // The cursor starts at the view's `stream_base`, not at 1: when the
        // new coordinator's stream predates this view (a partition heal
        // merges us into the majority, whose sequencer kept running), the
        // history before `stream_base` was ordered while we were not a
        // member of that stream. We must NOT fetch it via replay — our
        // registry state for that span arrives by snapshot transfer, and
        // re-applying already-incorporated messages on top of the snapshot
        // is not idempotent (it was a real divergence: replayed `Deployed`
        // bumped record revisions only on the rejoining side). For a
        // freshly elected coordinator `stream_base` is 0 and this is the
        // old "start at 1" behaviour.
        if view.coordinator() != old.coordinator() {
            self.expected_gseq = view.stream_base + 1;
            self.ordered_ooo.clear();
            if self.is_coordinator() {
                self.gseq_counter = view.stream_base;
                self.assigned.clear();
                self.ordered_buffer.clear();
            }
            self.pending_last_sent = None;
        }
        if self.proposal.as_ref().is_some_and(|p| p.view.id <= view.id) {
            self.proposal = None;
        }
        self.events
            .push(GcsEvent::ViewChange { view, joined, left });
    }

    /// Handles a replay request from a lagging member: resends the ordered
    /// buffer from `from_gseq` to `to`.
    fn replay_ordered(&mut self, t: &mut impl Transport<A>, to: NodeId, from_gseq: u64) {
        for (&gseq, (origin, origin_inc, origin_seq, payload, trace)) in
            self.ordered_buffer.range(from_gseq..)
        {
            self.telemetry.incr("gcs.antientropy.replayed");
            t.send(
                to,
                GcsWire::Ordered {
                    gseq,
                    origin: *origin,
                    origin_inc: *origin_inc,
                    origin_seq: *origin_seq,
                    payload: payload.clone(),
                    trace: *trace,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimTransport;
    use dosgi_net::{LinkConfig, SimDuration, SimNet};

    type Net = SimNet<GcsWire<u64>>;
    type Node = GroupNode<u64>;

    struct Cluster {
        net: Net,
        nodes: Vec<Node>,
        crashed: Vec<bool>,
    }

    impl Cluster {
        fn new(n: usize, link: LinkConfig, config: GcsConfig, seed: u64) -> Self {
            let mut net = Net::new(link, seed);
            let ids: Vec<NodeId> = (0..n).map(|_| net.register_node()).collect();
            let nodes = ids
                .iter()
                .map(|&id| Node::new(id, ids.clone(), config, SimTime::ZERO))
                .collect();
            Cluster {
                net,
                nodes,
                crashed: vec![false; n],
            }
        }

        /// Advances simulated time in 5ms steps, ticking and draining every
        /// live node.
        fn run(&mut self, duration: SimDuration) {
            let step = SimDuration::from_millis(5);
            let end = self.net.now() + duration;
            while self.net.now() < end {
                self.net.advance(step);
                let now = self.net.now();
                for i in 0..self.nodes.len() {
                    if self.crashed[i] {
                        continue;
                    }
                    let id = NodeId(i as u32);
                    for env in self.net.drain(id) {
                        let mut t = SimTransport::new(&mut self.net, id);
                        self.nodes[i].handle(&mut t, env.from, env.payload, now);
                    }
                    let mut t = SimTransport::new(&mut self.net, id);
                    self.nodes[i].tick(&mut t, now);
                }
            }
        }

        fn crash(&mut self, i: usize) {
            self.crashed[i] = true;
            self.net.crash(NodeId(i as u32));
        }

        fn events(&mut self, i: usize) -> Vec<GcsEvent<u64>> {
            self.nodes[i].take_events()
        }

        fn broadcast(&mut self, i: usize, payload: u64) {
            let id = NodeId(i as u32);
            let mut t = SimTransport::new(&mut self.net, id);
            self.nodes[i].broadcast(&mut t, payload);
        }

        fn order(&mut self, i: usize, payload: u64) {
            let id = NodeId(i as u32);
            let mut t = SimTransport::new(&mut self.net, id);
            self.nodes[i].order(&mut t, payload);
        }

        fn order_traced(&mut self, i: usize, payload: u64, trace: dosgi_telemetry::TraceContext) {
            let id = NodeId(i as u32);
            let mut t = SimTransport::new(&mut self.net, id);
            self.nodes[i].order_traced(&mut t, payload, Some(trace));
        }
    }

    fn delivered(events: &[GcsEvent<u64>]) -> Vec<(NodeId, u64)> {
        events
            .iter()
            .filter_map(|e| match e {
                GcsEvent::Deliver { from, payload } => Some((*from, *payload)),
                _ => None,
            })
            .collect()
    }

    fn ordered(events: &[GcsEvent<u64>]) -> Vec<u64> {
        events
            .iter()
            .filter_map(|e| match e {
                GcsEvent::OrderedDeliver { payload, .. } => Some(*payload),
                _ => None,
            })
            .collect()
    }

    fn last_view(events: &[GcsEvent<u64>]) -> Option<View> {
        events.iter().rev().find_map(|e| match e {
            GcsEvent::ViewChange { view, .. } => Some(view.clone()),
            _ => None,
        })
    }

    #[test]
    fn initial_view_contains_everyone() {
        let mut c = Cluster::new(3, LinkConfig::lan(), GcsConfig::lan(), 1);
        c.run(SimDuration::from_millis(300));
        for i in 0..3 {
            let events = c.events(i);
            let v = last_view(&events).expect("initial view event");
            assert_eq!(v.members.len(), 3);
            assert_eq!(c.nodes[i].view().members.len(), 3);
            assert_eq!(c.nodes[i].view().coordinator(), Some(NodeId(0)));
        }
        assert!(c.nodes[0].is_coordinator());
        assert!(!c.nodes[1].is_coordinator());
    }

    #[test]
    fn crash_is_detected_and_view_shrinks() {
        let mut c = Cluster::new(3, LinkConfig::lan(), GcsConfig::lan(), 2);
        c.run(SimDuration::from_millis(200));
        for i in 0..3 {
            c.events(i);
        }
        c.crash(2);
        c.run(SimDuration::from_millis(600));
        for i in 0..2 {
            let events = c.events(i);
            let v = last_view(&events).expect("view after crash");
            assert_eq!(v.members, vec![NodeId(0), NodeId(1)]);
            // The ViewChange reports who left.
            let left: Vec<NodeId> = events
                .iter()
                .filter_map(|e| match e {
                    GcsEvent::ViewChange { left, .. } => Some(left.clone()),
                    _ => None,
                })
                .flatten()
                .collect();
            assert!(left.contains(&NodeId(2)), "node {i} saw the departure");
        }
    }

    #[test]
    fn coordinator_crash_elects_next_lowest() {
        let mut c = Cluster::new(3, LinkConfig::lan(), GcsConfig::lan(), 3);
        c.run(SimDuration::from_millis(200));
        c.crash(0);
        c.run(SimDuration::from_millis(800));
        for i in 1..3 {
            assert_eq!(
                c.nodes[i].view().members,
                vec![NodeId(1), NodeId(2)],
                "node {i}"
            );
            assert_eq!(c.nodes[i].view().coordinator(), Some(NodeId(1)));
        }
        assert!(c.nodes[1].is_coordinator());
    }

    #[test]
    fn graceful_leave_is_faster_than_suspicion() {
        let mut c = Cluster::new(3, LinkConfig::lan(), GcsConfig::lan(), 4);
        c.run(SimDuration::from_millis(200));
        // Node 2 leaves gracefully.
        {
            let id = NodeId(2);
            let mut t = SimTransport::new(&mut c.net, id);
            c.nodes[2].leave(&mut t);
        }
        c.crashed[2] = true;
        // Well under the 200ms suspicion timeout plus propose round.
        c.run(SimDuration::from_millis(150));
        for i in 0..2 {
            assert_eq!(c.nodes[i].view().members, vec![NodeId(0), NodeId(1)]);
        }
    }

    #[test]
    fn rejoin_after_restart_is_readmitted() {
        let mut c = Cluster::new(3, LinkConfig::lan(), GcsConfig::lan(), 5);
        c.run(SimDuration::from_millis(200));
        c.crash(2);
        c.run(SimDuration::from_millis(600));
        assert_eq!(c.nodes[0].view().members.len(), 2);
        // Restart node 2 with a fresh protocol state.
        c.net.restart(NodeId(2));
        c.crashed[2] = false;
        c.nodes[2] = Node::new(
            NodeId(2),
            vec![NodeId(0), NodeId(1), NodeId(2)],
            GcsConfig::lan(),
            c.net.now(),
        );
        c.run(SimDuration::from_millis(600));
        for i in 0..3 {
            assert_eq!(c.nodes[i].view().members.len(), 3, "node {i}");
        }
    }

    #[test]
    fn fifo_broadcast_delivers_in_order_everywhere() {
        let mut c = Cluster::new(3, LinkConfig::lan(), GcsConfig::lan(), 6);
        c.run(SimDuration::from_millis(100));
        for i in 0..3 {
            c.events(i);
        }
        for v in 1..=20 {
            c.broadcast(0, v);
        }
        c.run(SimDuration::from_millis(300));
        for i in 0..3 {
            let events = c.events(i);
            let got: Vec<u64> = delivered(&events)
                .into_iter()
                .filter(|(from, _)| *from == NodeId(0))
                .map(|(_, p)| p)
                .collect();
            assert_eq!(got, (1..=20).collect::<Vec<_>>(), "node {i}");
        }
    }

    #[test]
    fn fifo_survives_heavy_message_loss() {
        let mut c = Cluster::new(2, LinkConfig::lossy(0.3), GcsConfig::lan(), 7);
        c.run(SimDuration::from_millis(100));
        for i in 0..2 {
            c.events(i);
        }
        for v in 1..=50 {
            c.broadcast(0, v);
        }
        // Generous time for nack-driven recovery.
        c.run(SimDuration::from_secs(5));
        let events = c.events(1);
        let got: Vec<u64> = delivered(&events).into_iter().map(|(_, p)| p).collect();
        assert_eq!(got, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn total_order_is_identical_across_members() {
        let mut c = Cluster::new(3, LinkConfig::lan(), GcsConfig::lan(), 8);
        c.run(SimDuration::from_millis(100));
        for i in 0..3 {
            c.events(i);
        }
        // Interleave ordering requests from every node.
        for round in 0..10u64 {
            for i in 0..3 {
                c.order(i, round * 10 + i as u64);
            }
        }
        c.run(SimDuration::from_secs(2));
        let seqs: Vec<Vec<u64>> = (0..3).map(|i| ordered(&c.events(i))).collect();
        assert_eq!(seqs[0].len(), 30, "all 30 messages ordered");
        assert_eq!(seqs[0], seqs[1], "node 0 and 1 agree");
        assert_eq!(seqs[1], seqs[2], "node 1 and 2 agree");
    }

    #[test]
    fn total_order_survives_loss() {
        let mut c = Cluster::new(3, LinkConfig::lossy(0.2), GcsConfig::lan(), 9);
        c.run(SimDuration::from_millis(200));
        for i in 0..3 {
            c.events(i);
        }
        for v in 1..=15 {
            c.order(1, v);
        }
        c.run(SimDuration::from_secs(8));
        let seqs: Vec<Vec<u64>> = (0..3).map(|i| ordered(&c.events(i))).collect();
        for (i, s) in seqs.iter().enumerate() {
            assert_eq!(s.len(), 15, "node {i} delivered all");
        }
        assert_eq!(seqs[0], seqs[1]);
        assert_eq!(seqs[1], seqs[2]);
    }

    #[test]
    fn trace_contexts_survive_loss_and_replay() {
        use dosgi_telemetry::TraceContext;
        let mut c = Cluster::new(3, LinkConfig::lossy(0.25), GcsConfig::lan(), 12);
        c.run(SimDuration::from_millis(200));
        for i in 0..3 {
            c.events(i);
        }
        // Each message carries a distinct context; loss forces the
        // nack/replay paths, which must forward the buffered trace.
        for v in 1..=10u64 {
            c.order_traced(
                2,
                v,
                TraceContext {
                    trace_id: 3 << 40,
                    parent_span: (3 << 40) | v,
                    lamport: 100 + v,
                },
            );
        }
        c.order(2, 11); // untraced tail keeps working alongside
        c.run(SimDuration::from_secs(8));
        for i in 0..3 {
            let got: Vec<(u64, Option<TraceContext>)> = c
                .events(i)
                .into_iter()
                .filter_map(|e| match e {
                    GcsEvent::OrderedDeliver { payload, trace, .. } => Some((payload, trace)),
                    _ => None,
                })
                .collect();
            assert_eq!(got.len(), 11, "node {i} delivered all");
            for (payload, trace) in got {
                if payload == 11 {
                    assert_eq!(trace, None, "node {i}: untraced stays untraced");
                } else {
                    let t = trace.expect("traced delivery");
                    assert_eq!(t.parent_span, (3 << 40) | payload, "node {i}");
                    assert_eq!(t.lamport, 100 + payload, "node {i}");
                }
            }
        }
    }

    #[test]
    fn sequencer_failover_still_orders_pending_messages() {
        let mut c = Cluster::new(3, LinkConfig::lan(), GcsConfig::lan(), 10);
        c.run(SimDuration::from_millis(200));
        for i in 0..3 {
            c.events(i);
        }
        // Crash the sequencer, then immediately try to order from node 2.
        c.crash(0);
        c.order(2, 77);
        c.order(2, 78);
        c.run(SimDuration::from_secs(3));
        for i in 1..3 {
            let got = ordered(&c.events(i));
            assert_eq!(got, vec![77, 78], "node {i} got the retried orders");
        }
    }

    #[test]
    fn partition_and_heal_reconverges() {
        let mut c = Cluster::new(4, LinkConfig::lan(), GcsConfig::lan(), 11);
        c.run(SimDuration::from_millis(200));
        c.net.partition(dosgi_net::Partition::split([
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(2), NodeId(3)],
        ]));
        c.run(SimDuration::from_secs(1));
        // Each side formed its own view; only one side has a majority test.
        assert_eq!(c.nodes[0].view().members, vec![NodeId(0), NodeId(1)]);
        assert_eq!(c.nodes[2].view().members, vec![NodeId(2), NodeId(3)]);
        assert!(!c.nodes[0].view().has_majority(c.nodes[0].universe()));
        c.net.heal();
        c.run(SimDuration::from_secs(1));
        for i in 0..4 {
            assert_eq!(c.nodes[i].view().members.len(), 4, "node {i} healed");
            assert!(c.nodes[i].view().has_majority(4));
        }
    }

    #[test]
    #[should_panic(expected = "peers must include")]
    fn new_requires_self_in_peers() {
        let _ = Node::new(NodeId(9), vec![NodeId(0)], GcsConfig::lan(), SimTime::ZERO);
    }
}
