//! Transport abstraction: how a group node's messages reach the network.
//!
//! `GroupNode` is transport-agnostic so the cluster layer can multiplex GCS
//! traffic with its own messages over one simulated network. For direct use
//! (and for this crate's own tests) [`SimTransport`] adapts a
//! [`SimNet`](dosgi_net::SimNet) whose payload type *is* the GCS wire type.

use crate::GcsWire;
use dosgi_net::{NodeId, SimNet};

/// The sending half a [`GroupNode`](crate::GroupNode) needs.
pub trait Transport<A> {
    /// Sends `msg` to `to`.
    fn send(&mut self, to: NodeId, msg: GcsWire<A>);
}

/// Adapts a `SimNet<GcsWire<A>>` as the transport of one node.
#[derive(Debug)]
pub struct SimTransport<'a, A> {
    net: &'a mut SimNet<GcsWire<A>>,
    from: NodeId,
}

impl<'a, A> SimTransport<'a, A> {
    /// Wraps `net` for messages sent by `from`.
    pub fn new(net: &'a mut SimNet<GcsWire<A>>, from: NodeId) -> Self {
        SimTransport { net, from }
    }
}

impl<'a, A> Transport<A> for SimTransport<'a, A> {
    fn send(&mut self, to: NodeId, msg: GcsWire<A>) {
        self.net.send(self.from, to, msg);
    }
}

impl<A, F> Transport<A> for F
where
    F: FnMut(NodeId, GcsWire<A>),
{
    fn send(&mut self, to: NodeId, msg: GcsWire<A>) {
        self(to, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosgi_net::{LinkConfig, SimDuration};

    #[test]
    fn sim_transport_routes_through_the_net() {
        let mut net: SimNet<GcsWire<u32>> = SimNet::new(LinkConfig::ideal(), 1);
        let a = net.register_node();
        let b = net.register_node();
        SimTransport::new(&mut net, a).send(
            b,
            GcsWire::Heartbeat {
                sent: 0,
                ordered: 0,
                incarnation: 1,
                view: crate::ViewId::default(),
            },
        );
        net.advance(SimDuration::from_millis(1));
        assert_eq!(
            net.recv(b).unwrap().payload,
            GcsWire::Heartbeat {
                sent: 0,
                ordered: 0,
                incarnation: 1,
                view: crate::ViewId::default()
            }
        );
    }

    #[test]
    fn closures_are_transports() {
        let mut sent = Vec::new();
        {
            let mut t = |to: NodeId, msg: GcsWire<u32>| sent.push((to, msg));
            Transport::send(&mut t, NodeId(3), GcsWire::Leave);
        }
        assert_eq!(sent, vec![(NodeId(3), GcsWire::Leave)]);
    }
}
