//! Transport abstraction: how a group node's messages reach the network.
//!
//! `GroupNode` is transport-agnostic so the cluster layer can multiplex GCS
//! traffic with its own messages over one simulated network. For direct use
//! (and for this crate's own tests) [`SimTransport`] adapts a
//! [`SimNet`](dosgi_net::SimNet) whose payload type *is* the GCS wire type.

use crate::GcsWire;
use dosgi_net::{NodeId, SimNet};

/// The sending half a [`GroupNode`](crate::GroupNode) needs.
pub trait Transport<A> {
    /// Sends `msg` to `to`.
    fn send(&mut self, to: NodeId, msg: GcsWire<A>);
}

/// Adapts a `SimNet<GcsWire<A>>` as the transport of one node.
#[derive(Debug)]
pub struct SimTransport<'a, A> {
    net: &'a mut SimNet<GcsWire<A>>,
    from: NodeId,
}

impl<'a, A> SimTransport<'a, A> {
    /// Wraps `net` for messages sent by `from`.
    pub fn new(net: &'a mut SimNet<GcsWire<A>>, from: NodeId) -> Self {
        SimTransport { net, from }
    }
}

impl<'a, A> Transport<A> for SimTransport<'a, A> {
    fn send(&mut self, to: NodeId, msg: GcsWire<A>) {
        self.net.send(self.from, to, msg);
    }
}

impl<A, F> Transport<A> for F
where
    F: FnMut(NodeId, GcsWire<A>),
{
    fn send(&mut self, to: NodeId, msg: GcsWire<A>) {
        self(to, msg);
    }
}

/// Adapts a byte-frame sink as a transport: every message is serialized
/// with the versioned wire codec ([`crate::wire::encode_frame`]) before
/// it leaves the node — the shape a real (non-simulated) deployment
/// uses, and what the interop tests drive to prove old and new frame
/// versions coexist.
pub struct FrameTransport<S, E> {
    sink: S,
    enc: E,
}

impl<S, E> FrameTransport<S, E> {
    /// Wraps `sink` (called with `(to, frame_bytes)`) using `enc` to
    /// serialize application payloads.
    pub fn new(sink: S, enc: E) -> Self {
        FrameTransport { sink, enc }
    }
}

impl<A, S, E> Transport<A> for FrameTransport<S, E>
where
    S: FnMut(NodeId, Vec<u8>),
    E: Fn(&A) -> Vec<u8>,
{
    fn send(&mut self, to: NodeId, msg: GcsWire<A>) {
        (self.sink)(to, crate::wire::encode_frame(&msg, &self.enc));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosgi_net::{LinkConfig, SimDuration};

    #[test]
    fn sim_transport_routes_through_the_net() {
        let mut net: SimNet<GcsWire<u32>> = SimNet::new(LinkConfig::ideal(), 1);
        let a = net.register_node();
        let b = net.register_node();
        SimTransport::new(&mut net, a).send(
            b,
            GcsWire::Heartbeat {
                sent: 0,
                ordered: 0,
                incarnation: 1,
                view: crate::ViewId::default(),
            },
        );
        net.advance(SimDuration::from_millis(1));
        assert_eq!(
            net.recv(b).unwrap().payload,
            GcsWire::Heartbeat {
                sent: 0,
                ordered: 0,
                incarnation: 1,
                view: crate::ViewId::default()
            }
        );
    }

    #[test]
    fn closures_are_transports() {
        let mut sent = Vec::new();
        {
            let mut t = |to: NodeId, msg: GcsWire<u32>| sent.push((to, msg));
            Transport::send(&mut t, NodeId(3), GcsWire::Leave);
        }
        assert_eq!(sent, vec![(NodeId(3), GcsWire::Leave)]);
    }

    #[test]
    fn group_nodes_interoperate_over_byte_frames() {
        use crate::wire::{decode_frame, encode_frame_at, WIRE_VERSION_V1};
        use crate::{GcsConfig, GcsEvent, GroupNode};
        use dosgi_net::SimTime;
        use dosgi_telemetry::TraceContext;

        fn enc(v: &u32) -> Vec<u8> {
            v.to_le_bytes().to_vec()
        }
        fn dec(b: &[u8]) -> Option<u32> {
            Some(u32::from_le_bytes(b.try_into().ok()?))
        }

        let ids = vec![NodeId(0), NodeId(1)];
        let mut nodes = [
            GroupNode::<u32>::new(NodeId(0), ids.clone(), GcsConfig::lan(), SimTime::ZERO),
            GroupNode::<u32>::new(NodeId(1), ids, GcsConfig::lan(), SimTime::ZERO),
        ];
        let ctx = TraceContext {
            trace_id: 1 << 40,
            parent_span: (1 << 40) | 3,
            lamport: 9,
        };
        // Node 1 (non-coordinator) orders one traced message: it travels
        // OrderRequest -> sequencer -> Ordered, serialized to bytes on
        // every hop. A second traced message queues behind it (per-origin
        // FIFO) and is released by the tick timer — which we route over a
        // *v1-downgrading* link below, proving a legacy hop still orders
        // while the trace degrades to None.
        let mut mail: Vec<(NodeId, Vec<u8>)> = Vec::new();
        {
            let mut t = FrameTransport::new(|to: NodeId, f: Vec<u8>| mail.push((to, f)), enc);
            nodes[1].order_traced(&mut t, 7, Some(ctx));
            nodes[1].order_traced(&mut t, 8, Some(ctx));
        }
        let mut pending: Vec<(NodeId, Vec<u8>)> = mail;
        for round in 0..20 {
            if pending.is_empty() {
                break;
            }
            let mut next: Vec<(NodeId, Vec<u8>)> = Vec::new();
            for (to, frame) in pending.drain(..) {
                let msg = decode_frame(&frame, dec).expect("frame decodes");
                let mut t = FrameTransport::new(|to: NodeId, f: Vec<u8>| next.push((to, f)), enc);
                let from = if to == NodeId(0) {
                    NodeId(1)
                } else {
                    NodeId(0)
                };
                nodes[to.0 as usize].handle(&mut t, from, msg, SimTime::ZERO);
            }
            // Node 1's periodic traffic (heartbeats + the queued order's
            // dispatch once the head clears) leaves over a legacy link:
            // every frame is re-encoded at v1.
            let mut t = FrameTransport::new(
                |to: NodeId, f: Vec<u8>| {
                    let typed = decode_frame(&f, dec).expect("self-decode");
                    next.push((to, encode_frame_at(WIRE_VERSION_V1, &typed, enc)));
                },
                enc,
            );
            nodes[1].tick(&mut t, SimTime::ZERO);
            pending = next;
            assert!(round < 19, "byte-frame exchange did not quiesce");
        }
        for (i, node) in nodes.iter_mut().enumerate() {
            let ordered: Vec<(u32, Option<TraceContext>)> = node
                .take_events()
                .into_iter()
                .filter_map(|e| match e {
                    GcsEvent::OrderedDeliver { payload, trace, .. } => Some((payload, trace)),
                    _ => None,
                })
                .collect();
            assert_eq!(
                ordered,
                vec![(7, Some(ctx)), (8, None)],
                "node {i}: traced v2 hop keeps the context, v1 hop drops it"
            );
        }
    }
}
