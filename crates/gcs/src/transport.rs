//! Transport abstraction: how a group node's messages reach the network.
//!
//! `GroupNode` is transport-agnostic so the cluster layer can multiplex GCS
//! traffic with its own messages over one fabric. [`FabricTransport`]
//! adapts *any* [`Fabric`](dosgi_net::Fabric) backend — the deterministic
//! [`SimNet`](dosgi_net::SimNet) or a real-clock
//! [`RealEndpoint`](dosgi_net::RealEndpoint) — whose payload type *is* the
//! GCS wire type. [`SimTransport`] is the historical name for the sim
//! special case and remains as an alias-shaped wrapper for this crate's own
//! tests.

use crate::GcsWire;
use dosgi_net::{Fabric, NodeId, SimNet};

/// The sending half a [`GroupNode`](crate::GroupNode) needs.
pub trait Transport<A> {
    /// Sends `msg` to `to`.
    fn send(&mut self, to: NodeId, msg: GcsWire<A>);

    /// Sends `msg` to every node in `to` except `skip` (the local node).
    ///
    /// The default clones per recipient — identical behavior to a manual
    /// loop, so deterministic backends are unaffected. Byte transports
    /// override it to serialize **once** per broadcast instead of cloning
    /// and re-encoding the message (a `ViewPropose` used to clone its
    /// whole member list per recipient).
    fn send_all(&mut self, to: &[NodeId], skip: NodeId, msg: &GcsWire<A>)
    where
        A: Clone,
    {
        for &n in to {
            if n != skip {
                self.send(n, msg.clone());
            }
        }
    }
}

/// Adapts one node's view of a [`Fabric`] as its GCS transport.
#[derive(Debug)]
pub struct FabricTransport<'a, N> {
    net: &'a mut N,
    from: NodeId,
}

impl<'a, N> FabricTransport<'a, N> {
    /// Wraps `net` for messages sent by `from`.
    pub fn new(net: &'a mut N, from: NodeId) -> Self {
        FabricTransport { net, from }
    }
}

impl<'a, A, N: Fabric<GcsWire<A>>> Transport<A> for FabricTransport<'a, N> {
    fn send(&mut self, to: NodeId, msg: GcsWire<A>) {
        self.net.send(self.from, to, msg);
    }
}

/// Adapts a `SimNet<GcsWire<A>>` as the transport of one node — the
/// [`FabricTransport`] special case predating the fabric trait.
#[derive(Debug)]
pub struct SimTransport<'a, A> {
    net: &'a mut SimNet<GcsWire<A>>,
    from: NodeId,
}

impl<'a, A> SimTransport<'a, A> {
    /// Wraps `net` for messages sent by `from`.
    pub fn new(net: &'a mut SimNet<GcsWire<A>>, from: NodeId) -> Self {
        SimTransport { net, from }
    }
}

impl<'a, A> Transport<A> for SimTransport<'a, A> {
    fn send(&mut self, to: NodeId, msg: GcsWire<A>) {
        self.net.send(self.from, to, msg);
    }
}

impl<A, F> Transport<A> for F
where
    F: FnMut(NodeId, GcsWire<A>),
{
    fn send(&mut self, to: NodeId, msg: GcsWire<A>) {
        self(to, msg);
    }
}

/// Adapts a byte-frame sink as a transport: every message is serialized
/// with the versioned wire codec before it leaves the node — the shape a
/// real (non-simulated) deployment uses, and what the interop tests drive
/// to prove old and new frame versions coexist.
///
/// Serialization goes through
/// [`encode_frame_into`](crate::wire::encode_frame_into) with a
/// per-connection scratch buffer: after warm-up a send performs **zero
/// allocations** (the payload is encoded in place behind a backpatched
/// length prefix), and a [`send_all`](Transport::send_all) broadcast
/// encodes once for all recipients.
pub struct FrameTransport<S, E> {
    sink: S,
    enc: E,
    scratch: Vec<u8>,
}

impl<S, E> FrameTransport<S, E> {
    /// Wraps `sink` (called with `(to, frame_bytes)`) using `enc` to
    /// serialize application payloads directly into the frame buffer.
    pub fn new(sink: S, enc: E) -> Self {
        FrameTransport {
            sink,
            enc,
            scratch: Vec::with_capacity(64),
        }
    }
}

impl<A, S, E> Transport<A> for FrameTransport<S, E>
where
    S: FnMut(NodeId, &[u8]),
    E: Fn(&A, &mut Vec<u8>),
{
    fn send(&mut self, to: NodeId, msg: GcsWire<A>) {
        self.scratch.clear();
        crate::wire::encode_frame_into(&mut self.scratch, &msg, &self.enc);
        (self.sink)(to, &self.scratch);
    }

    fn send_all(&mut self, to: &[NodeId], skip: NodeId, msg: &GcsWire<A>)
    where
        A: Clone,
    {
        self.scratch.clear();
        crate::wire::encode_frame_into(&mut self.scratch, msg, &self.enc);
        for &n in to {
            if n != skip {
                (self.sink)(n, &self.scratch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosgi_net::{LinkConfig, SimDuration};

    #[test]
    fn sim_transport_routes_through_the_net() {
        let mut net: SimNet<GcsWire<u32>> = SimNet::new(LinkConfig::ideal(), 1);
        let a = net.register_node();
        let b = net.register_node();
        SimTransport::new(&mut net, a).send(
            b,
            GcsWire::Heartbeat {
                sent: 0,
                ordered: 0,
                incarnation: 1,
                view: crate::ViewId::default(),
            },
        );
        net.advance(SimDuration::from_millis(1));
        assert_eq!(
            net.recv(b).unwrap().payload,
            GcsWire::Heartbeat {
                sent: 0,
                ordered: 0,
                incarnation: 1,
                view: crate::ViewId::default()
            }
        );
    }

    #[test]
    fn fabric_transport_works_on_any_backend() {
        // Sim backend.
        let mut net: SimNet<GcsWire<u32>> = SimNet::new(LinkConfig::ideal(), 1);
        let a = net.register_node();
        let b = net.register_node();
        FabricTransport::new(&mut net, a).send(b, GcsWire::Leave);
        net.advance(SimDuration::from_millis(1));
        assert_eq!(net.recv(b).unwrap().payload, GcsWire::<u32>::Leave);

        // Real backend.
        let mut rt: dosgi_net::RealNet<GcsWire<u32>> = dosgi_net::RealNet::new();
        let ra = rt.register_node();
        let rb = rt.register_node();
        let mut ea = rt.endpoint(ra);
        let mut eb = rt.endpoint(rb);
        FabricTransport::new(&mut ea, ra).send(rb, GcsWire::Nack { from_seq: 4 });
        let got = Fabric::drain(&mut eb, rb);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, GcsWire::Nack { from_seq: 4 });
        assert_eq!(got[0].from, ra);
    }

    #[test]
    fn closures_are_transports() {
        let mut sent = Vec::new();
        {
            let mut t = |to: NodeId, msg: GcsWire<u32>| sent.push((to, msg));
            Transport::send(&mut t, NodeId(3), GcsWire::Leave);
        }
        assert_eq!(sent, vec![(NodeId(3), GcsWire::Leave)]);
    }

    #[test]
    fn send_all_skips_self_and_frame_transport_encodes_once() {
        let view = crate::View::new(
            crate::ViewId::default(),
            vec![NodeId(0), NodeId(1), NodeId(2)],
        );
        let msg: GcsWire<u32> = GcsWire::ViewPropose(view);
        // Default impl: one clone per recipient, self excluded.
        let mut sent = Vec::new();
        {
            let mut t = |to: NodeId, m: GcsWire<u32>| sent.push((to, m));
            t.send_all(&[NodeId(0), NodeId(1), NodeId(2)], NodeId(1), &msg);
        }
        assert_eq!(sent.len(), 2);
        assert_eq!(sent[0].0, NodeId(0));
        assert_eq!(sent[1].0, NodeId(2));
        // Frame transport: every recipient gets byte-identical frames, and
        // they decode back to the message.
        let mut frames: Vec<(NodeId, Vec<u8>)> = Vec::new();
        {
            let mut t = FrameTransport::new(
                |to: NodeId, f: &[u8]| frames.push((to, f.to_vec())),
                |v: &u32, out: &mut Vec<u8>| out.extend_from_slice(&v.to_le_bytes()),
            );
            t.send_all(&[NodeId(0), NodeId(1), NodeId(2)], NodeId(1), &msg);
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].1, frames[1].1);
        let back = crate::wire::decode_frame(&frames[0].1, |b: &[u8]| {
            Some(u32::from_le_bytes(b.try_into().ok()?))
        })
        .unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn group_nodes_interoperate_over_byte_frames() {
        use crate::wire::{decode_frame, encode_frame_at, WIRE_VERSION_V1};
        use crate::{GcsConfig, GcsEvent, GroupNode};
        use dosgi_net::SimTime;
        use dosgi_telemetry::TraceContext;

        fn enc(v: &u32, out: &mut Vec<u8>) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn enc_owned(v: &u32) -> Vec<u8> {
            v.to_le_bytes().to_vec()
        }
        fn dec(b: &[u8]) -> Option<u32> {
            Some(u32::from_le_bytes(b.try_into().ok()?))
        }

        let ids = vec![NodeId(0), NodeId(1)];
        let mut nodes = [
            GroupNode::<u32>::new(NodeId(0), ids.clone(), GcsConfig::lan(), SimTime::ZERO),
            GroupNode::<u32>::new(NodeId(1), ids, GcsConfig::lan(), SimTime::ZERO),
        ];
        let ctx = TraceContext {
            trace_id: 1 << 40,
            parent_span: (1 << 40) | 3,
            lamport: 9,
        };
        // Node 1 (non-coordinator) orders one traced message: it travels
        // OrderRequest -> sequencer -> Ordered, serialized to bytes on
        // every hop. A second traced message queues behind it (per-origin
        // FIFO) and is released by the tick timer — which we route over a
        // *v1-downgrading* link below, proving a legacy hop still orders
        // while the trace degrades to None.
        let mut mail: Vec<(NodeId, Vec<u8>)> = Vec::new();
        {
            let mut t =
                FrameTransport::new(|to: NodeId, f: &[u8]| mail.push((to, f.to_vec())), enc);
            nodes[1].order_traced(&mut t, 7, Some(ctx));
            nodes[1].order_traced(&mut t, 8, Some(ctx));
        }
        let mut pending: Vec<(NodeId, Vec<u8>)> = mail;
        for round in 0..20 {
            if pending.is_empty() {
                break;
            }
            let mut next: Vec<(NodeId, Vec<u8>)> = Vec::new();
            for (to, frame) in pending.drain(..) {
                let msg = decode_frame(&frame, dec).expect("frame decodes");
                let mut t =
                    FrameTransport::new(|to: NodeId, f: &[u8]| next.push((to, f.to_vec())), enc);
                let from = if to == NodeId(0) {
                    NodeId(1)
                } else {
                    NodeId(0)
                };
                nodes[to.0 as usize].handle(&mut t, from, msg, SimTime::ZERO);
            }
            // Node 1's periodic traffic (heartbeats + the queued order's
            // dispatch once the head clears) leaves over a legacy link:
            // every frame is re-encoded at v1.
            let mut t = FrameTransport::new(
                |to: NodeId, f: &[u8]| {
                    let typed = decode_frame(f, dec).expect("self-decode");
                    next.push((to, encode_frame_at(WIRE_VERSION_V1, &typed, enc_owned)));
                },
                enc,
            );
            nodes[1].tick(&mut t, SimTime::ZERO);
            pending = next;
            assert!(round < 19, "byte-frame exchange did not quiesce");
        }
        for (i, node) in nodes.iter_mut().enumerate() {
            let ordered: Vec<(u32, Option<TraceContext>)> = node
                .take_events()
                .into_iter()
                .filter_map(|e| match e {
                    GcsEvent::OrderedDeliver { payload, trace, .. } => Some((payload, trace)),
                    _ => None,
                })
                .collect();
            assert_eq!(
                ordered,
                vec![(7, Some(ctx)), (8, None)],
                "node {i}: traced v2 hop keeps the context, v1 hop drops it"
            );
        }
    }
}
