//! The wire protocol between group members.

use crate::View;
use crate::ViewId;
use dosgi_net::NodeId;

/// Messages exchanged by [`GroupNode`](crate::GroupNode)s. Generic over the
/// application payload `A` so upper layers send plain Rust values.
#[derive(Debug, Clone, PartialEq)]
pub enum GcsWire<A> {
    /// "I am alive" — the failure-detector pulse. Carries the sender's
    /// current FIFO head and (when the sender is the sequencer) its ordered
    /// head, so receivers can detect streams they lost entirely
    /// (anti-entropy: a receiver behind either counter nacks even if it
    /// never saw a gap).
    Heartbeat {
        /// The sender's highest assigned FIFO sequence number.
        sent: u64,
        /// The sender's highest assigned global order number (meaningful
        /// only from the current coordinator).
        ordered: u64,
        /// The sender's incarnation (its start time): receivers reset the
        /// sender's FIFO stream when this changes — and only then. A mere
        /// suspicion flap must NOT reset the stream (that would re-deliver
        /// the retransmission buffer).
        incarnation: u64,
        /// The sender's current view id. View commits are fire-and-forget;
        /// a member advertising an older id than the receiver's missed one
        /// and is re-sent the current view (view anti-entropy).
        view: ViewId,
    },
    /// "I am leaving gracefully" — peers exclude the sender immediately
    /// instead of waiting for suspicion (the paper's normal-shutdown path).
    Leave,
    /// Coordinator proposes a new view.
    ViewPropose(View),
    /// A member acknowledges a proposal.
    ViewAck {
        /// The proposal being acknowledged.
        id: ViewId,
        /// If the acker is the proposed view's coordinator *and* its
        /// current stream continues (it already sequences its own view),
        /// its current ordered-stream position; 0 otherwise. The proposer
        /// cannot know this — it may propose a view coordinated by someone
        /// else — so the coordinator-elect reports it and the proposer
        /// patches it into the committed view's `stream_base`.
        stream_base: u64,
    },
    /// Coordinator commits an acknowledged view.
    ViewCommit(View),
    /// Reliable FIFO application data, sequenced per sender.
    Data {
        /// Per-sender sequence number (1-based, contiguous).
        seq: u64,
        /// The application payload.
        payload: A,
    },
    /// Receiver signals a gap in a sender's stream: "resend from `from_seq`".
    Nack {
        /// First missing sequence number.
        from_seq: u64,
    },
    /// A lagging member asks the sequencer to replay its ordered stream
    /// from `from_gseq`.
    OrderedReplayRequest {
        /// First missing global sequence number.
        from_gseq: u64,
    },
    /// A member asks the sequencer (coordinator) to order a message.
    OrderRequest {
        /// The origin's incarnation: ordering identity is
        /// `(origin, incarnation, origin_seq)`, so a restarted origin's
        /// fresh sequence numbers can never collide with its previous
        /// life's in the sequencer's dedupe state.
        incarnation: u64,
        /// The origin's local ordering sequence (for dedupe/retry).
        origin_seq: u64,
        /// The application payload.
        payload: A,
    },
    /// The sequencer's ordered announcement, carried inside its own
    /// FIFO-reliable stream.
    Ordered {
        /// Global sequence number.
        gseq: u64,
        /// The node that originated the message.
        origin: NodeId,
        /// The origin's incarnation at ordering time.
        origin_inc: u64,
        /// The origin's local ordering sequence.
        origin_seq: u64,
        /// The application payload.
        payload: A,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_values_are_cloneable_and_comparable() {
        let m: GcsWire<u32> = GcsWire::Data {
            seq: 1,
            payload: 42,
        };
        assert_eq!(m.clone(), m);
        let hb: GcsWire<u32> = GcsWire::Heartbeat {
            sent: 0,
            ordered: 0,
            incarnation: 1,
            view: ViewId::default(),
        };
        assert_ne!(hb, GcsWire::Leave);
    }
}
