//! The wire protocol between group members, plus its versioned byte
//! codec.
//!
//! The simulator moves typed `GcsWire<A>` values directly, but a real
//! deployment (and the codec robustness tests) need a byte format. The
//! codec here is the authoritative frame layout: fixed-width
//! little-endian integers, length-prefixed payload bytes supplied by an
//! application-level encoder, and a **version byte** first.
//!
//! ## Version tolerance
//!
//! * v1 frames carry no trace section; decoding one yields
//!   `trace: None` on the ordering variants.
//! * v2 (current) appends an optional [`TraceContext`] — flag byte then
//!   three `u64`s — to `OrderRequest` and `Ordered`. Old decoders would
//!   reject v2 frames by version byte rather than misparse them; new
//!   decoders accept both, so a mixed-version group keeps ordering
//!   (traces simply degrade to `None` across old links).

use crate::View;
use crate::ViewId;
use dosgi_net::NodeId;
use dosgi_telemetry::TraceContext;

/// Messages exchanged by [`GroupNode`](crate::GroupNode)s. Generic over the
/// application payload `A` so upper layers send plain Rust values.
#[derive(Debug, Clone, PartialEq)]
pub enum GcsWire<A> {
    /// "I am alive" — the failure-detector pulse. Carries the sender's
    /// current FIFO head and (when the sender is the sequencer) its ordered
    /// head, so receivers can detect streams they lost entirely
    /// (anti-entropy: a receiver behind either counter nacks even if it
    /// never saw a gap).
    Heartbeat {
        /// The sender's highest assigned FIFO sequence number.
        sent: u64,
        /// The sender's highest assigned global order number (meaningful
        /// only from the current coordinator).
        ordered: u64,
        /// The sender's incarnation (its start time): receivers reset the
        /// sender's FIFO stream when this changes — and only then. A mere
        /// suspicion flap must NOT reset the stream (that would re-deliver
        /// the retransmission buffer).
        incarnation: u64,
        /// The sender's current view id. View commits are fire-and-forget;
        /// a member advertising an older id than the receiver's missed one
        /// and is re-sent the current view (view anti-entropy).
        view: ViewId,
    },
    /// "I am leaving gracefully" — peers exclude the sender immediately
    /// instead of waiting for suspicion (the paper's normal-shutdown path).
    Leave,
    /// Coordinator proposes a new view.
    ViewPropose(View),
    /// A member acknowledges a proposal.
    ViewAck {
        /// The proposal being acknowledged.
        id: ViewId,
        /// If the acker is the proposed view's coordinator *and* its
        /// current stream continues (it already sequences its own view),
        /// its current ordered-stream position; 0 otherwise. The proposer
        /// cannot know this — it may propose a view coordinated by someone
        /// else — so the coordinator-elect reports it and the proposer
        /// patches it into the committed view's `stream_base`.
        stream_base: u64,
    },
    /// Coordinator commits an acknowledged view.
    ViewCommit(View),
    /// Reliable FIFO application data, sequenced per sender.
    Data {
        /// Per-sender sequence number (1-based, contiguous).
        seq: u64,
        /// The application payload.
        payload: A,
    },
    /// Receiver signals a gap in a sender's stream: "resend from `from_seq`".
    Nack {
        /// First missing sequence number.
        from_seq: u64,
    },
    /// A lagging member asks the sequencer to replay its ordered stream
    /// from `from_gseq`.
    OrderedReplayRequest {
        /// First missing global sequence number.
        from_gseq: u64,
    },
    /// A member asks the sequencer (coordinator) to order a message.
    OrderRequest {
        /// The origin's incarnation: ordering identity is
        /// `(origin, incarnation, origin_seq)`, so a restarted origin's
        /// fresh sequence numbers can never collide with its previous
        /// life's in the sequencer's dedupe state.
        incarnation: u64,
        /// The origin's local ordering sequence (for dedupe/retry).
        origin_seq: u64,
        /// The application payload.
        payload: A,
        /// Causal trace context minted by the origin (v2 frames; `None`
        /// on untraced flows and everything decoded from v1).
        trace: Option<TraceContext>,
    },
    /// The sequencer's ordered announcement, carried inside its own
    /// FIFO-reliable stream.
    Ordered {
        /// Global sequence number.
        gseq: u64,
        /// The node that originated the message.
        origin: NodeId,
        /// The origin's incarnation at ordering time.
        origin_inc: u64,
        /// The origin's local ordering sequence.
        origin_seq: u64,
        /// The application payload.
        payload: A,
        /// The origin's causal trace context, forwarded verbatim by the
        /// sequencer so every deliverer links its spans to the origin's.
        trace: Option<TraceContext>,
    },
}

/// Current wire codec version ([`encode_frame`] always emits this).
pub const WIRE_VERSION: u8 = 2;

/// First codec version; frames carry no trace section.
pub const WIRE_VERSION_V1: u8 = 1;

const TAG_HEARTBEAT: u8 = 0;
const TAG_LEAVE: u8 = 1;
const TAG_VIEW_PROPOSE: u8 = 2;
const TAG_VIEW_ACK: u8 = 3;
const TAG_VIEW_COMMIT: u8 = 4;
const TAG_DATA: u8 = 5;
const TAG_NACK: u8 = 6;
const TAG_ORDERED_REPLAY_REQUEST: u8 = 7;
const TAG_ORDER_REQUEST: u8 = 8;
const TAG_ORDERED: u8 = 9;

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_view_id(out: &mut Vec<u8>, id: ViewId) {
    put_u64(out, id.epoch);
    put_u32(out, id.proposer.0);
}

fn put_view(out: &mut Vec<u8>, view: &View) {
    put_view_id(out, view.id);
    put_u64(out, view.stream_base);
    put_u32(out, view.members.len() as u32);
    for m in &view.members {
        put_u32(out, m.0);
    }
}

fn put_trace(out: &mut Vec<u8>, trace: &Option<TraceContext>) {
    match trace {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            put_u64(out, t.trace_id);
            put_u64(out, t.parent_span);
            put_u64(out, t.lamport);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let end = self.pos.checked_add(4)?;
        let bytes = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let bytes = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }

    fn view_id(&mut self) -> Option<ViewId> {
        Some(ViewId {
            epoch: self.u64()?,
            proposer: NodeId(self.u32()?),
        })
    }

    fn view(&mut self) -> Option<View> {
        let id = self.view_id()?;
        let stream_base = self.u64()?;
        let n = self.u32()? as usize;
        // Cheap sanity bound: a member id is 4 bytes on the wire.
        if n > self.buf.len().saturating_sub(self.pos) / 4 {
            return None;
        }
        let mut members = Vec::with_capacity(n);
        for _ in 0..n {
            members.push(NodeId(self.u32()?));
        }
        Some(View::new(id, members).with_stream_base(stream_base))
    }

    fn bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.u32()? as usize;
        let end = self.pos.checked_add(n)?;
        let bytes = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(bytes)
    }

    fn trace(&mut self, version: u8) -> Option<Option<TraceContext>> {
        if version < WIRE_VERSION {
            // v1 frames end right after the payload: no trace section.
            return Some(None);
        }
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(TraceContext {
                trace_id: self.u64()?,
                parent_span: self.u64()?,
                lamport: self.u64()?,
            })),
            _ => None,
        }
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

impl<A> GcsWire<A> {
    /// Maps the application payload, preserving every other field. Used to
    /// turn a zero-copy [`decode_frame_borrowed`] result into an owned
    /// message once (and only where) ownership is actually needed.
    pub fn map_payload<B>(self, mut f: impl FnMut(A) -> B) -> GcsWire<B> {
        match self {
            GcsWire::Heartbeat {
                sent,
                ordered,
                incarnation,
                view,
            } => GcsWire::Heartbeat {
                sent,
                ordered,
                incarnation,
                view,
            },
            GcsWire::Leave => GcsWire::Leave,
            GcsWire::ViewPropose(v) => GcsWire::ViewPropose(v),
            GcsWire::ViewAck { id, stream_base } => GcsWire::ViewAck { id, stream_base },
            GcsWire::ViewCommit(v) => GcsWire::ViewCommit(v),
            GcsWire::Data { seq, payload } => GcsWire::Data {
                seq,
                payload: f(payload),
            },
            GcsWire::Nack { from_seq } => GcsWire::Nack { from_seq },
            GcsWire::OrderedReplayRequest { from_gseq } => {
                GcsWire::OrderedReplayRequest { from_gseq }
            }
            GcsWire::OrderRequest {
                incarnation,
                origin_seq,
                payload,
                trace,
            } => GcsWire::OrderRequest {
                incarnation,
                origin_seq,
                payload: f(payload),
                trace,
            },
            GcsWire::Ordered {
                gseq,
                origin,
                origin_inc,
                origin_seq,
                payload,
                trace,
            } => GcsWire::Ordered {
                gseq,
                origin,
                origin_inc,
                origin_seq,
                payload: f(payload),
                trace,
            },
        }
    }
}

/// Encode a frame at the current [`WIRE_VERSION`]; `enc` serializes the
/// application payload.
pub fn encode_frame<A>(msg: &GcsWire<A>, enc: impl Fn(&A) -> Vec<u8>) -> Vec<u8> {
    encode_frame_at(WIRE_VERSION, msg, enc)
}

/// Encode a frame at an explicit version (v1 silently drops trace
/// contexts — the format simply has nowhere to put them). Exposed so
/// mixed-version tolerance is testable.
pub fn encode_frame_at<A>(version: u8, msg: &GcsWire<A>, enc: impl Fn(&A) -> Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_frame_into_at(version, &mut out, msg, |a, o| o.extend_from_slice(&enc(a)));
    out
}

/// Encode a frame at the current [`WIRE_VERSION`] by appending to `out` —
/// the allocation-free hot path. `enc_into` writes the application payload
/// directly into the frame buffer; the length prefix is backpatched, so no
/// intermediate payload `Vec` is ever materialized. Callers that clear and
/// reuse `out` (see [`FrameTransport`](crate::FrameTransport)) encode with
/// zero allocations in steady state.
pub fn encode_frame_into<A>(
    out: &mut Vec<u8>,
    msg: &GcsWire<A>,
    enc_into: impl Fn(&A, &mut Vec<u8>),
) {
    encode_frame_into_at(WIRE_VERSION, out, msg, enc_into);
}

/// [`encode_frame_into`] at an explicit version. Produces bytes identical
/// to [`encode_frame_at`] for the same message and payload encoding.
pub fn encode_frame_into_at<A>(
    version: u8,
    out: &mut Vec<u8>,
    msg: &GcsWire<A>,
    enc_into: impl Fn(&A, &mut Vec<u8>),
) {
    // Reserve the 4-byte length prefix, encode the payload in place, then
    // backpatch the actual length — the moral equivalent of `put_bytes`
    // without the temporary.
    fn put_payload<A>(out: &mut Vec<u8>, payload: &A, enc_into: &impl Fn(&A, &mut Vec<u8>)) {
        let len_at = out.len();
        put_u32(out, 0);
        enc_into(payload, out);
        let n = (out.len() - len_at - 4) as u32;
        out[len_at..len_at + 4].copy_from_slice(&n.to_le_bytes());
    }
    out.push(version);
    match msg {
        GcsWire::Heartbeat {
            sent,
            ordered,
            incarnation,
            view,
        } => {
            out.push(TAG_HEARTBEAT);
            put_u64(out, *sent);
            put_u64(out, *ordered);
            put_u64(out, *incarnation);
            put_view_id(out, *view);
        }
        GcsWire::Leave => out.push(TAG_LEAVE),
        GcsWire::ViewPropose(view) => {
            out.push(TAG_VIEW_PROPOSE);
            put_view(out, view);
        }
        GcsWire::ViewAck { id, stream_base } => {
            out.push(TAG_VIEW_ACK);
            put_view_id(out, *id);
            put_u64(out, *stream_base);
        }
        GcsWire::ViewCommit(view) => {
            out.push(TAG_VIEW_COMMIT);
            put_view(out, view);
        }
        GcsWire::Data { seq, payload } => {
            out.push(TAG_DATA);
            put_u64(out, *seq);
            put_payload(out, payload, &enc_into);
        }
        GcsWire::Nack { from_seq } => {
            out.push(TAG_NACK);
            put_u64(out, *from_seq);
        }
        GcsWire::OrderedReplayRequest { from_gseq } => {
            out.push(TAG_ORDERED_REPLAY_REQUEST);
            put_u64(out, *from_gseq);
        }
        GcsWire::OrderRequest {
            incarnation,
            origin_seq,
            payload,
            trace,
        } => {
            out.push(TAG_ORDER_REQUEST);
            put_u64(out, *incarnation);
            put_u64(out, *origin_seq);
            put_payload(out, payload, &enc_into);
            if version >= WIRE_VERSION {
                put_trace(out, trace);
            }
        }
        GcsWire::Ordered {
            gseq,
            origin,
            origin_inc,
            origin_seq,
            payload,
            trace,
        } => {
            out.push(TAG_ORDERED);
            put_u64(out, *gseq);
            put_u32(out, origin.0);
            put_u64(out, *origin_inc);
            put_u64(out, *origin_seq);
            put_payload(out, payload, &enc_into);
            if version >= WIRE_VERSION {
                put_trace(out, trace);
            }
        }
    }
}

/// Decode one frame (v1 or v2); `dec` parses the application payload.
/// Returns `None` on unknown versions/tags, truncation, or trailing
/// garbage.
pub fn decode_frame<A>(bytes: &[u8], dec: impl Fn(&[u8]) -> Option<A>) -> Option<GcsWire<A>> {
    decode_frame_with(bytes, dec)
}

/// Decode one frame with the payload **borrowed from the frame**: the
/// zero-copy hot path. `dec` receives a slice tied to `bytes`' lifetime,
/// so `A` may itself borrow — [`decode_frame_borrowed`] instantiates this
/// with the identity to get a `GcsWire<&[u8]>` without copying a byte.
/// Validation is identical to [`decode_frame`] (same rejection of
/// truncation, trailing garbage, bad versions/tags).
pub fn decode_frame_with<'a, A>(
    bytes: &'a [u8],
    dec: impl Fn(&'a [u8]) -> Option<A>,
) -> Option<GcsWire<A>> {
    let mut r = Reader::new(bytes);
    let version = r.u8()?;
    if version == 0 || version > WIRE_VERSION {
        return None;
    }
    let tag = r.u8()?;
    let msg = match tag {
        TAG_HEARTBEAT => GcsWire::Heartbeat {
            sent: r.u64()?,
            ordered: r.u64()?,
            incarnation: r.u64()?,
            view: r.view_id()?,
        },
        TAG_LEAVE => GcsWire::Leave,
        TAG_VIEW_PROPOSE => GcsWire::ViewPropose(r.view()?),
        TAG_VIEW_ACK => GcsWire::ViewAck {
            id: r.view_id()?,
            stream_base: r.u64()?,
        },
        TAG_VIEW_COMMIT => GcsWire::ViewCommit(r.view()?),
        TAG_DATA => GcsWire::Data {
            seq: r.u64()?,
            payload: dec(r.bytes()?)?,
        },
        TAG_NACK => GcsWire::Nack { from_seq: r.u64()? },
        TAG_ORDERED_REPLAY_REQUEST => GcsWire::OrderedReplayRequest {
            from_gseq: r.u64()?,
        },
        TAG_ORDER_REQUEST => GcsWire::OrderRequest {
            incarnation: r.u64()?,
            origin_seq: r.u64()?,
            payload: dec(r.bytes()?)?,
            trace: r.trace(version)?,
        },
        TAG_ORDERED => GcsWire::Ordered {
            gseq: r.u64()?,
            origin: NodeId(r.u32()?),
            origin_inc: r.u64()?,
            origin_seq: r.u64()?,
            payload: dec(r.bytes()?)?,
            trace: r.trace(version)?,
        },
        _ => return None,
    };
    r.done().then_some(msg)
}

/// Zero-copy decode: the payload of `Data`/`OrderRequest`/`Ordered` is a
/// slice into `bytes` — no allocation, no copy. Use
/// [`GcsWire::map_payload`] to take ownership when a message must outlive
/// the receive buffer.
pub fn decode_frame_borrowed(bytes: &[u8]) -> Option<GcsWire<&[u8]>> {
    decode_frame_with(bytes, Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc_into(v: &u32, out: &mut Vec<u8>) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    fn enc(v: &u32) -> Vec<u8> {
        let mut out = Vec::with_capacity(4);
        enc_into(v, &mut out);
        out
    }

    fn dec(b: &[u8]) -> Option<u32> {
        Some(u32::from_le_bytes(b.try_into().ok()?))
    }

    fn sample_trace() -> TraceContext {
        TraceContext {
            trace_id: (3 << 40) | 1,
            parent_span: (3 << 40) | 2,
            lamport: 17,
        }
    }

    fn samples() -> Vec<GcsWire<u32>> {
        let view = View::new(
            ViewId {
                epoch: 4,
                proposer: NodeId(2),
            },
            vec![NodeId(2), NodeId(3), NodeId(5)],
        )
        .with_stream_base(9);
        vec![
            GcsWire::Heartbeat {
                sent: 10,
                ordered: 20,
                incarnation: 30,
                view: view.id,
            },
            GcsWire::Leave,
            GcsWire::ViewPropose(view.clone()),
            GcsWire::ViewAck {
                id: view.id,
                stream_base: 7,
            },
            GcsWire::ViewCommit(view),
            GcsWire::Data {
                seq: 3,
                payload: 42,
            },
            GcsWire::Nack { from_seq: 2 },
            GcsWire::OrderedReplayRequest { from_gseq: 11 },
            GcsWire::OrderRequest {
                incarnation: 8,
                origin_seq: 5,
                payload: 77,
                trace: Some(sample_trace()),
            },
            GcsWire::OrderRequest {
                incarnation: 8,
                origin_seq: 6,
                payload: 78,
                trace: None,
            },
            GcsWire::Ordered {
                gseq: 12,
                origin: NodeId(3),
                origin_inc: 8,
                origin_seq: 5,
                payload: 77,
                trace: Some(sample_trace()),
            },
        ]
    }

    #[test]
    fn wire_values_are_cloneable_and_comparable() {
        let m: GcsWire<u32> = GcsWire::Data {
            seq: 1,
            payload: 42,
        };
        assert_eq!(m.clone(), m);
        let hb: GcsWire<u32> = GcsWire::Heartbeat {
            sent: 0,
            ordered: 0,
            incarnation: 1,
            view: ViewId::default(),
        };
        assert_ne!(hb, GcsWire::Leave);
    }

    #[test]
    fn codec_round_trips_every_variant() {
        for msg in samples() {
            let bytes = encode_frame(&msg, enc);
            assert_eq!(bytes[0], WIRE_VERSION);
            let back = decode_frame(&bytes, dec).expect("decodes");
            assert_eq!(back, msg, "round trip of {msg:?}");
        }
    }

    #[test]
    fn v1_frames_decode_with_no_trace() {
        // An old sender has no trace section at all; the new decoder
        // must still accept its ordering frames.
        let msg = GcsWire::Ordered {
            gseq: 12,
            origin: NodeId(3),
            origin_inc: 8,
            origin_seq: 5,
            payload: 77u32,
            trace: Some(sample_trace()),
        };
        let old = encode_frame_at(WIRE_VERSION_V1, &msg, enc);
        assert_eq!(old[0], WIRE_VERSION_V1);
        match decode_frame(&old, dec).expect("v1 decodes") {
            GcsWire::Ordered { payload, trace, .. } => {
                assert_eq!(payload, 77);
                assert_eq!(trace, None, "v1 has nowhere to carry the trace");
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // Non-ordering variants are byte-identical across versions bar
        // the version byte.
        let hb: GcsWire<u32> = GcsWire::Nack { from_seq: 2 };
        let v1 = encode_frame_at(WIRE_VERSION_V1, &hb, enc);
        let v2 = encode_frame(&hb, enc);
        assert_eq!(v1[1..], v2[1..]);
        assert_eq!(decode_frame(&v1, dec), decode_frame(&v2, dec));
    }

    #[test]
    fn truncation_and_garbage_are_rejected() {
        for msg in samples() {
            let bytes = encode_frame(&msg, enc);
            for cut in 0..bytes.len() {
                assert_eq!(
                    decode_frame(&bytes[..cut], dec),
                    None,
                    "truncated {msg:?} at {cut}"
                );
            }
            let mut padded = bytes.clone();
            padded.push(0);
            assert_eq!(decode_frame(&padded, dec), None, "trailing byte accepted");
        }
        assert_eq!(decode_frame(&[], dec), None);
        assert_eq!(decode_frame(&[0, TAG_LEAVE], dec), None, "version 0");
        assert_eq!(
            decode_frame(&[WIRE_VERSION + 1, TAG_LEAVE], dec),
            None,
            "future version"
        );
        assert_eq!(decode_frame(&[WIRE_VERSION, 99], dec), None, "bad tag");
    }

    #[test]
    fn encode_into_matches_owning_encode_and_reuses_the_buffer() {
        let mut scratch = Vec::new();
        for version in [WIRE_VERSION_V1, WIRE_VERSION] {
            for msg in samples() {
                let owned = encode_frame_at(version, &msg, enc);
                scratch.clear();
                encode_frame_into_at(version, &mut scratch, &msg, enc_into);
                assert_eq!(scratch, owned, "v{version} {msg:?}");
            }
        }
        // The default-version entry point agrees too.
        let msg = GcsWire::Data {
            seq: 3,
            payload: 42u32,
        };
        scratch.clear();
        encode_frame_into(&mut scratch, &msg, enc_into);
        assert_eq!(scratch, encode_frame(&msg, enc));
    }

    #[test]
    fn borrowed_decode_points_into_the_frame() {
        let msg = GcsWire::Ordered {
            gseq: 12,
            origin: NodeId(3),
            origin_inc: 8,
            origin_seq: 5,
            payload: 0xDEAD_BEEFu32,
            trace: Some(sample_trace()),
        };
        let bytes = encode_frame(&msg, enc);
        let borrowed = decode_frame_borrowed(&bytes).expect("decodes");
        match &borrowed {
            GcsWire::Ordered { payload, .. } => {
                // The payload slice is literally inside the frame buffer.
                let frame = bytes.as_ptr() as usize;
                let p = payload.as_ptr() as usize;
                assert!(p >= frame && p + payload.len() <= frame + bytes.len());
                assert_eq!(*payload, 0xDEAD_BEEFu32.to_le_bytes());
            }
            other => panic!("wrong variant: {other:?}"),
        }
        // map_payload takes ownership and reproduces the typed message.
        let owned = borrowed.map_payload(|b| dec(b).unwrap());
        assert_eq!(owned, msg);
    }

    /// The zero-copy decoder must agree with the owning decoder on every
    /// input — valid frames, truncations, and bit flips alike. 200 cases.
    #[test]
    fn prop_borrowed_decode_equals_owning_decode() {
        use dosgi_testkit::prop;

        // Arbitrary mutation recipe over an arbitrary sample frame:
        // (sample index, version, cut length, flip position, flip mask).
        let gen = prop::u64s(0, u64::MAX);
        let cfg = prop::Config::with_cases(200);
        prop::check_with(&cfg, "borrowed_decode_equals_owning", &gen, |&raw| {
            let all = samples();
            let msg = &all[(raw % all.len() as u64) as usize];
            let version = if raw & 1 == 0 {
                WIRE_VERSION
            } else {
                WIRE_VERSION_V1
            };
            let mut bytes = encode_frame_at(version, msg, enc);
            // Maybe truncate, maybe flip a bit — driven by the raw seed.
            let cut = ((raw >> 8) % (bytes.len() as u64 + 1)) as usize;
            bytes.truncate(cut.max(1));
            if raw >> 16 & 1 == 1 {
                let at = ((raw >> 24) % bytes.len() as u64) as usize;
                bytes[at] ^= 1 << ((raw >> 32) % 8);
            }
            let owning = decode_frame(&bytes, dec);
            // Map the borrowed result through the same payload decoder;
            // a payload `dec` rejects must reject the whole frame, exactly
            // as the owning path does.
            let via_borrowed = match decode_frame_borrowed(&bytes) {
                None => None,
                Some(m) => {
                    let mut ok = true;
                    let mapped = m.map_payload(|b| match dec(b) {
                        Some(v) => v,
                        None => {
                            ok = false;
                            0
                        }
                    });
                    ok.then_some(mapped)
                }
            };
            if owning != via_borrowed {
                return Err(format!(
                    "owning {owning:?} != borrowed {via_borrowed:?} on {bytes:?}"
                ));
            }
            // When the frame is accepted, the borrowed payload bytes
            // re-encode to exactly the input (the codec is canonical).
            if owning.is_some() {
                let raw_payload = decode_frame_borrowed(&bytes)
                    .expect("accepted above")
                    .map_payload(|b| b.to_vec());
                let reenc = encode_frame_at(bytes[0], &raw_payload, |p: &Vec<u8>| p.clone());
                if reenc != bytes {
                    return Err(format!("re-encode mismatch on {bytes:?}"));
                }
            }
            Ok(())
        });
    }

    #[test]
    fn bogus_member_count_is_rejected_without_allocation() {
        let view = View::new(ViewId::default(), vec![NodeId(0)]);
        let mut bytes = encode_frame(&GcsWire::<u32>::ViewCommit(view), enc);
        // Patch the member count (after version+tag+epoch+proposer+base)
        // to a huge value; the decoder must bail on the sanity bound.
        let count_at = 1 + 1 + 8 + 4 + 8;
        bytes[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_frame(&bytes, dec), None);
    }
}
