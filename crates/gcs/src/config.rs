//! Protocol timing parameters.

use dosgi_net::SimDuration;

/// Timing knobs for the membership and broadcast protocols.
///
/// The failover experiment (**E6**) sweeps `heartbeat_interval` /
/// `suspect_timeout` to show the classic detection-latency/false-positive
/// trade-off the paper inherits from its GCS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcsConfig {
    /// How often each member broadcasts a heartbeat.
    pub heartbeat_interval: SimDuration,
    /// Silence after which a peer is suspected crashed. Must exceed the
    /// heartbeat interval by a healthy margin (≥3× is sensible on a LAN).
    pub suspect_timeout: SimDuration,
    /// How often an uncommitted view proposal is re-sent.
    pub propose_resend: SimDuration,
    /// How often undelivered ordered requests are re-sent to the sequencer.
    pub order_resend: SimDuration,
}

impl GcsConfig {
    /// LAN defaults: 50ms heartbeats, 200ms suspicion.
    pub fn lan() -> Self {
        GcsConfig {
            heartbeat_interval: SimDuration::from_millis(50),
            suspect_timeout: SimDuration::from_millis(200),
            propose_resend: SimDuration::from_millis(100),
            order_resend: SimDuration::from_millis(150),
        }
    }

    /// Aggressive detection for fast-failover experiments: 10ms/40ms.
    pub fn fast() -> Self {
        GcsConfig {
            heartbeat_interval: SimDuration::from_millis(10),
            suspect_timeout: SimDuration::from_millis(40),
            propose_resend: SimDuration::from_millis(20),
            order_resend: SimDuration::from_millis(30),
        }
    }

    /// Scales heartbeat and suspicion together, preserving the ratio — the
    /// knob experiment E6 sweeps.
    pub fn with_heartbeat(mut self, interval: SimDuration) -> Self {
        let ratio = self.suspect_timeout.as_micros() / self.heartbeat_interval.as_micros().max(1);
        self.heartbeat_interval = interval;
        self.suspect_timeout = interval * ratio;
        self
    }
}

impl Default for GcsConfig {
    fn default() -> Self {
        GcsConfig::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let c = GcsConfig::lan();
        assert!(c.suspect_timeout > c.heartbeat_interval * 2);
        let f = GcsConfig::fast();
        assert!(f.heartbeat_interval < c.heartbeat_interval);
        assert_eq!(GcsConfig::default(), GcsConfig::lan());
    }

    #[test]
    fn with_heartbeat_preserves_ratio() {
        let c = GcsConfig::lan().with_heartbeat(SimDuration::from_millis(10));
        assert_eq!(c.heartbeat_interval, SimDuration::from_millis(10));
        assert_eq!(c.suspect_timeout, SimDuration::from_millis(40));
    }
}
