//! # dosgi-gcs — group communication
//!
//! §3.2 of the paper requires a group communication system (it cites jGCS):
//!
//! > *"To address most of these issues in a dependable way we clearly need a
//! > group communication system (GCS) … Using a GCS and more particularly
//! > its membership service we have for free the knowledge of all the
//! > available nodes."*
//!
//! This crate provides that service over the `dosgi-net` simulator:
//!
//! * **failure detection** — periodic heartbeats; a peer silent for longer
//!   than the timeout is suspected ([`GcsConfig`]);
//! * **membership views** ([`View`]) — agreed via a coordinator-driven
//!   propose/ack/commit protocol; every membership change (join, graceful
//!   leave, crash) produces a [`GcsEvent::ViewChange`] carrying exactly the
//!   joined/left sets the paper's Migration Module reacts to;
//! * **reliable FIFO broadcast** — per-sender sequence numbers,
//!   negative-acknowledgement retransmission, duplicate suppression;
//! * **total-order broadcast** — a coordinator-sequenced stream (the
//!   classic fixed-sequencer construction): because the sequencer's own
//!   stream is FIFO-reliable, all correct members deliver ordered messages
//!   in the same global order. The migration layer uses this to agree on
//!   failover placements without a central authority.
//!
//! Split-brain caveat: during a partition each side may install its own
//! view. The crate exposes [`View::has_majority`] so the layer above only
//! *acts* (migrates customers) in a primary partition — the standard
//! primary-component discipline.

mod config;
mod node;
mod transport;
mod view;
pub mod wire;

pub use config::GcsConfig;
pub use node::{GcsEvent, GroupNode};
pub use transport::{FabricTransport, FrameTransport, SimTransport, Transport};
pub use view::{View, ViewId};
pub use wire::{
    decode_frame, decode_frame_borrowed, decode_frame_with, encode_frame, encode_frame_at,
    encode_frame_into, encode_frame_into_at, GcsWire, WIRE_VERSION,
};
