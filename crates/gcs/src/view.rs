//! Membership views.

use dosgi_net::NodeId;
use std::fmt;

/// A view identifier: `(epoch, proposer)`, totally ordered. Higher epochs
/// supersede lower; the proposer id breaks ties between concurrent
/// proposals (which can only arise across a partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ViewId {
    /// Monotonically increasing epoch.
    pub epoch: u64,
    /// The node that proposed the view.
    pub proposer: NodeId,
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}@{}", self.epoch, self.proposer)
    }
}

/// An agreed membership view: the set of nodes currently believed alive.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct View {
    /// The view's identifier.
    pub id: ViewId,
    /// Members, sorted ascending. The first member is the coordinator
    /// (lowest live id), which also acts as the total-order sequencer.
    pub members: Vec<NodeId>,
    /// The coordinator's ordered-stream position (last assigned global
    /// sequence number) when this view was proposed. A member for whom
    /// this view *changes* the coordinator is joining an ongoing stream:
    /// it starts its delivery cursor just past `stream_base` rather than
    /// replaying the stream's history — messages ordered before it joined
    /// belong to a state it obtains via application-level state transfer,
    /// and re-applying them on top of that state is not idempotent.
    pub stream_base: u64,
}

impl View {
    /// Creates a view, sorting and deduplicating the members.
    pub fn new(id: ViewId, mut members: Vec<NodeId>) -> Self {
        members.sort();
        members.dedup();
        View {
            id,
            members,
            stream_base: 0,
        }
    }

    /// Sets the ordered-stream base (see the field docs).
    pub fn with_stream_base(mut self, stream_base: u64) -> Self {
        self.stream_base = stream_base;
        self
    }

    /// The coordinator: lowest member id.
    pub fn coordinator(&self) -> Option<NodeId> {
        self.members.first().copied()
    }

    /// True if `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.binary_search(&node).is_ok()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True for the empty view.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// True if this view contains a strict majority of `universe_size`
    /// nodes — the primary-component test that gates failover actions.
    pub fn has_majority(&self, universe_size: usize) -> bool {
        self.members.len() * 2 > universe_size
    }

    /// Members in `self` but not `older` (joined) and members in `older`
    /// but not `self` (left).
    pub fn diff(&self, older: &View) -> (Vec<NodeId>, Vec<NodeId>) {
        let joined = self
            .members
            .iter()
            .filter(|m| !older.contains(**m))
            .copied()
            .collect();
        let left = older
            .members
            .iter()
            .filter(|m| !self.contains(**m))
            .copied()
            .collect();
        (joined, left)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.id)?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(epoch: u64, members: &[u32]) -> View {
        View::new(
            ViewId {
                epoch,
                proposer: NodeId(members.first().copied().unwrap_or(0)),
            },
            members.iter().map(|&i| NodeId(i)).collect(),
        )
    }

    #[test]
    fn members_sorted_and_deduped() {
        let view = View::new(ViewId::default(), vec![NodeId(2), NodeId(0), NodeId(2)]);
        assert_eq!(view.members, vec![NodeId(0), NodeId(2)]);
        assert_eq!(view.coordinator(), Some(NodeId(0)));
        assert!(view.contains(NodeId(2)));
        assert!(!view.contains(NodeId(1)));
    }

    #[test]
    fn view_ids_order_lexicographically() {
        let a = ViewId {
            epoch: 1,
            proposer: NodeId(5),
        };
        let b = ViewId {
            epoch: 2,
            proposer: NodeId(0),
        };
        let c = ViewId {
            epoch: 2,
            proposer: NodeId(1),
        };
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn majority_test() {
        assert!(v(1, &[0, 1, 2]).has_majority(5));
        assert!(!v(1, &[0, 1]).has_majority(5));
        assert!(!v(1, &[0]).has_majority(2)); // exactly half is not majority
        assert!(v(1, &[0, 1]).has_majority(3));
    }

    #[test]
    fn diff_computes_joins_and_leaves() {
        let old = v(1, &[0, 1, 2]);
        let new = v(2, &[1, 2, 3]);
        let (joined, left) = new.diff(&old);
        assert_eq!(joined, vec![NodeId(3)]);
        assert_eq!(left, vec![NodeId(0)]);
        let (j2, l2) = new.diff(&new);
        assert!(j2.is_empty() && l2.is_empty());
    }

    #[test]
    fn display() {
        assert_eq!(v(3, &[0, 2]).to_string(), "v3@n0{n0,n2}");
        assert!(View::default().is_empty());
    }
}
