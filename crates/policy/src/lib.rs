//! # dosgi-policy — the Autonomic Module
//!
//! §3.3 of the paper delegates SLA enforcement to an autonomic component
//! built on *Serpentine* (Matos et al., SAC 2008): stateless, composable in
//! hierarchies, with business policies written *programmatically* via
//! JSR-223 (Scripting for the Java Platform).
//!
//! This crate reproduces that component with an embedded policy-script
//! language:
//!
//! ```text
//! rule high_cpu {
//!     when cpu_share($i) > quota_cpu($i) * 1.2 for 3
//!     then migrate($i)
//! }
//! rule oom {
//!     when memory($i) > quota_mem($i)
//!     then stop($i); alert("memory quota exceeded")
//! }
//! rule consolidate {
//!     when node_cpu() < 0.15 and instance_count() > 0
//!     then hibernate()
//! }
//! ```
//!
//! * Rules are evaluated **per subject** (each virtual instance binds
//!   `$i` in turn); nullary metric functions read node-level values.
//! * `for N` requires the condition to hold on N consecutive evaluations —
//!   the debouncing every real autonomic controller needs.
//! * Metric functions are resolved against a [`Blackboard`] the Monitoring
//!   Module fills each sampling period.
//! * Actions become [`PolicyAction`]s the embedding (the `dosgi-core`
//!   Autonomic Module) executes: migrate, stop, throttle, restart, alert,
//!   hibernate, wake.
//! * [`Hierarchy`] composes engines in levels with subject scopes, the
//!   paper's "cascading capabilities … different levels of control".
//!
//! The full pipeline:
//!
//! ```
//! use dosgi_policy::{Blackboard, PolicyEngine, PolicyAction};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut engine = PolicyEngine::compile(
//!     "rule oom { when memory($i) > quota_mem($i) then stop($i) }",
//! )?;
//! let mut bb = Blackboard::new();
//! bb.set_subject_metric("acme", "memory", 600.0);
//! bb.set_subject_metric("acme", "quota_mem", 500.0);
//! let decisions = engine.evaluate(&bb, &["acme".to_owned()]);
//! assert_eq!(decisions.len(), 1);
//! assert!(matches!(decisions[0].action, PolicyAction::Stop { .. }));
//! # Ok(())
//! # }
//! ```

mod actions;
mod ast;
mod blackboard;
mod engine;
mod eval;
mod hierarchy;
mod lexer;
mod parser;

pub use actions::{PolicyAction, PolicyDecision};
pub use ast::{ActionCall, Expr, Rule, Script};
pub use blackboard::Blackboard;
pub use engine::PolicyEngine;
pub use eval::{EvalError, MetricSource};
pub use hierarchy::{Hierarchy, Level, LevelDecision};
pub use lexer::{LexError, Token};
pub use parser::ParseError;
