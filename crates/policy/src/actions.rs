//! Actions a policy can request.

use std::fmt;

/// A concrete action the embedding (the node's Autonomic Module) should
/// execute. §3.3: *"stopping a given virtual instance, giving it lower
/// priority … or swap it, if possible, to a suitable node"*, plus the
/// consolidation/power actions from §4.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyAction {
    /// Move the instance to another node (destination chosen by the
    /// Migration Module's placement logic).
    Migrate {
        /// The instance to move.
        subject: String,
    },
    /// Stop the instance (hard SLA enforcement).
    Stop {
        /// The instance to stop.
        subject: String,
    },
    /// Reduce the instance's scheduling priority / CPU share.
    Throttle {
        /// The instance to deprioritize.
        subject: String,
    },
    /// Restart the instance.
    Restart {
        /// The instance to restart.
        subject: String,
    },
    /// Raise an operator alert.
    Alert {
        /// The subject the alert concerns, if per-subject.
        subject: Option<String>,
        /// The alert text.
        message: String,
    },
    /// Consolidate: this node should hand off its instances and power down
    /// (the paper's green-computing side effect).
    HibernateNode,
    /// Bring a hibernated node back.
    WakeNode,
    /// Add serving capacity (wake a standby / add a replica behind the
    /// VIP) — the reaction to a sustained latency-SLO breach.
    ScaleOut,
    /// Start shedding the named request class at the admission layer
    /// (overload: sacrifice best-effort traffic to protect SLO-critical
    /// classes).
    ShedClass {
        /// The class to shed (e.g. `"background"`).
        class: String,
    },
    /// Begin a cluster-wide rolling bundle upgrade: one node at a time is
    /// drained at the director, its bundles hot-swapped in place, then
    /// un-drained — a cluster-level action the driver orchestrates (E14).
    UpgradeWave,
    /// An action the engine does not recognize; forwarded verbatim so
    /// embeddings can extend the vocabulary.
    Custom {
        /// The action name from the script.
        name: String,
        /// The subject, if the rule was per-subject.
        subject: Option<String>,
        /// Stringified arguments.
        args: Vec<String>,
    },
}

impl fmt::Display for PolicyAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyAction::Migrate { subject } => write!(f, "migrate({subject})"),
            PolicyAction::Stop { subject } => write!(f, "stop({subject})"),
            PolicyAction::Throttle { subject } => write!(f, "throttle({subject})"),
            PolicyAction::Restart { subject } => write!(f, "restart({subject})"),
            PolicyAction::Alert { subject, message } => match subject {
                Some(s) => write!(f, "alert({s}, {message:?})"),
                None => write!(f, "alert({message:?})"),
            },
            PolicyAction::HibernateNode => write!(f, "hibernate()"),
            PolicyAction::WakeNode => write!(f, "wake()"),
            PolicyAction::ScaleOut => write!(f, "scale_out()"),
            PolicyAction::ShedClass { class } => write!(f, "shed_class({class})"),
            PolicyAction::UpgradeWave => write!(f, "upgrade_wave()"),
            PolicyAction::Custom {
                name,
                subject,
                args,
            } => {
                write!(f, "{name}(")?;
                if let Some(s) = subject {
                    write!(f, "{s}")?;
                    if !args.is_empty() {
                        write!(f, ", ")?;
                    }
                }
                write!(f, "{})", args.join(", "))
            }
        }
    }
}

/// One firing of one rule.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyDecision {
    /// The rule that fired.
    pub rule: String,
    /// The subject the rule fired for (`None` for global rules).
    pub subject: Option<String>,
    /// The requested action.
    pub action: PolicyAction,
}

impl fmt::Display for PolicyDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.subject {
            Some(s) => write!(f, "[{}/{}] {}", self.rule, s, self.action),
            None => write!(f, "[{}] {}", self.rule, self.action),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let d = PolicyDecision {
            rule: "hot".into(),
            subject: Some("acme".into()),
            action: PolicyAction::Migrate {
                subject: "acme".into(),
            },
        };
        assert_eq!(d.to_string(), "[hot/acme] migrate(acme)");
        assert_eq!(PolicyAction::HibernateNode.to_string(), "hibernate()");
        assert_eq!(PolicyAction::ScaleOut.to_string(), "scale_out()");
        assert_eq!(PolicyAction::UpgradeWave.to_string(), "upgrade_wave()");
        assert_eq!(
            PolicyAction::ShedClass {
                class: "background".into()
            }
            .to_string(),
            "shed_class(background)"
        );
        assert_eq!(
            PolicyAction::Alert {
                subject: None,
                message: "x".into()
            }
            .to_string(),
            "alert(\"x\")"
        );
        assert_eq!(
            PolicyAction::Custom {
                name: "boost".into(),
                subject: Some("a".into()),
                args: vec!["2".into()]
            }
            .to_string(),
            "boost(a, 2)"
        );
    }
}
