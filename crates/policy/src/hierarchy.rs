//! Hierarchical (cascading) policy composition.
//!
//! §3.3: *"The cascading capabilities allow instances of the module to be
//! composed on each other and therefore supporting different levels of
//! control of the system by hiding unnecessary or unwanted details on
//! different hierarchies."*
//!
//! A [`Hierarchy`] is an ordered list of [`Level`]s, each with its own
//! engine and a *scope* restricting which subjects it may see. Levels are
//! evaluated bottom-up; an [`Alert`](crate::PolicyAction::Alert) decision at
//! one level is *escalated*: re-published as a global metric
//! (`alerts_<level>`) visible to the levels above, so a cluster-level policy
//! can react to the aggregate behaviour of node-level policies without
//! seeing their subjects.

use crate::{Blackboard, PolicyAction, PolicyDecision, PolicyEngine};

/// One level of the cascade.
#[derive(Debug, Clone, PartialEq)]
pub struct Level {
    /// The level's name (e.g. `"node"`, `"cluster"`).
    pub name: String,
    /// Its engine.
    pub engine: PolicyEngine,
    /// Subject prefix this level may see (`""` sees everything).
    pub scope: String,
}

/// A decision tagged with the level that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelDecision {
    /// The producing level's name.
    pub level: String,
    /// The decision.
    pub decision: PolicyDecision,
}

/// An ordered cascade of policy levels.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Hierarchy {
    levels: Vec<Level>,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a level (builder style). Levels are evaluated in insertion
    /// order, lowest first.
    pub fn with_level(mut self, name: &str, engine: PolicyEngine, scope: &str) -> Self {
        self.levels.push(Level {
            name: name.to_owned(),
            engine,
            scope: scope.to_owned(),
        });
        self
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True if the cascade has no levels.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Evaluates every level bottom-up against `blackboard`, scoping each
    /// level's subject list and escalating alert counts to the levels
    /// above as `alerts_<level>()` global metrics.
    pub fn evaluate(
        &mut self,
        blackboard: &mut Blackboard,
        subjects: &[String],
    ) -> Vec<LevelDecision> {
        let mut out = Vec::new();
        for level in &mut self.levels {
            let scoped: Vec<String> = subjects
                .iter()
                .filter(|s| s.starts_with(&level.scope))
                .cloned()
                .collect();
            let decisions = level.engine.evaluate(blackboard, &scoped);
            let alerts = decisions
                .iter()
                .filter(|d| matches!(d.action, PolicyAction::Alert { .. }))
                .count();
            blackboard.set_global_metric(&format!("alerts_{}", level.name), alerts as f64);
            out.extend(decisions.into_iter().map(|decision| LevelDecision {
                level: level.name.clone(),
                decision,
            }));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricSource;

    #[test]
    fn levels_scope_their_subjects() {
        let node =
            PolicyEngine::compile("rule hot { when cpu($i) > 0.5 then alert(\"hot\") }").unwrap();
        let cluster = PolicyEngine::compile(
            "rule storm { when alerts_node() >= 2 then alert(\"alert storm\") }",
        )
        .unwrap();
        let mut h = Hierarchy::new()
            .with_level("node", node, "n0/")
            .with_level("cluster", cluster, "");
        let mut bb = Blackboard::new();
        bb.set_subject_metric("n0/a", "cpu", 0.9);
        bb.set_subject_metric("n0/b", "cpu", 0.8);
        bb.set_subject_metric("n1/c", "cpu", 0.9); // out of scope for "node"
        let subjects = vec!["n0/a".to_owned(), "n0/b".to_owned(), "n1/c".to_owned()];
        let decisions = h.evaluate(&mut bb, &subjects);
        // Two node-level alerts (n0/a, n0/b) escalate into one cluster
        // alert; n1/c was invisible to the node level.
        let node_alerts: Vec<_> = decisions.iter().filter(|d| d.level == "node").collect();
        let cluster_alerts: Vec<_> = decisions.iter().filter(|d| d.level == "cluster").collect();
        assert_eq!(node_alerts.len(), 2);
        assert_eq!(cluster_alerts.len(), 1);
        assert!(matches!(
            &cluster_alerts[0].decision.action,
            PolicyAction::Alert { message, .. } if message == "alert storm"
        ));
    }

    #[test]
    fn empty_hierarchy_is_quiet() {
        let mut h = Hierarchy::new();
        assert!(h.is_empty());
        let mut bb = Blackboard::new();
        assert!(h.evaluate(&mut bb, &[]).is_empty());
    }

    #[test]
    fn escalation_metric_resets_each_pass() {
        let node =
            PolicyEngine::compile("rule hot { when cpu($i) > 0.5 then alert(\"x\") }").unwrap();
        let mut h = Hierarchy::new().with_level("node", node, "");
        let mut bb = Blackboard::new();
        bb.set_subject_metric("a", "cpu", 0.9);
        h.evaluate(&mut bb, &["a".to_owned()]);
        assert_eq!(bb.metric("alerts_node", None), Some(1.0));
        bb.set_subject_metric("a", "cpu", 0.1);
        h.evaluate(&mut bb, &["a".to_owned()]);
        assert_eq!(bb.metric("alerts_node", None), Some(0.0));
    }
}
