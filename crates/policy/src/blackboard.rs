//! The metrics blackboard the Monitoring Module fills and policies read.

use crate::eval::MetricSource;
use std::collections::BTreeMap;

/// A two-level metric store: per-subject metrics (e.g. `cpu_share` of
/// instance `acme-prod`) and global metrics (e.g. `node_cpu`).
///
/// The Autonomic Module refreshes the blackboard from the
/// [`MonitoringModule`]'s report each sampling period, then evaluates its
/// [`PolicyEngine`] against it.
///
/// [`MonitoringModule`]: ../dosgi_monitor/struct.MonitoringModule.html
/// [`PolicyEngine`]: crate::PolicyEngine
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Blackboard {
    subject_metrics: BTreeMap<String, BTreeMap<String, f64>>,
    global_metrics: BTreeMap<String, f64>,
}

impl Blackboard {
    /// Creates an empty blackboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a per-subject metric.
    pub fn set_subject_metric(&mut self, subject: &str, name: &str, value: f64) {
        self.subject_metrics
            .entry(subject.to_owned())
            .or_default()
            .insert(name.to_owned(), value);
    }

    /// Sets a global metric.
    pub fn set_global_metric(&mut self, name: &str, value: f64) {
        self.global_metrics.insert(name.to_owned(), value);
    }

    /// Removes every metric of a subject (after migration/destruction).
    pub fn forget_subject(&mut self, subject: &str) {
        self.subject_metrics.remove(subject);
    }

    /// All subjects with at least one metric, sorted.
    pub fn subjects(&self) -> Vec<String> {
        self.subject_metrics.keys().cloned().collect()
    }

    /// Clears everything.
    pub fn clear(&mut self) {
        self.subject_metrics.clear();
        self.global_metrics.clear();
    }
}

impl MetricSource for Blackboard {
    fn metric(&self, name: &str, subject: Option<&str>) -> Option<f64> {
        match subject {
            Some(s) => self
                .subject_metrics
                .get(s)
                .and_then(|m| m.get(name))
                .copied(),
            None => self.global_metrics.get(name).copied(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_level_lookup() {
        let mut bb = Blackboard::new();
        bb.set_subject_metric("a", "cpu", 0.5);
        bb.set_global_metric("node_cpu", 0.9);
        assert_eq!(bb.metric("cpu", Some("a")), Some(0.5));
        assert_eq!(bb.metric("cpu", Some("b")), None);
        assert_eq!(bb.metric("node_cpu", None), Some(0.9));
        assert_eq!(bb.metric("cpu", None), None);
        assert_eq!(bb.subjects(), vec!["a"]);
    }

    #[test]
    fn forget_and_clear() {
        let mut bb = Blackboard::new();
        bb.set_subject_metric("a", "cpu", 0.5);
        bb.set_global_metric("g", 1.0);
        bb.forget_subject("a");
        assert!(bb.subjects().is_empty());
        assert_eq!(bb.metric("g", None), Some(1.0));
        bb.clear();
        assert_eq!(bb.metric("g", None), None);
    }

    #[test]
    fn overwrite_updates() {
        let mut bb = Blackboard::new();
        bb.set_subject_metric("a", "cpu", 0.5);
        bb.set_subject_metric("a", "cpu", 0.7);
        assert_eq!(bb.metric("cpu", Some("a")), Some(0.7));
    }
}
