//! The policy-script abstract syntax tree.

use std::fmt;

/// An expression in a `when` clause or an action argument.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A numeric literal.
    Number(f64),
    /// A boolean literal.
    Bool(bool),
    /// A string literal.
    Str(String),
    /// The subject variable `$i`.
    Subject,
    /// A metric-function call, e.g. `cpu_share($i)` or `node_cpu()`.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Unary negation `-x`.
    Neg(Box<Expr>),
    /// Logical `not x`.
    Not(Box<Expr>),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

/// Binary operators, loosest-binding last.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `and`
    And,
    /// `or`
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Gt => ">",
            BinOp::Lt => "<",
            BinOp::Ge => ">=",
            BinOp::Le => "<=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "and",
            BinOp::Or => "or",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Number(n) => write!(f, "{n}"),
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Str(s) => write!(f, "{s:?}"),
            Expr::Subject => write!(f, "$i"),
            Expr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Neg(e) => write!(f, "-{e}"),
            Expr::Not(e) => write!(f, "not {e}"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
        }
    }
}

/// One action invocation in a `then` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionCall {
    /// The action's name (`migrate`, `stop`, `alert`, …).
    pub name: String,
    /// Its arguments.
    pub args: Vec<Expr>,
}

impl fmt::Display for ActionCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// One `rule name { when … then … }`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The rule's name.
    pub name: String,
    /// The condition.
    pub condition: Expr,
    /// Consecutive evaluations the condition must hold (`for N`; default 1).
    pub sustain: u32,
    /// Actions fired when the condition sustains.
    pub actions: Vec<ActionCall>,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule {} {{ when {}", self.name, self.condition)?;
        if self.sustain > 1 {
            write!(f, " for {}", self.sustain)?;
        }
        write!(f, " then ")?;
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, " }}")
    }
}

/// A parsed policy script.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Script {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl Script {
    /// True if the script uses `$i` anywhere (needs per-subject
    /// evaluation).
    pub fn uses_subject(&self) -> bool {
        fn expr_uses(e: &Expr) -> bool {
            match e {
                Expr::Subject => true,
                Expr::Call { args, .. } => args.iter().any(expr_uses),
                Expr::Neg(x) | Expr::Not(x) => expr_uses(x),
                Expr::Binary { lhs, rhs, .. } => expr_uses(lhs) || expr_uses(rhs),
                _ => false,
            }
        }
        self.rules.iter().any(|r| {
            expr_uses(&r.condition) || r.actions.iter().any(|a| a.args.iter().any(expr_uses))
        })
    }
}

impl fmt::Display for Script {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_structurally() {
        let rule = Rule {
            name: "hot".into(),
            condition: Expr::Binary {
                op: BinOp::Gt,
                lhs: Box::new(Expr::Call {
                    name: "cpu".into(),
                    args: vec![Expr::Subject],
                }),
                rhs: Box::new(Expr::Number(0.5)),
            },
            sustain: 3,
            actions: vec![ActionCall {
                name: "migrate".into(),
                args: vec![Expr::Subject],
            }],
        };
        assert_eq!(
            rule.to_string(),
            "rule hot { when (cpu($i) > 0.5) for 3 then migrate($i) }"
        );
    }

    #[test]
    fn uses_subject_detection() {
        let mut script = Script::default();
        assert!(!script.uses_subject());
        script.rules.push(Rule {
            name: "global".into(),
            condition: Expr::Call {
                name: "node_cpu".into(),
                args: vec![],
            },
            sustain: 1,
            actions: vec![ActionCall {
                name: "hibernate".into(),
                args: vec![],
            }],
        });
        assert!(!script.uses_subject());
        script.rules.push(Rule {
            name: "local".into(),
            condition: Expr::Not(Box::new(Expr::Call {
                name: "idle".into(),
                args: vec![Expr::Subject],
            })),
            sustain: 1,
            actions: vec![],
        });
        assert!(script.uses_subject());
    }
}
