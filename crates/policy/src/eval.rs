//! Expression evaluation against a metric source.

use crate::ast::{BinOp, Expr};
use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A number.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Num(_) => "number",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
        }
    }

    fn as_num(&self) -> Result<f64, EvalError> {
        match self {
            Value::Num(n) => Ok(*n),
            other => Err(EvalError::Type {
                expected: "number",
                found: other.type_name(),
            }),
        }
    }

    fn as_bool(&self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(EvalError::Type {
                expected: "bool",
                found: other.type_name(),
            }),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// An evaluation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A metric function had no value for the subject.
    UnknownMetric {
        /// The metric's name.
        name: String,
        /// The subject queried, if any.
        subject: Option<String>,
    },
    /// A type mismatch.
    Type {
        /// What the operator needed.
        expected: &'static str,
        /// What it got.
        found: &'static str,
    },
    /// Wrong number or kind of arguments to a function.
    Arity {
        /// The function.
        name: String,
        /// A description of the expectation.
        expected: &'static str,
    },
    /// `$i` used where no subject is bound (global evaluation).
    NoSubject,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownMetric { name, subject } => match subject {
                Some(s) => write!(f, "unknown metric {name}({s})"),
                None => write!(f, "unknown metric {name}()"),
            },
            EvalError::Type { expected, found } => {
                write!(f, "type error: expected {expected}, found {found}")
            }
            EvalError::Arity { name, expected } => {
                write!(f, "bad arguments to {name}: expected {expected}")
            }
            EvalError::NoSubject => write!(f, "$i used outside a per-subject rule"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Where metric-function values come from — implemented by
/// [`Blackboard`](crate::Blackboard) and by anything else the embedding
/// wants to expose to scripts.
pub trait MetricSource {
    /// The value of metric `name` for `subject` (or the node-global value
    /// when `subject` is `None`), if known.
    fn metric(&self, name: &str, subject: Option<&str>) -> Option<f64>;
}

/// Evaluates `expr` with `$i` bound to `subject` (or unbound for global
/// rules).
///
/// Built-in numeric functions (`min`, `max`, `abs`) are evaluated
/// directly; every other call is resolved through `source`: a nullary call
/// reads a global metric, a call whose single argument is `$i` or a string
/// reads a per-subject metric.
///
/// # Errors
///
/// See [`EvalError`].
pub fn eval(
    expr: &Expr,
    source: &dyn MetricSource,
    subject: Option<&str>,
) -> Result<Value, EvalError> {
    match expr {
        Expr::Number(n) => Ok(Value::Num(*n)),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Str(s) => Ok(Value::Str(s.clone())),
        Expr::Subject => match subject {
            Some(s) => Ok(Value::Str(s.to_owned())),
            None => Err(EvalError::NoSubject),
        },
        Expr::Neg(inner) => Ok(Value::Num(-eval(inner, source, subject)?.as_num()?)),
        Expr::Not(inner) => Ok(Value::Bool(!eval(inner, source, subject)?.as_bool()?)),
        Expr::Call { name, args } => eval_call(name, args, source, subject),
        Expr::Binary { op, lhs, rhs } => {
            // Short-circuit logical operators.
            match op {
                BinOp::And => {
                    return Ok(Value::Bool(
                        eval(lhs, source, subject)?.as_bool()?
                            && eval(rhs, source, subject)?.as_bool()?,
                    ))
                }
                BinOp::Or => {
                    return Ok(Value::Bool(
                        eval(lhs, source, subject)?.as_bool()?
                            || eval(rhs, source, subject)?.as_bool()?,
                    ))
                }
                _ => {}
            }
            let l = eval(lhs, source, subject)?;
            let r = eval(rhs, source, subject)?;
            match op {
                BinOp::Add => Ok(Value::Num(l.as_num()? + r.as_num()?)),
                BinOp::Sub => Ok(Value::Num(l.as_num()? - r.as_num()?)),
                BinOp::Mul => Ok(Value::Num(l.as_num()? * r.as_num()?)),
                BinOp::Div => Ok(Value::Num(l.as_num()? / r.as_num()?)),
                BinOp::Gt => Ok(Value::Bool(l.as_num()? > r.as_num()?)),
                BinOp::Lt => Ok(Value::Bool(l.as_num()? < r.as_num()?)),
                BinOp::Ge => Ok(Value::Bool(l.as_num()? >= r.as_num()?)),
                BinOp::Le => Ok(Value::Bool(l.as_num()? <= r.as_num()?)),
                BinOp::Eq => Ok(Value::Bool(values_equal(&l, &r))),
                BinOp::Ne => Ok(Value::Bool(!values_equal(&l, &r))),
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
    }
}

fn values_equal(l: &Value, r: &Value) -> bool {
    match (l, r) {
        (Value::Num(a), Value::Num(b)) => a == b,
        (Value::Bool(a), Value::Bool(b)) => a == b,
        (Value::Str(a), Value::Str(b)) => a == b,
        _ => false,
    }
}

fn eval_call(
    name: &str,
    args: &[Expr],
    source: &dyn MetricSource,
    subject: Option<&str>,
) -> Result<Value, EvalError> {
    // Numeric built-ins.
    match name {
        "min" | "max" => {
            if args.len() != 2 {
                return Err(EvalError::Arity {
                    name: name.to_owned(),
                    expected: "two numbers",
                });
            }
            let a = eval(&args[0], source, subject)?.as_num()?;
            let b = eval(&args[1], source, subject)?.as_num()?;
            return Ok(Value::Num(if name == "min" { a.min(b) } else { a.max(b) }));
        }
        "abs" => {
            if args.len() != 1 {
                return Err(EvalError::Arity {
                    name: name.to_owned(),
                    expected: "one number",
                });
            }
            return Ok(Value::Num(eval(&args[0], source, subject)?.as_num()?.abs()));
        }
        _ => {}
    }
    // Metric functions: nullary (global) or unary ($i / string subject).
    let resolved_subject: Option<String> = match args {
        [] => None,
        [one] => match eval(one, source, subject)? {
            Value::Str(s) => Some(s),
            _other => {
                return Err(EvalError::Arity {
                    name: name.to_owned(),
                    expected: "a subject ($i or string)",
                })
            }
        },
        _ => {
            return Err(EvalError::Arity {
                name: name.to_owned(),
                expected: "zero or one argument",
            })
        }
    };
    source
        .metric(name, resolved_subject.as_deref())
        .map(Value::Num)
        .ok_or(EvalError::UnknownMetric {
            name: name.to_owned(),
            subject: resolved_subject,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use std::collections::BTreeMap;

    struct MapSource(BTreeMap<(String, Option<String>), f64>);

    impl MetricSource for MapSource {
        fn metric(&self, name: &str, subject: Option<&str>) -> Option<f64> {
            self.0
                .get(&(name.to_owned(), subject.map(str::to_owned)))
                .copied()
        }
    }

    fn source() -> MapSource {
        let mut m = BTreeMap::new();
        m.insert(("cpu".to_owned(), Some("a".to_owned())), 0.8);
        m.insert(("quota".to_owned(), Some("a".to_owned())), 0.5);
        m.insert(("node_cpu".to_owned(), None), 0.3);
        MapSource(m)
    }

    fn condition(src: &str) -> Expr {
        parse(&format!("rule t {{ when {src} then x }}"))
            .unwrap()
            .rules
            .remove(0)
            .condition
    }

    #[test]
    fn arithmetic_and_comparison() {
        let s = source();
        let e = condition("cpu($i) > quota($i) * 1.5");
        assert_eq!(eval(&e, &s, Some("a")).unwrap(), Value::Bool(true));
        let e = condition("cpu($i) > quota($i) * 2");
        assert_eq!(eval(&e, &s, Some("a")).unwrap(), Value::Bool(false));
        let e = condition("node_cpu() + 0.7 == 1.0");
        assert_eq!(eval(&e, &s, None).unwrap(), Value::Bool(true));
        let e = condition("-node_cpu() < 0");
        assert_eq!(eval(&e, &s, None).unwrap(), Value::Bool(true));
    }

    #[test]
    fn logic_short_circuits() {
        let s = source();
        // The rhs references a missing metric; `or` must not evaluate it.
        let e = condition("true or missing() > 1");
        assert_eq!(eval(&e, &s, None).unwrap(), Value::Bool(true));
        let e = condition("false and missing() > 1");
        assert_eq!(eval(&e, &s, None).unwrap(), Value::Bool(false));
        let e = condition("not false");
        assert_eq!(eval(&e, &s, None).unwrap(), Value::Bool(true));
    }

    #[test]
    fn builtins() {
        let s = source();
        let e = condition("min(3, 5) == 3 and max(3, 5) == 5 and abs(-2) == 2");
        assert_eq!(eval(&e, &s, None).unwrap(), Value::Bool(true));
    }

    #[test]
    fn string_subjects_work_like_dollar_i() {
        let s = source();
        let e = condition("cpu(\"a\") == cpu($i)");
        assert_eq!(eval(&e, &s, Some("a")).unwrap(), Value::Bool(true));
    }

    #[test]
    fn errors() {
        let s = source();
        assert!(matches!(
            eval(&condition("missing()"), &s, None),
            Err(EvalError::UnknownMetric { .. })
        ));
        assert!(matches!(
            eval(&condition("cpu($i)"), &s, None),
            Err(EvalError::NoSubject)
        ));
        assert!(matches!(
            eval(&condition("true + 1"), &s, None),
            Err(EvalError::Type { .. })
        ));
        assert!(matches!(
            eval(&condition("min(1, 2, 3)"), &s, None),
            Err(EvalError::Arity { .. })
        ));
        assert!(matches!(
            eval(&condition("cpu(1)"), &s, Some("a")),
            Err(EvalError::Arity { .. })
        ));
        assert!(matches!(
            eval(&condition("cpu($i, $i)"), &s, Some("a")),
            Err(EvalError::Arity { .. })
        ));
    }

    #[test]
    fn equality_across_types_is_false() {
        let s = source();
        let e = condition("\"x\" == 1");
        assert_eq!(eval(&e, &s, None).unwrap(), Value::Bool(false));
        let e = condition("\"x\" != 1");
        assert_eq!(eval(&e, &s, None).unwrap(), Value::Bool(true));
    }

    #[test]
    fn error_display() {
        assert_eq!(
            EvalError::UnknownMetric {
                name: "cpu".into(),
                subject: Some("a".into())
            }
            .to_string(),
            "unknown metric cpu(a)"
        );
        assert_eq!(
            EvalError::NoSubject.to_string(),
            "$i used outside a per-subject rule"
        );
    }
}
