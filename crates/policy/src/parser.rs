//! Recursive-descent parser for policy scripts.

use crate::ast::{ActionCall, BinOp, Expr, Rule, Script};
use crate::lexer::{lex, LexError, Token};
use std::fmt;

/// A parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset in the source (best effort).
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            at: e.at,
            message: e.message,
        }
    }
}

/// Parses a policy script.
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first malformation.
pub fn parse(input: &str) -> Result<Script, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut rules = Vec::new();
    while !p.at_end() {
        rules.push(p.rule()?);
    }
    Ok(Script { rules })
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|(o, _)| *o)
            .unwrap_or(0)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            at: self.offset(),
            message: message.into(),
        }
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected {want}, found {t}"))),
            None => Err(self.err(format!("expected {want}, found end of input"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if s == kw => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected '{kw}', found {t}"))),
            None => Err(self.err(format!("expected '{kw}', found end of input"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            Some(t) => Err(self.err(format!("expected identifier, found {t}"))),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        self.keyword("rule")?;
        let name = self.ident()?;
        self.expect(&Token::LBrace)?;
        self.keyword("when")?;
        let condition = self.expr()?;
        let sustain = if matches!(self.peek(), Some(Token::Ident(s)) if s == "for") {
            self.pos += 1;
            match self.bump() {
                Some(Token::Number(n)) if n >= 1.0 && n.fract() == 0.0 => n as u32,
                _ => return Err(self.err("'for' needs a positive integer")),
            }
        } else {
            1
        };
        self.keyword("then")?;
        let mut actions = vec![self.action()?];
        while matches!(self.peek(), Some(Token::Semi)) {
            self.pos += 1;
            actions.push(self.action()?);
        }
        self.expect(&Token::RBrace)?;
        Ok(Rule {
            name,
            condition,
            sustain,
            actions,
        })
    }

    fn action(&mut self) -> Result<ActionCall, ParseError> {
        let name = self.ident()?;
        let mut args = Vec::new();
        if matches!(self.peek(), Some(Token::LParen)) {
            self.pos += 1;
            if !matches!(self.peek(), Some(Token::RParen)) {
                args.push(self.expr()?);
                while matches!(self.peek(), Some(Token::Comma)) {
                    self.pos += 1;
                    args.push(self.expr()?);
                }
            }
            self.expect(&Token::RParen)?;
        }
        Ok(ActionCall { name, args })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Some(Token::Ident(s)) if s == "or") {
            self.pos += 1;
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while matches!(self.peek(), Some(Token::Ident(s)) if s == "and") {
            self.pos += 1;
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.sum_expr()?;
        let op = match self.peek() {
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Ge) => Some(BinOp::Ge),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::EqEq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let rhs = self.sum_expr()?;
                Ok(Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                })
            }
            None => Ok(lhs),
        }
    }

    fn sum_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.prod_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.prod_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn prod_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Minus) => {
                self.pos += 1;
                Ok(Expr::Neg(Box::new(self.unary_expr()?)))
            }
            Some(Token::Ident(s)) if s == "not" => {
                self.pos += 1;
                Ok(Expr::Not(Box::new(self.unary_expr()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::Number(n)) => Ok(Expr::Number(n)),
            Some(Token::Str(s)) => Ok(Expr::Str(s)),
            Some(Token::Subject) => Ok(Expr::Subject),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(s)) if s == "true" => Ok(Expr::Bool(true)),
            Some(Token::Ident(s)) if s == "false" => Ok(Expr::Bool(false)),
            Some(Token::Ident(name)) => {
                self.expect(&Token::LParen)?;
                let mut args = Vec::new();
                if !matches!(self.peek(), Some(Token::RParen)) {
                    args.push(self.expr()?);
                    while matches!(self.peek(), Some(Token::Comma)) {
                        self.pos += 1;
                        args.push(self.expr()?);
                    }
                }
                self.expect(&Token::RParen)?;
                Ok(Expr::Call { name, args })
            }
            Some(t) => Err(self.err(format!("unexpected {t}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_rule() {
        let s = parse(
            "rule hot { when cpu_share($i) > quota_cpu($i) * 1.2 for 3 then migrate($i); alert(\"hot\") }",
        )
        .unwrap();
        assert_eq!(s.rules.len(), 1);
        let r = &s.rules[0];
        assert_eq!(r.name, "hot");
        assert_eq!(r.sustain, 3);
        assert_eq!(r.actions.len(), 2);
        assert_eq!(r.actions[1].name, "alert");
        assert_eq!(
            r.to_string(),
            "rule hot { when (cpu_share($i) > (quota_cpu($i) * 1.2)) for 3 then migrate($i); alert(\"hot\") }"
        );
    }

    #[test]
    fn precedence_is_conventional() {
        let s = parse("rule p { when a() + b() * 2 > 10 and not c() then stop($i) }").unwrap();
        assert_eq!(
            s.rules[0].condition.to_string(),
            "(((a() + (b() * 2)) > 10) and not c())"
        );
        let s = parse("rule p { when a() or b() and c() then x }").unwrap();
        assert_eq!(s.rules[0].condition.to_string(), "(a() or (b() and c()))");
    }

    #[test]
    fn parentheses_override() {
        let s = parse("rule p { when (a() or b()) and c() then x }").unwrap();
        assert_eq!(s.rules[0].condition.to_string(), "((a() or b()) and c())");
    }

    #[test]
    fn multiple_rules_and_bare_actions() {
        let s = parse(
            "# policies\nrule a { when true then hibernate }\nrule b { when false then wake }",
        )
        .unwrap();
        assert_eq!(s.rules.len(), 2);
        assert!(s.rules[0].actions[0].args.is_empty());
    }

    #[test]
    fn parse_print_parse_fixpoint() {
        let src = "rule hot { when (cpu($i) > 0.5) for 2 then migrate($i) } rule idle { when node_cpu() < 0.1 then hibernate() }";
        let once = parse(src).unwrap();
        let twice = parse(&once.to_string()).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse("rule { when true then x }").is_err()); // missing name
        assert!(parse("rule a when true then x }").is_err()); // missing brace
        assert!(parse("rule a { when then x }").is_err()); // missing cond
        assert!(parse("rule a { when true for 0 then x }").is_err()); // bad sustain
        assert!(parse("rule a { when true for 1.5 then x }").is_err());
        assert!(parse("rule a { when true }").is_err()); // missing then
        assert!(parse("rule a { when f( then x }").is_err()); // bad call
        let e = parse("bogus").unwrap_err();
        assert!(e.message.contains("rule"));
    }
}
