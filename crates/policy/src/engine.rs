//! The rule engine: compiled script + sustained-condition tracking.

use crate::ast::{ActionCall, Expr, Script};
use crate::eval::{eval, MetricSource, Value};
use crate::parser::{parse, ParseError};
use crate::{PolicyAction, PolicyDecision};
use std::collections::BTreeMap;

/// A compiled policy script plus its evaluation state.
///
/// The engine is *stateless with respect to the system* (Serpentine's
/// design): all system knowledge arrives through the blackboard each
/// evaluation; the only internal state is the consecutive-hit counters that
/// implement `for N` debouncing.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyEngine {
    script: Script,
    // (rule, subject-or-"") → consecutive true evaluations.
    streaks: BTreeMap<(String, String), u32>,
    // Evaluation errors from the last pass (missing metrics etc.).
    errors: Vec<String>,
}

impl PolicyEngine {
    /// Compiles a policy script.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed scripts.
    pub fn compile(source: &str) -> Result<Self, ParseError> {
        Ok(PolicyEngine {
            script: parse(source)?,
            streaks: BTreeMap::new(),
            errors: Vec::new(),
        })
    }

    /// Builds an engine from an already-parsed script.
    pub fn from_script(script: Script) -> Self {
        PolicyEngine {
            script,
            streaks: BTreeMap::new(),
            errors: Vec::new(),
        }
    }

    /// The compiled script.
    pub fn script(&self) -> &Script {
        &self.script
    }

    /// Evaluates every rule once: per-subject rules against each of
    /// `subjects`, global rules once. Returns the actions of rules whose
    /// conditions have held for their `for N` requirement.
    ///
    /// Rules whose conditions fail to evaluate (e.g. a metric missing for a
    /// just-created instance) are treated as *false* and recorded in
    /// [`last_errors`](Self::last_errors) — a policy must never crash the
    /// platform it governs.
    pub fn evaluate(
        &mut self,
        source: &dyn MetricSource,
        subjects: &[String],
    ) -> Vec<PolicyDecision> {
        self.errors.clear();
        let mut decisions = Vec::new();
        let rules = self.script.rules.clone();
        for rule in &rules {
            let per_subject = rule_uses_subject(rule);
            let bindings: Vec<Option<&str>> = if per_subject {
                subjects.iter().map(|s| Some(s.as_str())).collect()
            } else {
                vec![None]
            };
            for subject in bindings {
                let key = (rule.name.clone(), subject.unwrap_or("").to_owned());
                let holds = match eval(&rule.condition, source, subject) {
                    Ok(Value::Bool(b)) => b,
                    Ok(other) => {
                        self.errors.push(format!(
                            "rule {}: condition evaluated to {other}, not bool",
                            rule.name
                        ));
                        false
                    }
                    Err(e) => {
                        self.errors.push(format!("rule {}: {e}", rule.name));
                        false
                    }
                };
                let streak = self.streaks.entry(key).or_insert(0);
                if holds {
                    *streak += 1;
                } else {
                    *streak = 0;
                }
                if holds && *streak >= rule.sustain {
                    // Re-arm: a sustained rule fires once per sustained
                    // window, not on every subsequent evaluation.
                    *streak = 0;
                    for call in &rule.actions {
                        match resolve_action(call, source, subject) {
                            Ok(action) => decisions.push(PolicyDecision {
                                rule: rule.name.clone(),
                                subject: subject.map(str::to_owned),
                                action,
                            }),
                            Err(e) => self.errors.push(format!("rule {}: {e}", rule.name)),
                        }
                    }
                }
            }
        }
        decisions
    }

    /// Evaluation problems from the most recent [`evaluate`](Self::evaluate)
    /// pass.
    pub fn last_errors(&self) -> &[String] {
        &self.errors
    }

    /// Resets all sustained-condition counters (e.g. after reconfiguring).
    pub fn reset(&mut self) {
        self.streaks.clear();
    }
}

fn rule_uses_subject(rule: &crate::ast::Rule) -> bool {
    fn expr_uses(e: &Expr) -> bool {
        match e {
            Expr::Subject => true,
            Expr::Call { args, .. } => args.iter().any(expr_uses),
            Expr::Neg(x) | Expr::Not(x) => expr_uses(x),
            Expr::Binary { lhs, rhs, .. } => expr_uses(lhs) || expr_uses(rhs),
            _ => false,
        }
    }
    expr_uses(&rule.condition) || rule.actions.iter().any(|a| a.args.iter().any(expr_uses))
}

fn resolve_action(
    call: &ActionCall,
    source: &dyn MetricSource,
    subject: Option<&str>,
) -> Result<PolicyAction, String> {
    let arg_subject = |idx: usize| -> Result<String, String> {
        match call.args.get(idx) {
            None => subject
                .map(str::to_owned)
                .ok_or_else(|| format!("{} needs a subject", call.name)),
            Some(e) => match eval(e, source, subject).map_err(|e| e.to_string())? {
                Value::Str(s) => Ok(s),
                other => Err(format!(
                    "{} subject must be a string, got {other}",
                    call.name
                )),
            },
        }
    };
    match call.name.as_str() {
        "migrate" => Ok(PolicyAction::Migrate {
            subject: arg_subject(0)?,
        }),
        "stop" => Ok(PolicyAction::Stop {
            subject: arg_subject(0)?,
        }),
        "throttle" => Ok(PolicyAction::Throttle {
            subject: arg_subject(0)?,
        }),
        "restart" => Ok(PolicyAction::Restart {
            subject: arg_subject(0)?,
        }),
        "alert" => {
            let message = match call.args.first() {
                Some(e) => match eval(e, source, subject).map_err(|e| e.to_string())? {
                    Value::Str(s) => s,
                    other => other.to_string(),
                },
                None => "policy alert".to_owned(),
            };
            Ok(PolicyAction::Alert {
                subject: subject.map(str::to_owned),
                message,
            })
        }
        "hibernate" => Ok(PolicyAction::HibernateNode),
        "wake" => Ok(PolicyAction::WakeNode),
        "scale_out" => Ok(PolicyAction::ScaleOut),
        "upgrade_wave" => Ok(PolicyAction::UpgradeWave),
        "shed_class" => {
            let class = match call.args.first() {
                Some(e) => match eval(e, source, subject).map_err(|e| e.to_string())? {
                    Value::Str(s) => s,
                    other => return Err(format!("shed_class wants a class name, got {other}")),
                },
                None => return Err("shed_class needs a class argument".to_owned()),
            };
            Ok(PolicyAction::ShedClass { class })
        }
        other => {
            let mut args = Vec::new();
            for e in &call.args {
                args.push(
                    eval(e, source, subject)
                        .map_err(|e| e.to_string())?
                        .to_string(),
                );
            }
            Ok(PolicyAction::Custom {
                name: other.to_owned(),
                subject: subject.map(str::to_owned),
                args,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Blackboard;

    fn subjects(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn per_subject_rule_fires_for_each_matching_subject() {
        let mut e =
            PolicyEngine::compile("rule hot { when cpu($i) > 0.5 then migrate($i) }").unwrap();
        let mut bb = Blackboard::new();
        bb.set_subject_metric("a", "cpu", 0.9);
        bb.set_subject_metric("b", "cpu", 0.1);
        bb.set_subject_metric("c", "cpu", 0.7);
        let d = e.evaluate(&bb, &subjects(&["a", "b", "c"]));
        assert_eq!(d.len(), 2);
        assert_eq!(
            d[0].action,
            PolicyAction::Migrate {
                subject: "a".into()
            }
        );
        assert_eq!(
            d[1].action,
            PolicyAction::Migrate {
                subject: "c".into()
            }
        );
        assert!(e.last_errors().is_empty());
    }

    #[test]
    fn sustain_debounces_and_rearms() {
        let mut e =
            PolicyEngine::compile("rule hot { when cpu($i) > 0.5 for 3 then stop($i) }").unwrap();
        let mut bb = Blackboard::new();
        bb.set_subject_metric("a", "cpu", 0.9);
        let s = subjects(&["a"]);
        assert!(e.evaluate(&bb, &s).is_empty(), "1st hit");
        assert!(e.evaluate(&bb, &s).is_empty(), "2nd hit");
        assert_eq!(e.evaluate(&bb, &s).len(), 1, "3rd hit fires");
        // Counter re-armed: two more quiet evaluations before next firing.
        assert!(e.evaluate(&bb, &s).is_empty());
        assert!(e.evaluate(&bb, &s).is_empty());
        assert_eq!(e.evaluate(&bb, &s).len(), 1);
        // A dip resets the streak.
        bb.set_subject_metric("a", "cpu", 0.1);
        assert!(e.evaluate(&bb, &s).is_empty());
        bb.set_subject_metric("a", "cpu", 0.9);
        assert!(e.evaluate(&bb, &s).is_empty());
        assert!(e.evaluate(&bb, &s).is_empty());
        assert_eq!(e.evaluate(&bb, &s).len(), 1);
    }

    #[test]
    fn global_rules_evaluate_once() {
        let mut e =
            PolicyEngine::compile("rule idle { when node_cpu() < 0.2 then hibernate() }").unwrap();
        let mut bb = Blackboard::new();
        bb.set_global_metric("node_cpu", 0.1);
        let d = e.evaluate(&bb, &subjects(&["a", "b", "c"]));
        assert_eq!(d.len(), 1, "not once per subject");
        assert_eq!(d[0].action, PolicyAction::HibernateNode);
        assert_eq!(d[0].subject, None);
    }

    #[test]
    fn missing_metrics_are_false_not_fatal() {
        let mut e = PolicyEngine::compile("rule hot { when cpu($i) > 0.5 then stop($i) }").unwrap();
        let bb = Blackboard::new();
        let d = e.evaluate(&bb, &subjects(&["ghost"]));
        assert!(d.is_empty());
        assert_eq!(e.last_errors().len(), 1);
        assert!(e.last_errors()[0].contains("unknown metric"));
    }

    #[test]
    fn multiple_actions_fire_in_order() {
        let mut e = PolicyEngine::compile(
            r#"rule bad { when memory($i) > 100 then stop($i); alert("oom") }"#,
        )
        .unwrap();
        let mut bb = Blackboard::new();
        bb.set_subject_metric("a", "memory", 200.0);
        let d = e.evaluate(&bb, &subjects(&["a"]));
        assert_eq!(d.len(), 2);
        assert!(matches!(d[0].action, PolicyAction::Stop { .. }));
        assert!(matches!(
            &d[1].action,
            PolicyAction::Alert { message, .. } if message == "oom"
        ));
    }

    #[test]
    fn custom_actions_are_forwarded() {
        let mut e = PolicyEngine::compile("rule x { when true then boost($i, 2) }").unwrap();
        let bb = Blackboard::new();
        let d = e.evaluate(&bb, &subjects(&["a"]));
        assert_eq!(
            d[0].action,
            PolicyAction::Custom {
                name: "boost".into(),
                subject: Some("a".into()),
                args: vec!["a".into(), "2".into()],
            }
        );
    }

    #[test]
    fn overload_actions_resolve_first_class() {
        let mut e = PolicyEngine::compile(
            r#"rule knee {
                when p95_latency_us() > 250000 for 2
                then scale_out(); shed_class("background")
            }"#,
        )
        .unwrap();
        let mut bb = Blackboard::new();
        bb.set_global_metric("p95_latency_us", 400_000.0);
        assert!(e.evaluate(&bb, &[]).is_empty(), "for 2 debounces");
        let d = e.evaluate(&bb, &[]);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].action, PolicyAction::ScaleOut);
        assert_eq!(
            d[1].action,
            PolicyAction::ShedClass {
                class: "background".into()
            }
        );
        assert!(e.last_errors().is_empty(), "{:?}", e.last_errors());
    }

    #[test]
    fn upgrade_wave_resolves_first_class() {
        let mut e = PolicyEngine::compile("rule roll { when true then upgrade_wave() }").unwrap();
        let bb = Blackboard::new();
        let d = e.evaluate(&bb, &[]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].action, PolicyAction::UpgradeWave);
        assert!(e.last_errors().is_empty(), "{:?}", e.last_errors());
    }

    #[test]
    fn shed_class_without_argument_is_an_error() {
        let mut e = PolicyEngine::compile("rule x { when true then shed_class() }").unwrap();
        let bb = Blackboard::new();
        assert!(e.evaluate(&bb, &[]).is_empty());
        assert!(e.last_errors()[0].contains("needs a class argument"));
    }

    #[test]
    fn non_bool_condition_is_an_error_not_a_panic() {
        let mut e = PolicyEngine::compile("rule x { when 1 + 1 then stop(\"a\") }").unwrap();
        let bb = Blackboard::new();
        assert!(e.evaluate(&bb, &[]).is_empty());
        assert!(e.last_errors()[0].contains("not bool"));
    }

    #[test]
    fn reset_clears_streaks() {
        let mut e =
            PolicyEngine::compile("rule hot { when cpu($i) > 0.5 for 2 then stop($i) }").unwrap();
        let mut bb = Blackboard::new();
        bb.set_subject_metric("a", "cpu", 0.9);
        let s = subjects(&["a"]);
        assert!(e.evaluate(&bb, &s).is_empty());
        e.reset();
        assert!(e.evaluate(&bb, &s).is_empty(), "streak restarted");
        assert_eq!(e.evaluate(&bb, &s).len(), 1);
    }
}
