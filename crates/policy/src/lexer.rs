//! Tokenizer for the policy-script language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `rule`, `when`, `then`, `for`, `and`, `or`, `not`, `true`, `false`
    /// or an identifier.
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// A double-quoted string literal.
    Str(String),
    /// `$i` — the subject variable.
    Subject,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Subject => write!(f, "$i"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Gt => write!(f, ">"),
            Token::Lt => write!(f, "<"),
            Token::Ge => write!(f, ">="),
            Token::Le => write!(f, "<="),
            Token::EqEq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
        }
    }
}

/// A tokenization failure with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.at, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a script. `#` starts a comment running to end of line.
pub fn lex(input: &str) -> Result<Vec<(usize, Token)>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => pos += 1,
            b'#' => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'{' => {
                tokens.push((pos, Token::LBrace));
                pos += 1;
            }
            b'}' => {
                tokens.push((pos, Token::RBrace));
                pos += 1;
            }
            b'(' => {
                tokens.push((pos, Token::LParen));
                pos += 1;
            }
            b')' => {
                tokens.push((pos, Token::RParen));
                pos += 1;
            }
            b',' => {
                tokens.push((pos, Token::Comma));
                pos += 1;
            }
            b';' => {
                tokens.push((pos, Token::Semi));
                pos += 1;
            }
            b'+' => {
                tokens.push((pos, Token::Plus));
                pos += 1;
            }
            b'-' => {
                tokens.push((pos, Token::Minus));
                pos += 1;
            }
            b'*' => {
                tokens.push((pos, Token::Star));
                pos += 1;
            }
            b'/' => {
                tokens.push((pos, Token::Slash));
                pos += 1;
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push((pos, Token::Ge));
                    pos += 2;
                } else {
                    tokens.push((pos, Token::Gt));
                    pos += 1;
                }
            }
            b'<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push((pos, Token::Le));
                    pos += 2;
                } else {
                    tokens.push((pos, Token::Lt));
                    pos += 1;
                }
            }
            b'=' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push((pos, Token::EqEq));
                    pos += 2;
                } else {
                    return Err(LexError {
                        at: pos,
                        message: "single '=' (use '==')".into(),
                    });
                }
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push((pos, Token::Ne));
                    pos += 2;
                } else {
                    return Err(LexError {
                        at: pos,
                        message: "single '!' (use 'not' or '!=')".into(),
                    });
                }
            }
            b'$' => {
                if bytes.get(pos + 1) == Some(&b'i') {
                    tokens.push((pos, Token::Subject));
                    pos += 2;
                } else {
                    return Err(LexError {
                        at: pos,
                        message: "only $i is a valid variable".into(),
                    });
                }
            }
            b'"' => {
                let start = pos + 1;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'"' {
                    end += 1;
                }
                if end == bytes.len() {
                    return Err(LexError {
                        at: pos,
                        message: "unterminated string".into(),
                    });
                }
                let s = std::str::from_utf8(&bytes[start..end]).map_err(|_| LexError {
                    at: start,
                    message: "string not UTF-8".into(),
                })?;
                tokens.push((pos, Token::Str(s.to_owned())));
                pos = end + 1;
            }
            b'0'..=b'9' | b'.' => {
                let start = pos;
                while pos < bytes.len() && (bytes[pos].is_ascii_digit() || bytes[pos] == b'.') {
                    pos += 1;
                }
                let text = std::str::from_utf8(&bytes[start..pos]).expect("ascii");
                let n: f64 = text.parse().map_err(|_| LexError {
                    at: start,
                    message: format!("bad number {text:?}"),
                })?;
                tokens.push((start, Token::Number(n)));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                let text = std::str::from_utf8(&bytes[start..pos]).expect("ascii");
                tokens.push((start, Token::Ident(text.to_owned())));
            }
            other => {
                return Err(LexError {
                    at: pos,
                    message: format!("unexpected character {:?}", other as char),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        lex(input).unwrap().into_iter().map(|(_, t)| t).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("rule x { when a($i) >= 1.5 then stop($i) }"),
            vec![
                Token::Ident("rule".into()),
                Token::Ident("x".into()),
                Token::LBrace,
                Token::Ident("when".into()),
                Token::Ident("a".into()),
                Token::LParen,
                Token::Subject,
                Token::RParen,
                Token::Ge,
                Token::Number(1.5),
                Token::Ident("then".into()),
                Token::Ident("stop".into()),
                Token::LParen,
                Token::Subject,
                Token::RParen,
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn operators_and_comments() {
        assert_eq!(
            toks("a > b # comment\n c < d == e != f <= g"),
            vec![
                Token::Ident("a".into()),
                Token::Gt,
                Token::Ident("b".into()),
                Token::Ident("c".into()),
                Token::Lt,
                Token::Ident("d".into()),
                Token::EqEq,
                Token::Ident("e".into()),
                Token::Ne,
                Token::Ident("f".into()),
                Token::Le,
                Token::Ident("g".into()),
            ]
        );
    }

    #[test]
    fn strings_and_numbers() {
        assert_eq!(
            toks(r#"alert("too hot", 2.5)"#),
            vec![
                Token::Ident("alert".into()),
                Token::LParen,
                Token::Str("too hot".into()),
                Token::Comma,
                Token::Number(2.5),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn errors_are_located() {
        assert_eq!(lex("a = b").unwrap_err().at, 2);
        assert!(lex("\"unterminated").is_err());
        assert!(lex("$x").is_err());
        assert!(lex("café").is_err()); // non-ascii identifier
        assert!(lex("1.2.3").is_err());
        assert!(lex("!x").is_err());
    }

    #[test]
    fn token_display() {
        assert_eq!(Token::Ge.to_string(), ">=");
        assert_eq!(Token::Subject.to_string(), "$i");
        assert_eq!(Token::Str("x".into()).to_string(), "\"x\"");
    }
}
