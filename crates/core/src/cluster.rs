//! The cluster: the deterministic simulation driver every experiment runs
//! on.

use crate::node::{DosgiNode, NodeConfig, NodeState, Wire};
use crate::registry::InstanceStatus;
use crate::{AdoptReason, CoreError, NodeEvent, SlaTracker};
use dosgi_net::{LinkConfig, NodeId, Partition, SimDuration, SimNet, SimTime};
use dosgi_san::{BackendKind, SharedStore, Value};
use dosgi_telemetry::{
    FlightRecorder, HealthState, ScrapeConfig, SeriesScraper, SloEngine, SloSpec, Snapshot, SpanId,
    Telemetry, TraceLog,
};
use dosgi_vosgi::InstanceDescriptor;
use std::collections::BTreeMap;

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Per-node configuration.
    pub node: NodeConfig,
    /// Default link quality.
    pub link: LinkConfig,
    /// Driver step size (how often nodes tick).
    pub tick: SimDuration,
    /// Which SAN storage backend the shared store runs on. Backends are
    /// held to byte-identical observable behaviour by the conformance
    /// suite in `dosgi-san`, so this knob must never change experiment
    /// outcomes — only storage-internal mechanics.
    pub backend: BackendKind,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            node: NodeConfig::default(),
            link: LinkConfig::lan(),
            tick: SimDuration::from_millis(5),
            backend: BackendKind::Map,
        }
    }
}

/// The optional continuous-observability pipeline: a [`SeriesScraper`]
/// turning the registry into bounded time series plus an [`SloEngine`]
/// evaluating burn-rate alerts, both driven from [`DosgiCluster::step`]
/// on the scrape cadence. Strictly passive: pure registry reads on the
/// sim clock — it never touches the network, the SAN, or any RNG stream,
/// so enabling it cannot change a run's observable behaviour (the chaos
/// sweep proves fingerprint equality with it on and off).
struct Observability {
    scraper: SeriesScraper,
    slo: SloEngine,
}

struct Slot {
    node: DosgiNode,
    alive: bool,
    // The node's flight recorder. Owned by the slot, not the node, so the
    // causal record survives crashes and restarts: a restarted node keeps
    // appending to the same ring, and the cluster-wide merge sees the
    // node's whole history.
    recorder: FlightRecorder,
}

/// A simulated cluster of [`DosgiNode`]s sharing a SAN and a network.
///
/// The driver advances simulated time in fixed ticks; at each tick the
/// network delivers due messages, every live node runs its event loop, and
/// the availability of every registered instance is probed into the
/// [`SlaTracker`] — the downtime instrument behind experiments E5–E10.
pub struct DosgiCluster {
    net: SimNet<Wire>,
    store: SharedStore,
    slots: Vec<Slot>,
    config: ClusterConfig,
    sla: SlaTracker,
    events: Vec<(NodeId, NodeEvent)>,
    telemetry: Telemetry,
    // Open `core.migration.handoff/<name>` spans: entered when the old home
    // releases the instance, exited when the new home reports adoption.
    handoff_spans: BTreeMap<String, SpanId>,
    observability: Option<Observability>,
}

impl std::fmt::Debug for DosgiCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DosgiCluster")
            .field("nodes", &self.slots.len())
            .field("now", &self.net.now())
            .finish_non_exhaustive()
    }
}

impl DosgiCluster {
    /// Builds a cluster of `n` nodes with the given config and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, config: ClusterConfig, seed: u64) -> Self {
        Self::new_with_telemetry(n, config, seed, Telemetry::new())
    }

    /// Like [`new`](Self::new) but with an explicit telemetry handle —
    /// pass [`Telemetry::disabled`] to turn instrumentation off, or share
    /// one enabled handle across several clusters to aggregate their
    /// metrics into a single registry.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new_with_telemetry(
        n: usize,
        config: ClusterConfig,
        seed: u64,
        telemetry: Telemetry,
    ) -> Self {
        assert!(n > 0, "a cluster needs at least one node");
        let mut net = SimNet::new(config.link, seed);
        let store = SharedStore::with_kind(config.backend);
        store.set_telemetry(telemetry.clone());
        let ids: Vec<NodeId> = (0..n).map(|_| net.register_node()).collect();
        let slots = ids
            .iter()
            .map(|&id| {
                let mut node = DosgiNode::new(
                    id,
                    ids.clone(),
                    config.node.clone(),
                    store.clone(),
                    net.now(),
                );
                node.set_telemetry(telemetry.clone());
                // Tracing rides the same switch as the rest of telemetry:
                // a disabled cluster records nothing (and provably changes
                // nothing — the chaos harness compares fingerprints with
                // instrumentation on and off).
                let recorder = if telemetry.is_enabled() {
                    FlightRecorder::new(u64::from(id.0))
                } else {
                    FlightRecorder::disabled()
                };
                node.set_recorder(recorder.clone());
                Slot {
                    node,
                    alive: true,
                    recorder,
                }
            })
            .collect();
        DosgiCluster {
            net,
            store,
            slots,
            config,
            sla: SlaTracker::new(),
            events: Vec::new(),
            telemetry,
            handoff_spans: BTreeMap::new(),
            observability: None,
        }
    }

    /// Turns on continuous observability: every `config.cadence_us` of
    /// sim time, [`step`](Self::step) scrapes the telemetry registry
    /// into bounded time series, refreshes the per-node health gauges
    /// (`core.health.n<i>`), and evaluates `slos` as multi-window
    /// burn-rate alerts recorded into the snapshot's alert timeline.
    /// A no-op wiring on a disabled telemetry handle (nothing to read).
    pub fn enable_observability(&mut self, config: ScrapeConfig, slos: Vec<SloSpec>) {
        let mut engine = SloEngine::new(config.cadence_us);
        for spec in slos {
            engine.add(spec);
        }
        self.observability = Some(Observability {
            scraper: SeriesScraper::new(config),
            slo: engine,
        });
    }

    /// The default SLO set for instrumented sim runs: SAN operations
    /// must stay under 1% faulted, alerted on burn rate.
    pub fn default_slos() -> Vec<SloSpec> {
        vec![SloSpec::new(
            "san-faults",
            vec!["san.faults".to_owned()],
            vec!["san.ops".to_owned()],
            10_000,
        )]
    }

    /// The series scraper, when observability is enabled.
    pub fn scraper(&self) -> Option<&SeriesScraper> {
        self.observability.as_ref().map(|o| &o.scraper)
    }

    /// The SLO engine, when observability is enabled.
    pub fn slo_engine(&self) -> Option<&SloEngine> {
        self.observability.as_ref().map(|o| &o.slo)
    }

    /// The cluster-wide telemetry handle (cheap to clone; all clones share
    /// one registry).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// The shared SAN.
    pub fn store(&self) -> &SharedStore {
        &self.store
    }

    /// Arms a storage fault plan on the shared SAN (seeded transient I/O
    /// errors, brown-out windows, torn writes). The plan's brown-out
    /// windows are interpreted against this cluster's simulated clock —
    /// [`step`](Self::step) keeps the injector's notion of *now* in sync.
    pub fn set_fault_plan(&mut self, plan: dosgi_san::FaultPlan) {
        self.store.set_fault_plan(plan);
        self.store.set_now(self.net.now());
    }

    /// Disarms storage fault injection (the SAN becomes reliable again).
    pub fn clear_faults(&mut self) {
        self.store.clear_faults();
    }

    /// The simulated network (partition injection, stats).
    pub fn net_mut(&mut self) -> &mut SimNet<Wire> {
        &mut self.net
    }

    /// Number of nodes (alive or not).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the cluster has no nodes (never: see [`new`](Self::new)).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// A node by index, if it exists and is alive.
    pub fn node(&self, idx: usize) -> Option<&DosgiNode> {
        self.slots.get(idx).filter(|s| s.alive).map(|s| &s.node)
    }

    /// Mutable node access.
    pub fn node_mut(&mut self, idx: usize) -> Option<&mut DosgiNode> {
        self.slots
            .get_mut(idx)
            .filter(|s| s.alive)
            .map(|s| &mut s.node)
    }

    /// Indexes of nodes that are alive and `Running`.
    pub fn running_nodes(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive && s.node.state() == NodeState::Running)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of hibernated nodes (the E10 power metric).
    pub fn hibernated_nodes(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.alive && s.node.state() == NodeState::Hibernated)
            .count()
    }

    // ------------------------------------------------------------------
    // Operations
    // ------------------------------------------------------------------

    /// Deploys an instance on node `idx` and waits (in simulated time) for
    /// the deployment to **commit** — i.e. for the ordered `Deployed`
    /// record to reach the replicated registry **of every live node**.
    /// (The sequencer alone is not enough: if the deploying node is the
    /// sequencer, its self-delivery is instant while the broadcast could
    /// still die with it.) Only then can a crash of any single node not
    /// lose the instance.
    ///
    /// # Errors
    ///
    /// [`CoreError::NodeUnavailable`], [`CoreError::DuplicateInstance`],
    /// instance-manager errors, or [`CoreError::BadMigration`] if the
    /// commit does not land within five simulated seconds (no sequencer
    /// reachable).
    pub fn deploy(&mut self, descriptor: InstanceDescriptor, idx: usize) -> Result<(), CoreError> {
        if self.find_record(&descriptor.name).is_some() {
            return Err(CoreError::DuplicateInstance(descriptor.name));
        }
        let name = descriptor.name.clone();
        let now = self.net.now();
        let slot = self
            .slots
            .get_mut(idx)
            .filter(|s| s.alive)
            .ok_or(CoreError::NodeUnavailable(NodeId(idx as u32)))?;
        slot.node.deploy(descriptor, &mut self.net, now)?;
        let deadline = self.net.now() + SimDuration::from_secs(5);
        while self.net.now() < deadline {
            let everywhere = self
                .slots
                .iter()
                .filter(|s| s.alive && s.node.state() == NodeState::Running)
                .all(|s| s.node.registry().record(&name).is_some());
            if everywhere {
                return Ok(());
            }
            self.step();
        }
        Err(CoreError::BadMigration(format!(
            "deployment of {name:?} did not commit"
        )))
    }

    /// Permanently removes an instance from the cluster (state wiped).
    ///
    /// # Errors
    ///
    /// [`CoreError::NotPlaced`] when the instance has no live home.
    pub fn undeploy(&mut self, name: &str) -> Result<(), CoreError> {
        let home = self
            .home_of(name)
            .ok_or_else(|| CoreError::NotPlaced(name.to_owned()))?;
        let slot = self
            .slots
            .get_mut(home)
            .ok_or(CoreError::NodeUnavailable(NodeId(home as u32)))?;
        slot.node.undeploy(name, &mut self.net)
    }

    /// Requests a migration of `name` to node `to`.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownInstance`] / [`CoreError::NotPlaced`] /
    /// [`CoreError::BadMigration`].
    pub fn migrate(&mut self, name: &str, to: usize) -> Result<(), CoreError> {
        let home = self
            .home_of(name)
            .ok_or_else(|| CoreError::NotPlaced(name.to_owned()))?;
        if self.node(to).is_none() {
            return Err(CoreError::BadMigration(format!(
                "destination n{to} is down"
            )));
        }
        let dest = NodeId(to as u32);
        let slot = self
            .slots
            .get_mut(home)
            .ok_or(CoreError::NodeUnavailable(NodeId(home as u32)))?;
        slot.node.migrate_away(name, dest, &mut self.net)
    }

    /// Requests an in-place hot upgrade of the bundle named by
    /// `manifest.symbolic_name` inside instance `name`, on its current
    /// home node. Completion surfaces as
    /// [`NodeEvent::BundleUpgraded`](crate::NodeEvent::BundleUpgraded);
    /// drive the cluster to observe it.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotPlaced`] when the instance has no live home.
    pub fn upgrade_bundle(
        &mut self,
        name: &str,
        manifest: dosgi_osgi::BundleManifest,
    ) -> Result<(), CoreError> {
        let home = self
            .home_of(name)
            .ok_or_else(|| CoreError::NotPlaced(name.to_owned()))?;
        let now = self.net.now();
        let slot = self
            .slots
            .get_mut(home)
            .ok_or(CoreError::NodeUnavailable(NodeId(home as u32)))?;
        slot.node.request_upgrade(name, manifest, now)
    }

    /// Crashes node `idx` (crash-stop: volatile state lost, SAN intact).
    pub fn crash_node(&mut self, idx: usize) {
        if let Some(slot) = self.slots.get_mut(idx) {
            slot.alive = false;
            self.net.crash(NodeId(idx as u32));
        }
    }

    /// Restarts a crashed node with fresh volatile state; it rejoins the
    /// group and receives a registry sync from the coordinator.
    pub fn restart_node(&mut self, idx: usize) {
        let ids: Vec<NodeId> = (0..self.slots.len()).map(|i| NodeId(i as u32)).collect();
        let id = NodeId(idx as u32);
        self.net.restart(id);
        if let Some(slot) = self.slots.get_mut(idx) {
            let mut node = DosgiNode::new(
                id,
                ids,
                self.config.node.clone(),
                self.store.clone(),
                self.net.now(),
            );
            node.set_telemetry(self.telemetry.clone());
            node.set_recorder(slot.recorder.clone());
            slot.node = node;
            slot.alive = true;
        }
    }

    /// Wakes a hibernated (or orderly-stopped) node: it rejoins the group
    /// with fresh volatile state and becomes a placement candidate again —
    /// the scale-back-up half of §4's consolidation story ("relocating
    /// them in another node when they need more performance").
    ///
    /// # Errors
    ///
    /// [`CoreError::NodeUnavailable`] if the node is crashed or running.
    pub fn wake_node(&mut self, idx: usize) -> Result<(), CoreError> {
        let state = self
            .slots
            .get(idx)
            .filter(|s| s.alive)
            .map(|s| s.node.state())
            .ok_or(CoreError::NodeUnavailable(NodeId(idx as u32)))?;
        if !matches!(state, NodeState::Hibernated | NodeState::Stopped) {
            return Err(CoreError::NodeUnavailable(NodeId(idx as u32)));
        }
        // Waking is a restart with empty volatile state; the SAN still has
        // everything durable.
        self.restart_node(idx);
        Ok(())
    }

    /// Starts a graceful shutdown of node `idx` (drain, then leave).
    pub fn graceful_shutdown(&mut self, idx: usize) {
        let now = self.net.now();
        if let Some(slot) = self.slots.get_mut(idx) {
            if slot.alive {
                slot.node.begin_shutdown(&mut self.net, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Client-side views
    // ------------------------------------------------------------------

    fn reference_registry(&self) -> Option<&crate::ClusterRegistry> {
        self.slots
            .iter()
            .find(|s| s.alive && s.node.state() == NodeState::Running)
            .map(|s| s.node.registry())
    }

    fn find_record(&self, name: &str) -> Option<&crate::InstanceRecord> {
        self.reference_registry().and_then(|r| r.record(name))
    }

    /// The node index currently responsible for `name` (per the replicated
    /// registry), if placed on a live node.
    pub fn home_of(&self, name: &str) -> Option<usize> {
        let rec = self.find_record(name)?;
        if rec.status != InstanceStatus::Placed {
            return None;
        }
        let idx = rec.home.index();
        self.node(idx).map(|_| idx)
    }

    /// True if `name` is currently serving somewhere — the availability
    /// probe (a client that knows the service's location, as the paper's
    /// localization schemes provide).
    pub fn probe(&self, name: &str) -> bool {
        self.home_of(name)
            .and_then(|idx| self.node(idx))
            .map(|n| n.probe_local(name))
            .unwrap_or(false)
    }

    /// Routes a client request to the instance's current home.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotPlaced`] while the instance is down (counted as
    /// downtime by callers), [`CoreError::Throttled`] when the SLA layer
    /// throttled it, plus service errors.
    pub fn call(
        &mut self,
        name: &str,
        interface: &str,
        method: &str,
        arg: &Value,
    ) -> Result<Value, CoreError> {
        let idx = self
            .home_of(name)
            .ok_or_else(|| CoreError::NotPlaced(name.to_owned()))?;
        let node = self
            .node_mut(idx)
            .ok_or(CoreError::NodeUnavailable(NodeId(idx as u32)))?;
        if node.is_throttled(name) {
            return Err(CoreError::Throttled(name.to_owned()));
        }
        node.call_local(name, interface, method, arg)
    }

    /// The SLA/availability tracker fed by per-tick probes.
    pub fn sla(&self) -> &SlaTracker {
        &self.sla
    }

    /// Drains all node events collected so far, as `(node, event)` pairs in
    /// observation order.
    pub fn take_events(&mut self) -> Vec<(NodeId, NodeEvent)> {
        std::mem::take(&mut self.events)
    }

    /// Injects a network partition.
    pub fn partition(&mut self, p: Partition) {
        self.net.partition(p);
    }

    /// Heals any partition.
    pub fn heal(&mut self) {
        self.net.heal();
    }

    // ------------------------------------------------------------------
    // The driver loop
    // ------------------------------------------------------------------

    /// Advances the cluster by `duration`, ticking every live node each
    /// step and probing every registered instance's availability.
    pub fn run_for(&mut self, duration: SimDuration) {
        let end = self.net.now() + duration;
        while self.net.now() < end {
            self.step();
        }
    }

    /// One driver step: advance the network by one tick, tick the nodes,
    /// collect events, probe availability — public so experiments can
    /// interleave fine-grained actions with time.
    pub fn step(&mut self) {
        self.net.advance(self.config.tick);
        let now = self.net.now();
        // Brown-out windows in an armed fault plan are defined in simulated
        // time; advance the injector's clock alongside the network's.
        self.store.set_now(now);
        for slot in &mut self.slots {
            if slot.alive {
                slot.node.tick(&mut self.net, now);
            }
        }
        for (i, slot) in self.slots.iter_mut().enumerate() {
            for e in slot.node.take_events() {
                match &e {
                    // A release opens the cross-node handoff span; the
                    // matching Adopted (on the destination) closes it.
                    NodeEvent::Released { at, name, .. } => {
                        let span = self
                            .telemetry
                            .span_enter(&format!("core.migration.handoff/{name}"), at.as_micros());
                        self.handoff_spans.insert(name.clone(), span);
                    }
                    NodeEvent::Adopted { at, name, reason } => match reason {
                        AdoptReason::Migration => {
                            if let Some(span) = self.handoff_spans.remove(name) {
                                self.telemetry.span_exit(span, at.as_micros());
                            }
                            self.telemetry.incr("core.migration.completed");
                        }
                        AdoptReason::Failover => {
                            self.telemetry.incr("core.failover.adoptions");
                        }
                    },
                    _ => {}
                }
                self.events.push((NodeId(i as u32), e));
            }
        }
        // Availability probes.
        let names: Vec<String> = self
            .reference_registry()
            .map(|r| r.records().map(|rec| rec.name.clone()).collect())
            .unwrap_or_default();
        for name in names {
            let up = self.probe(&name);
            self.sla.probe(&name, now, up);
        }
        // Continuous observability, on the scrape cadence: health gauges
        // first (so the scrape samples the fresh values), then the series
        // scrape, then SLO evaluation. Pure reads of the telemetry
        // registry and the replicated registry — nothing here touches the
        // network, the SAN, or any RNG stream (passivity).
        let now_us = now.as_micros();
        if self
            .observability
            .as_ref()
            .is_some_and(|o| o.scraper.due(now_us))
        {
            self.record_health_gauges();
            let telemetry = self.telemetry.clone();
            if let Some(obs) = self.observability.as_mut() {
                obs.scraper.scrape(&telemetry, now_us);
                obs.slo.observe(&telemetry, now_us);
            }
        }
    }

    // ------------------------------------------------------------------
    // The health scoreboard
    // ------------------------------------------------------------------

    /// Quarantined instances homed on node `idx`, per the replicated
    /// registry (0 when no running node can be consulted).
    fn quarantined_on(&self, idx: usize) -> usize {
        self.reference_registry()
            .map(|r| {
                r.records()
                    .filter(|rec| {
                        rec.status == InstanceStatus::Quarantined && rec.home.index() == idx
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    /// Node `idx`'s current health: a dead node is `Critical` outright;
    /// otherwise alert state (cluster-scoped SLO alerts degrade every
    /// serving node), quarantined instances homed here, and queue
    /// pressure feed [`dosgi_telemetry::derive_health`]. Hibernated and
    /// stopped nodes serve nothing by design, so their indicators are
    /// naturally quiet and they report `Ok`.
    pub fn health_of(&self, idx: usize) -> HealthState {
        let Some(slot) = self.slots.get(idx) else {
            return HealthState::Critical;
        };
        if !slot.alive {
            return HealthState::Critical;
        }
        let serving = slot.node.state() == NodeState::Running;
        let alerts = if serving {
            self.observability
                .as_ref()
                .map(|o| o.slo.firing_count())
                .unwrap_or(0)
        } else {
            0
        };
        dosgi_telemetry::derive_health(alerts, self.quarantined_on(idx), 0)
    }

    /// The per-node health scoreboard, indexed like the nodes.
    pub fn health_scoreboard(&self) -> Vec<HealthState> {
        (0..self.slots.len()).map(|i| self.health_of(i)).collect()
    }

    /// Publishes the scoreboard as `core.health.n<i>` gauges
    /// (0 = ok, 1 = degraded, 2 = critical).
    pub fn record_health_gauges(&self) {
        for (i, h) in self.health_scoreboard().iter().enumerate() {
            self.telemetry
                .gauge_set(&format!("core.health.n{i}"), h.as_gauge());
        }
    }

    /// Publishes the cluster's derived health figures as telemetry gauges:
    /// aggregate SLA downtime/outages across all tracked instances and the
    /// node-state census. Call before [`telemetry_snapshot`]
    /// (Self::telemetry_snapshot) so the snapshot reflects current state.
    pub fn record_telemetry_gauges(&self) {
        let mut down_us: u64 = 0;
        let mut outages: u64 = 0;
        let mut longest_us: u64 = 0;
        for name in self.sla.instances() {
            let rec = self.sla.record(name);
            down_us += rec.down.as_micros();
            outages += u64::from(rec.outages);
            longest_us = longest_us.max(rec.longest_outage.as_micros());
        }
        self.telemetry
            .gauge_set("core.sla.down_us_total", down_us as i64);
        self.telemetry.gauge_set("core.sla.outages", outages as i64);
        self.telemetry
            .gauge_set("core.sla.longest_outage_us", longest_us as i64);
        self.telemetry.gauge_set(
            "core.cluster.nodes_running",
            self.running_nodes().len() as i64,
        );
        self.telemetry.gauge_set(
            "core.cluster.nodes_hibernated",
            self.hibernated_nodes() as i64,
        );
        self.record_health_gauges();
    }

    /// Refreshes the derived gauges and takes a snapshot of the cluster's
    /// telemetry registry, labelled for the snapshot file name.
    pub fn telemetry_snapshot(&self, label: &str, seed: u64) -> Snapshot {
        self.record_telemetry_gauges();
        self.telemetry.snapshot(label, seed)
    }

    /// Merges every node's flight recorder — including those of crashed
    /// nodes, whose rings outlive them — into one causally-ordered
    /// cluster trace. Empty when the cluster runs without telemetry.
    pub fn trace_log(&self) -> TraceLog {
        TraceLog::merge(self.slots.iter().map(|s| &s.recorder))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use dosgi_san::Value;

    fn cluster() -> DosgiCluster {
        let mut c = DosgiCluster::new(3, ClusterConfig::default(), 77);
        c.run_for(SimDuration::from_millis(500));
        c
    }

    #[test]
    fn deploy_undeploy_round_trip() {
        let mut c = cluster();
        c.deploy(workloads::web_instance("a", "web"), 0).unwrap();
        c.run_for(SimDuration::from_millis(300));
        assert!(c.probe("web"));
        assert_eq!(c.home_of("web"), Some(0));
        c.undeploy("web").unwrap();
        c.run_for(SimDuration::from_millis(500));
        assert!(!c.probe("web"));
        assert_eq!(c.home_of("web"), None);
        // The SAN state is wiped too: nothing under the instance namespace.
        assert_eq!(c.store().namespace_bytes_prefixed("instance/web"), 0);
        // And the name is reusable.
        c.deploy(workloads::web_instance("a", "web"), 1).unwrap();
        c.run_for(SimDuration::from_millis(300));
        assert_eq!(c.home_of("web"), Some(1));
    }

    #[test]
    fn undeploy_of_unknown_instance_errors() {
        let mut c = cluster();
        assert!(matches!(c.undeploy("ghost"), Err(CoreError::NotPlaced(_))));
    }

    #[test]
    fn node_accessors_respect_liveness() {
        let mut c = cluster();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(c.node(0).is_some());
        assert!(c.node(9).is_none());
        assert_eq!(c.running_nodes(), vec![0, 1, 2]);
        assert_eq!(c.hibernated_nodes(), 0);
        c.crash_node(1);
        assert!(c.node(1).is_none());
        assert_eq!(c.running_nodes(), vec![0, 2]);
    }

    #[test]
    fn call_to_unplaced_instance_is_not_placed_error() {
        let mut c = cluster();
        let err = c
            .call("nope", workloads::WEB_SERVICE, "handle", &Value::Null)
            .unwrap_err();
        assert!(matches!(err, CoreError::NotPlaced(_)));
    }

    #[test]
    fn deploy_rejects_dead_node_and_duplicates() {
        let mut c = cluster();
        c.crash_node(2);
        assert!(matches!(
            c.deploy(workloads::web_instance("a", "w"), 2),
            Err(CoreError::NodeUnavailable(_))
        ));
        c.deploy(workloads::web_instance("a", "w"), 0).unwrap();
        c.run_for(SimDuration::from_millis(300));
        assert!(matches!(
            c.deploy(workloads::web_instance("b", "w"), 1),
            Err(CoreError::DuplicateInstance(_))
        ));
    }

    #[test]
    fn monitor_series_bridge_into_telemetry_gauges() {
        let telemetry = Telemetry::new();
        let mut c =
            DosgiCluster::new_with_telemetry(3, ClusterConfig::default(), 77, telemetry.clone());
        c.run_for(SimDuration::from_millis(500));
        c.deploy(workloads::web_instance("a", "web"), 0).unwrap();
        c.run_for(SimDuration::from_millis(300));
        // Dense enough that every 250ms sampling window contains calls, so
        // the final gauge values are non-zero regardless of window phase.
        for _ in 0..20 {
            c.call("web", workloads::WEB_SERVICE, "handle", &Value::Null)
                .unwrap();
            c.run_for(SimDuration::from_millis(100));
        }
        let gauges = telemetry.snapshot("t", 0).gauges;
        for key in [
            "monitor.web.cpu_share_pm",
            "monitor.web.memory_bytes",
            "monitor.web.call_rate_mcps",
        ] {
            assert!(gauges.contains_key(key), "missing {key} in {gauges:?}");
        }
        assert!(
            gauges["monitor.web.call_rate_mcps"] > 0,
            "sustained calls show up in the windowed rate: {gauges:?}"
        );
    }

    #[test]
    fn migration_produces_causal_trace() {
        let mut c = cluster();
        c.deploy(workloads::web_instance("a", "web"), 0).unwrap();
        c.run_for(SimDuration::from_millis(300));
        c.migrate("web", 1).unwrap();
        c.run_for(SimDuration::from_millis(1_000));
        assert_eq!(c.home_of("web"), Some(1));
        let log = c.trace_log();
        let root = log
            .events
            .iter()
            .find(|e| e.name == "migrate/web")
            .expect("migrate root recorded");
        assert_eq!(root.parent_span, 0, "operator migrate starts the trace");
        assert_eq!(root.node, 0, "minted on the source");
        let in_trace = |name: &str| {
            log.events
                .iter()
                .find(|e| e.trace_id == root.trace_id && e.name == name)
        };
        let release = in_trace("release/web").expect("release span");
        let adopt = in_trace("adopt/web").expect("adopt span");
        assert!(in_trace("quiesce/web").is_some(), "quiesce phase");
        assert!(in_trace("persist/web").is_some(), "persist phase");
        assert_eq!(release.node, 0);
        assert_eq!(adopt.node, 1, "adopt span lives on the destination");
        assert!(!adopt.open, "adoption completed");
        assert!(
            adopt.lamport_start > release.lamport_end,
            "adoption is causally after the release ({} vs {})",
            adopt.lamport_start,
            release.lamport_end
        );
        assert!(
            adopt.end_us >= release.end_us,
            "adoption finishes after the release in simulated time"
        );
    }

    #[test]
    fn failover_claim_produces_trace() {
        let mut c = cluster();
        c.deploy(workloads::web_instance("a", "web"), 0).unwrap();
        c.run_for(SimDuration::from_millis(300));
        c.crash_node(0);
        c.run_for(SimDuration::from_secs(8));
        let new_home = c.home_of("web").expect("web failed over");
        assert_ne!(new_home, 0);
        let log = c.trace_log();
        let root = log
            .events
            .iter()
            .find(|e| e.name == "failover/web")
            .expect("failover claim root recorded");
        let adopt = log
            .events
            .iter()
            .find(|e| e.trace_id == root.trace_id && e.name == "adopt/web")
            .expect("failover adoption joins the claim's trace");
        assert_eq!(adopt.node, new_home as u64);
        assert!(adopt.lamport_start > root.lamport_start);
    }

    #[test]
    fn disabled_telemetry_records_no_trace() {
        let mut c = DosgiCluster::new_with_telemetry(
            3,
            ClusterConfig::default(),
            77,
            Telemetry::disabled(),
        );
        c.run_for(SimDuration::from_millis(500));
        c.deploy(workloads::web_instance("a", "web"), 0).unwrap();
        c.run_for(SimDuration::from_millis(300));
        c.migrate("web", 1).unwrap();
        c.run_for(SimDuration::from_millis(1_000));
        assert_eq!(c.home_of("web"), Some(1), "protocol unaffected");
        assert!(c.trace_log().events.is_empty());
    }

    #[test]
    fn health_scoreboard_tracks_liveness_and_gauges() {
        let telemetry = Telemetry::new();
        let mut c =
            DosgiCluster::new_with_telemetry(3, ClusterConfig::default(), 77, telemetry.clone());
        c.run_for(SimDuration::from_millis(500));
        assert_eq!(
            c.health_scoreboard(),
            vec![HealthState::Ok, HealthState::Ok, HealthState::Ok]
        );
        c.crash_node(1);
        assert_eq!(c.health_of(1), HealthState::Critical);
        assert_eq!(c.health_of(0), HealthState::Ok);
        assert_eq!(c.health_of(99), HealthState::Critical, "unknown = critical");
        c.record_health_gauges();
        assert_eq!(telemetry.gauge("core.health.n0"), Some(0));
        assert_eq!(telemetry.gauge("core.health.n1"), Some(2));
        c.restart_node(1);
        c.run_for(SimDuration::from_secs(2));
        assert_eq!(c.health_of(1), HealthState::Ok);
    }

    #[test]
    fn observability_scrapes_on_cadence_with_bounded_series() {
        let telemetry = Telemetry::new();
        let mut c =
            DosgiCluster::new_with_telemetry(3, ClusterConfig::default(), 77, telemetry.clone());
        c.enable_observability(
            dosgi_telemetry::ScrapeConfig {
                cadence_us: 250_000,
                capacity: 16,
            },
            DosgiCluster::default_slos(),
        );
        c.run_for(SimDuration::from_millis(500));
        c.deploy(workloads::web_instance("a", "web"), 0).unwrap();
        c.run_for(SimDuration::from_secs(30));
        let scraper = c.scraper().expect("observability on");
        // 30.5 s at 250 ms cadence: one scrape per window, first at t=tick.
        assert!(scraper.scrapes() >= 120, "scrapes: {}", scraper.scrapes());
        let rate = scraper.series("rate:san.ops").expect("san.ops series");
        assert!(rate.len() <= rate.capacity());
        assert_eq!(rate.appended(), rate.len() as u64 + rate.dropped());
        assert!(rate.dropped() > 0, "a 16-ring over 120 scrapes compacts");
        assert_eq!(
            telemetry.counter(dosgi_telemetry::DROPPED_POINTS),
            scraper.total_dropped()
        );
        // Health gauges became series too.
        assert!(scraper.series("gauge:core.health.n0").is_some());
        // A healthy run fires nothing.
        assert_eq!(c.slo_engine().unwrap().firing_count(), 0);
        assert!(telemetry.alerts().is_empty());
    }

    #[test]
    fn events_are_tagged_with_their_node() {
        let mut c = cluster();
        c.deploy(workloads::web_instance("a", "w"), 1).unwrap();
        c.run_for(SimDuration::from_millis(300));
        let events = c.take_events();
        assert!(events
            .iter()
            .any(|(n, e)| *n == NodeId(1) && matches!(e, crate::NodeEvent::Deployed { .. })));
        assert!(c.take_events().is_empty(), "drained");
    }
}
