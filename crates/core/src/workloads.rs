//! The standard bundles, services and instance descriptors used by the
//! examples, tests and experiments.
//!
//! §4 of the paper: *"we already tested it by running multiple virtual
//! instances that use services from the underlying environment namely the
//! log service, the HTTP service and the JMX server service."* These are
//! exactly the host bundles provided here, plus two customer applications:
//!
//! * `org.app.web` — a **stateless** web handler (restart-anywhere);
//! * `org.app.counter` — a **stateful** counter, in three durability
//!   variants used by the E9 replication ablation:
//!   [`COUNTER_ON_STOP`] (persist only on orderly stop — the paper's
//!   baseline, running context lost on crash), [`COUNTER_WRITE_THROUGH`]
//!   (persist every update) and [`COUNTER_CHECKPOINT`] (persist every
//!   [`CHECKPOINT_EVERY`] updates).

use dosgi_net::SimDuration;
use dosgi_osgi::{
    ActivatorFactory, BundleManifest, CallContext, FnActivator, ManifestBuilder, ServiceError,
    Version,
};
use dosgi_san::Value;
use dosgi_vosgi::{BundleRepository, InstanceDescriptor, ResourceQuota};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Host log service bundle.
pub const LOG_BUNDLE: &str = "org.dosgi.log";
/// Host log service interface.
pub const LOG_SERVICE: &str = "org.dosgi.log.Logger";
/// Host HTTP service bundle.
pub const HTTP_BUNDLE: &str = "org.dosgi.http";
/// Host HTTP service interface.
pub const HTTP_SERVICE: &str = "org.dosgi.http.Server";
/// Host metrics (JMX analogue) bundle.
pub const METRICS_BUNDLE: &str = "org.dosgi.metrics";
/// Host metrics service interface.
pub const METRICS_SERVICE: &str = "org.dosgi.metrics.Collector";

/// Stateless customer web application bundle.
pub const WEB_BUNDLE: &str = "org.app.web";
/// The web application's service interface.
pub const WEB_SERVICE: &str = "org.app.web.Handler";

/// Stateful counter, persisted only on orderly stop.
pub const COUNTER_ON_STOP: &str = "org.app.counter";
/// Stateful counter, persisted on every update.
pub const COUNTER_WRITE_THROUGH: &str = "org.app.counter-wt";
/// Stateful counter, persisted every [`CHECKPOINT_EVERY`] updates.
pub const COUNTER_CHECKPOINT: &str = "org.app.counter-ck";
/// The counter service interface (same for all variants).
pub const COUNTER_SERVICE: &str = "org.app.counter.Counter";
/// Checkpoint period (in updates) of [`COUNTER_CHECKPOINT`].
pub const CHECKPOINT_EVERY: i64 = 8;

/// Simulated CPU cost of one log call.
pub const LOG_COST: SimDuration = SimDuration::from_micros(20);
/// Default simulated CPU cost of one HTTP/web request.
pub const REQUEST_COST: SimDuration = SimDuration::from_micros(500);

fn log_manifest() -> BundleManifest {
    ManifestBuilder::new(LOG_BUNDLE, Version::new(1, 0, 0))
        .export_package(
            "org.dosgi.log.api",
            Version::new(1, 0, 0),
            ["Logger", "Level"],
        )
        .build()
        .expect("static manifest")
}

fn http_manifest() -> BundleManifest {
    ManifestBuilder::new(HTTP_BUNDLE, Version::new(1, 0, 0))
        .export_package(
            "org.dosgi.http.api",
            Version::new(1, 0, 0),
            ["Server", "Request", "Response"],
        )
        .build()
        .expect("static manifest")
}

fn metrics_manifest() -> BundleManifest {
    ManifestBuilder::new(METRICS_BUNDLE, Version::new(1, 0, 0))
        .export_package(
            "org.dosgi.metrics.api",
            Version::new(1, 0, 0),
            ["Collector"],
        )
        .build()
        .expect("static manifest")
}

fn web_manifest() -> BundleManifest {
    ManifestBuilder::new(WEB_BUNDLE, Version::new(1, 0, 0))
        .private_package("org.app.web.impl", ["Handler"])
        .build()
        .expect("static manifest")
}

fn counter_manifest(name: &str) -> BundleManifest {
    counter_manifest_at(name, Version::new(1, 0, 0))
}

/// A counter bundle manifest at an explicit `version`: the replacement
/// revision a hot upgrade swaps in (same symbolic name, so the factory
/// hands out the same activator and the data area carries over).
pub fn counter_manifest_at(name: &str, version: Version) -> BundleManifest {
    ManifestBuilder::new(name, version)
        .private_package("org.app.counter.impl", ["Counter"])
        .stateful(true)
        .build()
        .expect("static manifest")
}

/// The bundle catalogue every node carries: host services + customer apps.
pub fn standard_repository() -> BundleRepository {
    [
        log_manifest(),
        http_manifest(),
        metrics_manifest(),
        web_manifest(),
        counter_manifest(COUNTER_ON_STOP),
        counter_manifest(COUNTER_WRITE_THROUGH),
        counter_manifest(COUNTER_CHECKPOINT),
    ]
    .into_iter()
    .collect()
}

/// Builds the activator factory for every standard bundle.
pub fn standard_factory() -> ActivatorFactory {
    let mut f = ActivatorFactory::new();

    f.register(LOG_BUNDLE, |_| {
        Box::new(FnActivator::on_start(|ctx| {
            ctx.register_service(
                &[LOG_SERVICE],
                BTreeMap::new(),
                Box::new(
                    |ctx: &mut CallContext<'_>, method: &str, arg: &Value| match method {
                        "log" => {
                            ctx.charge_cpu(LOG_COST);
                            Ok(Value::map().with("ok", true).with("echo", arg.clone()))
                        }
                        other => Err(ServiceError::Failed(format!("log has no {other}"))),
                    },
                ),
            );
            Ok(())
        }))
    });

    f.register(HTTP_BUNDLE, |_| {
        Box::new(FnActivator::on_start(|ctx| {
            ctx.register_service(
                &[HTTP_SERVICE],
                BTreeMap::new(),
                Box::new(
                    |ctx: &mut CallContext<'_>, method: &str, arg: &Value| match method {
                        "request" => {
                            let work = arg
                                .get("work_us")
                                .and_then(Value::as_int)
                                .unwrap_or(REQUEST_COST.as_micros() as i64);
                            ctx.charge_cpu(SimDuration::from_micros(work.max(0) as u64));
                            Ok(Value::map().with("status", 200i64))
                        }
                        other => Err(ServiceError::Failed(format!("http has no {other}"))),
                    },
                ),
            );
            Ok(())
        }))
    });

    f.register(METRICS_BUNDLE, |_| {
        Box::new(FnActivator::on_start(|ctx| {
            let samples = Arc::new(AtomicI64::new(0));
            let s = samples.clone();
            ctx.register_service(
                &[METRICS_SERVICE],
                BTreeMap::new(),
                Box::new(
                    move |ctx: &mut CallContext<'_>, method: &str, _: &Value| match method {
                        "collect" => {
                            ctx.charge_cpu(SimDuration::from_micros(50));
                            let n = s.fetch_add(1, Ordering::Relaxed) + 1;
                            Ok(Value::map().with("samples", n))
                        }
                        other => Err(ServiceError::Failed(format!("metrics has no {other}"))),
                    },
                ),
            );
            Ok(())
        }))
    });

    f.register(WEB_BUNDLE, |_| {
        Box::new(FnActivator::on_start(|ctx| {
            let served = Arc::new(AtomicI64::new(0));
            let s = served.clone();
            ctx.register_service(
                &[WEB_SERVICE],
                BTreeMap::new(),
                Box::new(
                    move |ctx: &mut CallContext<'_>, method: &str, arg: &Value| match method {
                        "handle" => {
                            let work = arg
                                .get("work_us")
                                .and_then(Value::as_int)
                                .unwrap_or(REQUEST_COST.as_micros() as i64);
                            ctx.charge_cpu(SimDuration::from_micros(work.max(0) as u64));
                            // Per-request allocation churn for the memory gauge.
                            ctx.alloc(4096);
                            ctx.free(4096);
                            let n = s.fetch_add(1, Ordering::Relaxed) + 1;
                            Ok(Value::map().with("status", 200i64).with("served", n))
                        }
                        other => Err(ServiceError::Failed(format!("web has no {other}"))),
                    },
                ),
            );
            Ok(())
        }))
    });

    for (bundle, mode) in [
        (COUNTER_ON_STOP, Durability::OnStop),
        (COUNTER_WRITE_THROUGH, Durability::WriteThrough),
        (COUNTER_CHECKPOINT, Durability::Checkpoint(CHECKPOINT_EVERY)),
    ] {
        f.register(bundle, move |_| Box::new(CounterActivator::new(mode)));
    }

    f
}

/// When the stateful counter persists its running context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Durability {
    OnStop,
    WriteThrough,
    Checkpoint(i64),
}

/// The stateful counter: in-memory count (the "running context" of §3.2)
/// plus a durability policy for the persistent state.
struct CounterActivator {
    mode: Durability,
    count: Arc<AtomicI64>,
}

impl CounterActivator {
    fn new(mode: Durability) -> Self {
        CounterActivator {
            mode,
            count: Arc::new(AtomicI64::new(0)),
        }
    }
}

impl dosgi_osgi::Activator for CounterActivator {
    fn start(&mut self, ctx: &mut dosgi_osgi::BundleContext<'_>) -> Result<(), String> {
        // Recover persisted state (SAN-backed, so this works on any node).
        // A failed read MUST fail the start: falling back to 0 would
        // silently lose the persisted running context.
        let initial = ctx
            .store_get("count")
            .map_err(|e| format!("recover count: {e}"))?
            .and_then(|v| v.as_int())
            .unwrap_or(0);
        self.count.store(initial, Ordering::SeqCst);
        let count = self.count.clone();
        let mode = self.mode;
        ctx.register_service(
            &[COUNTER_SERVICE],
            BTreeMap::new(),
            Box::new(
                move |ctx: &mut CallContext<'_>, method: &str, _: &Value| match method {
                    "incr" => {
                        ctx.charge_cpu(SimDuration::from_micros(30));
                        let n = count.fetch_add(1, Ordering::SeqCst) + 1;
                        match mode {
                            Durability::WriteThrough => ctx.store_put("count", Value::Int(n)),
                            Durability::Checkpoint(k) if n % k == 0 => {
                                ctx.store_put("count", Value::Int(n))
                            }
                            _ => {}
                        }
                        Ok(Value::Int(n))
                    }
                    "get" => Ok(Value::Int(count.load(Ordering::SeqCst))),
                    other => Err(ServiceError::Failed(format!("counter has no {other}"))),
                },
            ),
        );
        Ok(())
    }

    fn stop(&mut self, ctx: &mut dosgi_osgi::BundleContext<'_>) -> Result<(), String> {
        // Orderly shutdown persists the running context — this is why the
        // paper's graceful migration loses nothing while a crash does. On a
        // SAN fault the in-memory area is still updated and marked dirty;
        // the departure path flushes it before releasing the instance.
        ctx.store_put("count", Value::Int(self.count.load(Ordering::SeqCst)))
            .map_err(|e| format!("persist count: {e}"))
    }
}

/// A stateless web-serving customer instance sharing the host log service.
pub fn web_instance(customer: &str, name: &str) -> InstanceDescriptor {
    InstanceDescriptor::builder(customer, name)
        .bundle(WEB_BUNDLE)
        .share_package("org.dosgi.log.api")
        .share_service(LOG_SERVICE)
        .quota(ResourceQuota::standard())
        .build()
}

/// A stateful counter instance (baseline durability: persist on stop).
pub fn counter_instance(customer: &str, name: &str) -> InstanceDescriptor {
    counter_instance_with(customer, name, COUNTER_ON_STOP)
}

/// A stateful counter instance with an explicit durability variant
/// ([`COUNTER_ON_STOP`], [`COUNTER_WRITE_THROUGH`] or
/// [`COUNTER_CHECKPOINT`]).
pub fn counter_instance_with(customer: &str, name: &str, bundle: &str) -> InstanceDescriptor {
    InstanceDescriptor::builder(customer, name)
        .bundle(bundle)
        .quota(ResourceQuota::standard())
        .build()
}

/// The host bundles every node starts (log + http + metrics), as
/// `(manifest, must_start)` pairs.
pub fn host_bundles() -> Vec<BundleManifest> {
    vec![log_manifest(), http_manifest(), metrics_manifest()]
}

/// Zipf-skewed tenant popularity: which customer each request belongs to
/// when a handful of tenants dominate a million-user workload.
///
/// Rank 0 (`tenant-000`) is the most popular; popularity decays as
/// `1/rank^exponent` via [`crate::loadgen::ZipfSampler`]. Seeded and
/// deterministic, so the same request sequence always maps to the same
/// tenants (E15 fingerprinting).
#[derive(Debug, Clone)]
pub struct TenantPopularity {
    names: Vec<String>,
    sampler: crate::loadgen::ZipfSampler,
}

impl TenantPopularity {
    /// `tenants` customers skewed by `exponent` (1.0 is classic Zipf).
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is zero (via the sampler).
    pub fn new(tenants: usize, exponent: f64, seed: u64) -> Self {
        TenantPopularity {
            names: (0..tenants).map(|i| format!("tenant-{i:03}")).collect(),
            sampler: crate::loadgen::ZipfSampler::new(tenants, exponent, seed),
        }
    }

    /// The tenant the next request belongs to.
    pub fn sample(&mut self) -> &str {
        let rank = self.sampler.sample();
        &self.names[rank]
    }

    /// The tenant name at popularity `rank` (0 = most popular).
    pub fn name(&self, rank: usize) -> &str {
        &self.names[rank]
    }

    /// The analytic share of traffic tenant `rank` receives.
    pub fn share(&self, rank: usize) -> f64 {
        self.sampler.probability(rank)
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the fleet is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosgi_osgi::Framework;

    fn framework_with(bundle: &str) -> Framework {
        let mut fw = Framework::new("t");
        let repo = standard_repository();
        let factory = standard_factory();
        let m = repo.manifest(bundle).unwrap().clone();
        let a = factory.create(&m);
        let id = fw.install(m, a).unwrap();
        fw.start(id).unwrap();
        fw
    }

    #[test]
    fn repository_contains_all_bundles() {
        let repo = standard_repository();
        for b in [
            LOG_BUNDLE,
            HTTP_BUNDLE,
            METRICS_BUNDLE,
            WEB_BUNDLE,
            COUNTER_ON_STOP,
            COUNTER_WRITE_THROUGH,
            COUNTER_CHECKPOINT,
        ] {
            assert!(repo.contains(b), "{b}");
        }
        assert_eq!(host_bundles().len(), 3);
    }

    #[test]
    fn tenant_popularity_is_skewed_and_deterministic() {
        let mut pop = TenantPopularity::new(50, 1.0, 7);
        assert_eq!(pop.len(), 50);
        assert!(!pop.is_empty());
        assert_eq!(pop.name(0), "tenant-000");
        assert!(pop.share(0) > pop.share(49));
        let mut hits = vec![0u32; 50];
        for _ in 0..5_000 {
            let name = pop.sample().to_string();
            let rank: usize = name.trim_start_matches("tenant-").parse().unwrap();
            hits[rank] += 1;
        }
        // The head tenant dominates the tail tenant under Zipf skew.
        assert!(hits[0] > 10 * hits[49].max(1) / 2, "{hits:?}");
        // Determinism: same seed, same sequence.
        let mut a = TenantPopularity::new(50, 1.0, 7);
        let mut b = TenantPopularity::new(50, 1.0, 7);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn log_service_responds_and_charges() {
        let mut fw = framework_with(LOG_BUNDLE);
        let sid = fw.best_service(LOG_SERVICE).unwrap();
        let out = fw.call_service(sid, "log", &Value::from("hello")).unwrap();
        assert_eq!(out.get("ok"), Some(&Value::Bool(true)));
        assert!(fw.ledger().total().cpu >= LOG_COST);
        assert!(fw.call_service(sid, "bogus", &Value::Null).is_err());
    }

    #[test]
    fn http_service_costs_scale_with_work() {
        let mut fw = framework_with(HTTP_BUNDLE);
        let sid = fw.best_service(HTTP_SERVICE).unwrap();
        fw.call_service(sid, "request", &Value::map().with("work_us", 1000i64))
            .unwrap();
        let cpu = fw.ledger().total().cpu;
        assert_eq!(cpu, SimDuration::from_millis(1));
    }

    #[test]
    fn web_service_counts_requests() {
        let mut fw = framework_with(WEB_BUNDLE);
        let sid = fw.best_service(WEB_SERVICE).unwrap();
        let r1 = fw.call_service(sid, "handle", &Value::Null).unwrap();
        let r2 = fw.call_service(sid, "handle", &Value::Null).unwrap();
        assert_eq!(r1.get("served"), Some(&Value::Int(1)));
        assert_eq!(r2.get("served"), Some(&Value::Int(2)));
        assert_eq!(r2.get("status"), Some(&Value::Int(200)));
    }

    #[test]
    fn counter_persists_on_stop_and_recovers() {
        let store = dosgi_san::SharedStore::new();
        let mut fw = Framework::new("a");
        fw.attach_store(store.clone(), "inst/x").unwrap();
        let repo = standard_repository();
        let factory = standard_factory();
        let m = repo.manifest(COUNTER_ON_STOP).unwrap().clone();
        let id = fw.install(m.clone(), factory.create(&m)).unwrap();
        fw.start(id).unwrap();
        let sid = fw.best_service(COUNTER_SERVICE).unwrap();
        for _ in 0..5 {
            fw.call_service(sid, "incr", &Value::Null).unwrap();
        }
        fw.shutdown();
        drop(fw);

        // Restore elsewhere: count recovered because stop persisted it.
        let fw2 = Framework::restore(
            dosgi_osgi::FrameworkConfig::new("b"),
            store,
            "inst/x",
            &factory,
        )
        .unwrap();
        let mut fw2 = fw2;
        let sid = fw2.best_service(COUNTER_SERVICE).unwrap();
        let got = fw2.call_service(sid, "get", &Value::Null).unwrap();
        assert_eq!(got, Value::Int(5));
    }

    #[test]
    fn write_through_counter_survives_unclean_loss() {
        let store = dosgi_san::SharedStore::new();
        let mut fw = Framework::new("a");
        fw.attach_store(store.clone(), "inst/x").unwrap();
        let repo = standard_repository();
        let factory = standard_factory();
        let m = repo.manifest(COUNTER_WRITE_THROUGH).unwrap().clone();
        let id = fw.install(m.clone(), factory.create(&m)).unwrap();
        fw.start(id).unwrap();
        let sid = fw.best_service(COUNTER_SERVICE).unwrap();
        for _ in 0..5 {
            fw.call_service(sid, "incr", &Value::Null).unwrap();
        }
        // CRASH: no shutdown; the framework object is simply dropped. The
        // framework state snapshot was persisted on lifecycle transitions
        // and the counter wrote through on every incr.
        drop(fw);
        let mut fw2 = Framework::restore(
            dosgi_osgi::FrameworkConfig::new("b"),
            store,
            "inst/x",
            &factory,
        )
        .unwrap();
        let sid = fw2.best_service(COUNTER_SERVICE).unwrap();
        assert_eq!(
            fw2.call_service(sid, "get", &Value::Null).unwrap(),
            Value::Int(5)
        );
    }

    #[test]
    fn on_stop_counter_loses_context_on_crash() {
        let store = dosgi_san::SharedStore::new();
        let mut fw = Framework::new("a");
        fw.attach_store(store.clone(), "inst/x").unwrap();
        let repo = standard_repository();
        let factory = standard_factory();
        let m = repo.manifest(COUNTER_ON_STOP).unwrap().clone();
        let id = fw.install(m.clone(), factory.create(&m)).unwrap();
        fw.start(id).unwrap();
        let sid = fw.best_service(COUNTER_SERVICE).unwrap();
        for _ in 0..5 {
            fw.call_service(sid, "incr", &Value::Null).unwrap();
        }
        drop(fw); // crash
        let mut fw2 = Framework::restore(
            dosgi_osgi::FrameworkConfig::new("b"),
            store,
            "inst/x",
            &factory,
        )
        .unwrap();
        let sid = fw2.best_service(COUNTER_SERVICE).unwrap();
        // The paper's point: the running context is gone.
        assert_eq!(
            fw2.call_service(sid, "get", &Value::Null).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn checkpoint_counter_loses_at_most_one_period() {
        let store = dosgi_san::SharedStore::new();
        let mut fw = Framework::new("a");
        fw.attach_store(store.clone(), "inst/x").unwrap();
        let repo = standard_repository();
        let factory = standard_factory();
        let m = repo.manifest(COUNTER_CHECKPOINT).unwrap().clone();
        let id = fw.install(m.clone(), factory.create(&m)).unwrap();
        fw.start(id).unwrap();
        let sid = fw.best_service(COUNTER_SERVICE).unwrap();
        for _ in 0..19 {
            fw.call_service(sid, "incr", &Value::Null).unwrap();
        }
        drop(fw); // crash after 19 increments; last checkpoint at 16
        let mut fw2 = Framework::restore(
            dosgi_osgi::FrameworkConfig::new("b"),
            store,
            "inst/x",
            &factory,
        )
        .unwrap();
        let sid = fw2.best_service(COUNTER_SERVICE).unwrap();
        assert_eq!(
            fw2.call_service(sid, "get", &Value::Null).unwrap(),
            Value::Int(16)
        );
    }

    #[test]
    fn descriptors_reference_known_bundles() {
        let repo = standard_repository();
        for d in [
            web_instance("acme", "acme-web"),
            counter_instance("acme", "acme-counter"),
            counter_instance_with("acme", "acme-wt", COUNTER_WRITE_THROUGH),
        ] {
            for b in &d.bundles {
                assert!(repo.contains(b), "{b}");
            }
        }
        let d = web_instance("acme", "acme-web");
        assert_eq!(d.shared_services, vec![LOG_SERVICE]);
    }
}
