//! One node of the dependable distributed OSGi environment.

use crate::autonomic::AutonomicModule;
use crate::events::{AdoptReason, NodeEvent};
use crate::msg::AppPayload;
use crate::placement::PlacementPolicy;
use crate::registry::{ClusterRegistry, InstanceStatus};
use crate::workloads;
use crate::CoreError;
use dosgi_gcs::{FabricTransport, GcsConfig, GcsEvent, GcsWire, GroupNode};
use dosgi_monitor::{MonitoringModule, NodeCapacity};
use dosgi_net::{Fabric, NodeId, SimDuration, SimTime};
use dosgi_osgi::{BundleManifest, Framework};
use dosgi_policy::PolicyAction;
use dosgi_san::{SharedStore, Value};
use dosgi_telemetry::{FlightRecorder, SpanId, Telemetry, TraceContext, TraceRef};
use dosgi_vosgi::{InstanceDescriptor, InstanceManager, ResourceQuota};
use std::collections::{BTreeMap, BTreeSet};

/// The wire type carried by the cluster's simulated network.
pub type Wire = GcsWire<AppPayload>;

/// A node's coarse operational state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeState {
    /// Serving normally.
    #[default]
    Running,
    /// Migrating its instances away ahead of a graceful shutdown.
    Draining,
    /// Powered down for consolidation (paper §4's green side effect).
    Hibernated,
    /// Orderly stopped (drain complete).
    Stopped,
}

/// Per-node configuration.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Group communication timing.
    pub gcs: GcsConfig,
    /// Monitoring sample period.
    pub sample_interval: SimDuration,
    /// Placement discipline for failover and SLA migrations.
    pub placement: PlacementPolicy,
    /// Physical capacity.
    pub capacity: NodeCapacity,
    /// Autonomic policy script (`None` disables the module — the E10
    /// baseline).
    pub policy: Option<String>,
    /// Autonomic evaluation period.
    pub policy_interval: SimDuration,
    /// Simulated cost of installing + starting one bundle (re-materializing
    /// an instance pays this per bundle; calibrated to a small 2008-era
    /// bundle start).
    pub start_cost_per_bundle: SimDuration,
    /// SAN latency profile: adoption pays a read of the instance's
    /// persisted state.
    pub san: dosgi_san::SanProfile,
    /// Retry/backoff discipline for adoption against a faulty SAN: a
    /// transiently-failing re-materialization is retried with exponential
    /// backoff; once the budget is exhausted the instance is quarantined
    /// (kept in the registry, re-claimed when the SAN heals).
    pub retry: dosgi_san::RetryPolicy,
    /// Simulated cost of the in-place revision swap during a hot bundle
    /// upgrade (manifest replacement + re-wire + activator start against
    /// already-warm state). The per-upgrade blackout is this plus a SAN
    /// write of the bundle's dirty state — µs-scale, as opposed to the
    /// ms-scale whole-instance migration path.
    pub upgrade_swap_cost: SimDuration,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            gcs: GcsConfig::lan(),
            sample_interval: SimDuration::from_millis(250),
            placement: PlacementPolicy::FewestInstances,
            capacity: NodeCapacity::standard(),
            policy: Some(crate::autonomic::DEFAULT_POLICY.to_owned()),
            policy_interval: SimDuration::from_millis(500),
            start_cost_per_bundle: SimDuration::from_millis(50),
            san: dosgi_san::SanProfile::fast(),
            retry: dosgi_san::RetryPolicy::persistence(),
            upgrade_swap_cost: SimDuration::from_micros(150),
        }
    }
}

/// One cluster node: host OSGi framework + Instance Manager + Migration
/// Module + Monitoring Module + Autonomic Module + GCS endpoint.
pub struct DosgiNode {
    id: NodeId,
    state: NodeState,
    config: NodeConfig,
    mgr: InstanceManager,
    gcs: GroupNode<AppPayload>,
    registry: ClusterRegistry,
    monitor: MonitoringModule,
    autonomic: Option<AutonomicModule>,
    draining_peers: BTreeSet<NodeId>,
    departed_peers: BTreeSet<NodeId>,
    throttled: BTreeSet<String>,
    hibernate_when_empty: bool,
    last_sample: Option<SimTime>,
    last_sweep: Option<SimTime>,
    hello_sent: bool,
    store: SharedStore,
    pending_adoptions: Vec<PendingAdoption>,
    pending_upgrades: Vec<PendingUpgrade>,
    events: Vec<NodeEvent>,
    telemetry: Telemetry,
    recorder: FlightRecorder,
    // Open failover/heal claim roots, keyed by instance: minted when this
    // node orders an `Adopted` claim, closed when the claim's delivery
    // resolves the race (either way) in the total order.
    claim_traces: BTreeMap<String, TraceRef>,
    // Open `upgrade/<instance>` roots, keyed by `<instance>/<bundle>` —
    // the same discipline as `claim_traces`: minted when the upgrade is
    // requested, *reused* by every transient-fault retry, and closed
    // exactly once when the upgrade completes or fails permanently. This
    // is what keeps a SAN-faulted upgrade from leaking an open span per
    // retry.
    upgrade_traces: BTreeMap<String, TraceRef>,
    // The (ended) root of the most recent completed upgrade per instance:
    // the wave orchestrator joins its `undrain/` span to this trace so the
    // un-drain is causally ordered after the new revision's adoption.
    finished_upgrade_traces: BTreeMap<String, TraceRef>,
    // The open `shutdown`/`hibernate` root while draining; closed when the
    // drain completes.
    lifecycle_trace: TraceRef,
}

#[derive(Debug, Clone)]
struct PendingAdoption {
    ready_at: SimTime,
    name: String,
    reason: AdoptReason,
    /// How many materialization attempts already failed transiently.
    attempt: u32,
    /// The `core.adopt` span opened when the adoption was queued; closed
    /// when the ticket materializes, is overruled, or quarantines.
    span: SpanId,
    /// The causal `adopt/<name>` trace span, if the triggering control
    /// message carried a context; closed alongside `span`.
    trace: TraceRef,
}

/// A queued in-place bundle upgrade: the swap happens once `ready_at`
/// passes (the modeled blackout), against the replicated-registry check
/// that the instance is still homed here.
#[derive(Debug, Clone)]
struct PendingUpgrade {
    ready_at: SimTime,
    /// The hosting instance.
    name: String,
    /// The replacement revision's manifest.
    manifest: BundleManifest,
    /// How many swap attempts already failed transiently.
    attempt: u32,
    /// The `core.upgrade` telemetry span; closed when the swap lands or
    /// fails permanently (kept across retries — see `upgrade_traces`).
    span: SpanId,
}

impl std::fmt::Debug for DosgiNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DosgiNode")
            .field("id", &self.id)
            .field("state", &self.state)
            .field("instances", &self.mgr.len())
            .field("view", &self.gcs.view().members.len())
            .finish_non_exhaustive()
    }
}

impl DosgiNode {
    /// Creates a node: host framework with the standard host bundles (log,
    /// HTTP, metrics) started, SAN attached, GCS endpoint joined.
    pub fn new(
        id: NodeId,
        peers: Vec<NodeId>,
        config: NodeConfig,
        store: SharedStore,
        now: SimTime,
    ) -> Self {
        let mut host = Framework::new(&format!("host/{id}"));
        // A node booting during a SAN fault keeps its snapshot dirty; the
        // tick's flush loop converges it once the SAN answers again.
        let _ = host.attach_store(store.clone(), &format!("host/{id}"));
        let factory = workloads::standard_factory();
        for manifest in workloads::host_bundles() {
            let activator = factory.create(&manifest);
            let bid = host.install(manifest, activator).expect("fresh framework");
            host.start(bid).expect("host bundles start");
        }
        let mut mgr = InstanceManager::new(host, workloads::standard_repository(), factory);
        mgr.attach_store(store.clone());
        let autonomic = config.policy.as_ref().map(|script| {
            AutonomicModule::new(script, config.policy_interval)
                .expect("node policy script must compile")
        });
        DosgiNode {
            id,
            state: NodeState::Running,
            gcs: GroupNode::new(id, peers, config.gcs, now),
            config,
            mgr,
            registry: ClusterRegistry::new(),
            monitor: MonitoringModule::new(),
            autonomic,
            draining_peers: BTreeSet::new(),
            departed_peers: BTreeSet::new(),
            throttled: BTreeSet::new(),
            hibernate_when_empty: false,
            last_sample: None,
            last_sweep: None,
            hello_sent: false,
            store,
            pending_adoptions: Vec::new(),
            pending_upgrades: Vec::new(),
            events: Vec::new(),
            telemetry: Telemetry::disabled(),
            recorder: FlightRecorder::disabled(),
            claim_traces: BTreeMap::new(),
            upgrade_traces: BTreeMap::new(),
            finished_upgrade_traces: BTreeMap::new(),
            lifecycle_trace: TraceRef::NONE,
        }
    }

    /// Attaches a telemetry handle, propagated to the GCS endpoint and
    /// the instance manager (host framework + instance frameworks).
    /// Telemetry is passive; protocol behaviour is unchanged.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.gcs.set_telemetry(telemetry.clone());
        self.mgr.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Attaches a flight recorder for causal protocol tracing. Like
    /// telemetry, the recorder is strictly passive: spans are stamped from
    /// the simulated clock and a logical (Lamport) clock, never from wall
    /// time or the RNG, so protocol behaviour is bit-identical with the
    /// recorder on or off.
    pub fn set_recorder(&mut self, recorder: FlightRecorder) {
        self.recorder = recorder;
    }

    /// The node's flight recorder (disabled unless attached).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Operational state.
    pub fn state(&self) -> NodeState {
        self.state
    }

    /// The node's copy of the replicated instance registry.
    pub fn registry(&self) -> &ClusterRegistry {
        &self.registry
    }

    /// The node's instance manager.
    pub fn manager(&self) -> &InstanceManager {
        &self.mgr
    }

    /// Mutable instance-manager access (tests and workload drivers).
    pub fn manager_mut(&mut self) -> &mut InstanceManager {
        &mut self.mgr
    }

    /// A lock-sharded read handle onto the host framework's service
    /// registry. The handle is `Send + Sync` and stays live after this node
    /// is moved onto a worker thread, so concurrent `by_interface` lookups
    /// never serialize behind the node itself.
    pub fn registry_reader(&self) -> dosgi_osgi::RegistryReader {
        self.mgr.host().registry().reader()
    }

    /// The node's monitoring module.
    pub fn monitor(&self) -> &MonitoringModule {
        &self.monitor
    }

    /// The current membership view.
    pub fn view(&self) -> &dosgi_gcs::View {
        self.gcs.view()
    }

    /// Debug visibility into the GCS endpoint: pending (unsequenced)
    /// ordered messages.
    #[doc(hidden)]
    pub fn gcs_pending(&self) -> usize {
        self.gcs.pending_orders()
    }

    /// Drains accumulated node events.
    pub fn take_events(&mut self) -> Vec<NodeEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of accumulated (undrained) events. Long-running drivers use
    /// this to bound the buffer when nobody is collecting.
    pub fn events_len(&self) -> usize {
        self.events.len()
    }

    /// True if `name` is an SLA-throttled instance.
    pub fn is_throttled(&self, name: &str) -> bool {
        self.throttled.contains(name)
    }

    /// True if the instance is running locally.
    pub fn probe_local(&self, name: &str) -> bool {
        self.mgr
            .find_by_name(name)
            .and_then(|id| self.mgr.instance(id))
            .map(|i| i.is_running())
            .unwrap_or(false)
    }

    /// Calls a service of a locally running instance.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotPlaced`] when the instance is not running here;
    /// service errors otherwise.
    pub fn call_local(
        &mut self,
        name: &str,
        interface: &str,
        method: &str,
        arg: &Value,
    ) -> Result<Value, CoreError> {
        let iid = self
            .mgr
            .find_by_name(name)
            .ok_or_else(|| CoreError::NotPlaced(name.to_owned()))?;
        Ok(self.mgr.call_service(iid, interface, method, arg)?)
    }

    // ------------------------------------------------------------------
    // Cluster operations
    // ------------------------------------------------------------------

    /// Deploys a new instance locally and announces it cluster-wide.
    ///
    /// # Errors
    ///
    /// Instance-manager errors (duplicate name, unknown bundle, …).
    pub fn deploy(
        &mut self,
        descriptor: InstanceDescriptor,
        net: &mut impl Fabric<Wire>,
        now: SimTime,
    ) -> Result<(), CoreError> {
        let name = descriptor.name.clone();
        let value = descriptor.to_value();
        let iid = self.mgr.create_instance(descriptor)?;
        self.mgr.start_instance(iid)?;
        self.order(
            net,
            AppPayload::Deployed {
                name: name.clone(),
                descriptor: value,
                home: self.id,
            },
        );
        self.events.push(NodeEvent::Deployed { at: now, name });
        Ok(())
    }

    /// Requests migration of a locally-placed instance to `to`.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotPlaced`] when the instance is not here,
    /// [`CoreError::BadMigration`] for a self-destination.
    pub fn migrate_away(
        &mut self,
        name: &str,
        to: NodeId,
        net: &mut impl Fabric<Wire>,
    ) -> Result<(), CoreError> {
        self.migrate_away_traced(name, to, net, TraceRef::NONE)
    }

    /// Like [`migrate_away`](Self::migrate_away) but attaching the minted
    /// `migrate/<name>` span under `parent` (a drain root, say) instead of
    /// starting a fresh trace. The span closes as soon as the `Migrate` is
    /// handed to the total order — the release and adoption phases attach
    /// to it causally via the propagated context.
    fn migrate_away_traced(
        &mut self,
        name: &str,
        to: NodeId,
        net: &mut impl Fabric<Wire>,
        parent: TraceRef,
    ) -> Result<(), CoreError> {
        if to == self.id {
            return Err(CoreError::BadMigration("destination is the source".into()));
        }
        if self.mgr.find_by_name(name).is_none() {
            return Err(CoreError::NotPlaced(name.to_owned()));
        }
        let now_us = net.now().as_micros();
        let span = if parent.is_some() {
            self.recorder
                .child_of(parent, &format!("migrate/{name}"), now_us)
        } else {
            self.recorder.root(&format!("migrate/{name}"), now_us)
        };
        let ctx = self.recorder.context(span);
        self.order_traced(
            net,
            AppPayload::Migrate {
                name: name.to_owned(),
                from: self.id,
                to,
            },
            ctx,
        );
        self.recorder.end(span, now_us);
        Ok(())
    }

    /// Permanently removes a locally-placed instance: stops it, wipes its
    /// SAN state and announces the removal cluster-wide.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotPlaced`] when the instance is not running here.
    pub fn undeploy(&mut self, name: &str, net: &mut impl Fabric<Wire>) -> Result<(), CoreError> {
        let iid = self
            .mgr
            .find_by_name(name)
            .ok_or_else(|| CoreError::NotPlaced(name.to_owned()))?;
        let _ = self.mgr.stop_instance(iid);
        self.mgr.destroy_instance(iid, true)?;
        self.monitor.forget(name);
        self.throttled.remove(name);
        if let Some(a) = &mut self.autonomic {
            a.forget(name);
        }
        self.order(
            net,
            AppPayload::Undeployed {
                name: name.to_owned(),
            },
        );
        Ok(())
    }

    /// Begins a graceful shutdown: announce draining, migrate every local
    /// instance away; once empty the node leaves the group and stops
    /// (§3.2's "normal expected shutdown" path).
    pub fn begin_shutdown(&mut self, net: &mut impl Fabric<Wire>, now: SimTime) {
        if self.state != NodeState::Running {
            return;
        }
        self.state = NodeState::Draining;
        self.events.push(NodeEvent::Draining { at: now });
        let root = self.recorder.root("shutdown", now.as_micros());
        self.lifecycle_trace = root;
        let ctx = self.recorder.context(root);
        self.order_traced(net, AppPayload::Draining { node: self.id }, ctx);
        self.migrate_all_local(net, root);
    }

    fn migrate_all_local(&mut self, net: &mut impl Fabric<Wire>, parent: TraceRef) {
        let locals: Vec<String> = self
            .mgr
            .instances()
            .map(|i| i.descriptor.name.clone())
            .collect();
        let candidates = self.placement_candidates();
        for name in locals {
            if let Some(dest) =
                self.config
                    .placement
                    .choose(&name, &candidates, &self.registry, &BTreeMap::new())
            {
                self.telemetry.incr("core.placement.decisions");
                let _ = self.migrate_away_traced(&name, dest, net, parent);
            }
        }
    }

    fn placement_candidates(&self) -> Vec<NodeId> {
        self.gcs
            .view()
            .members
            .iter()
            .filter(|m| **m != self.id && !self.draining_peers.contains(m))
            .copied()
            .collect()
    }

    // ------------------------------------------------------------------
    // The tick: the node's event loop
    // ------------------------------------------------------------------

    /// Processes incoming messages, runs the failure detector, samples
    /// usage and evaluates policies. The cluster driver calls this at every
    /// simulation step.
    pub fn tick(&mut self, net: &mut impl Fabric<Wire>, now: SimTime) {
        if matches!(self.state, NodeState::Hibernated | NodeState::Stopped) {
            return;
        }
        // Inbound messages → protocol engine.
        for env in net.drain(self.id) {
            let mut t = FabricTransport::new(net, self.id);
            self.gcs.handle(&mut t, env.from, env.payload, now);
        }
        {
            let mut t = FabricTransport::new(net, self.id);
            self.gcs.tick(&mut t, now);
        }
        // Protocol events → migration/failover logic.
        for event in self.gcs.take_events() {
            self.on_gcs_event(event, net, now);
        }
        if !self.hello_sent {
            self.hello_sent = true;
            // The digest lets the answering peer ship a per-record delta
            // instead of the full registry. A freshly restarted node has an
            // empty registry, so its digest is empty and the delta
            // degenerates to a full snapshot — same convergence, fewer
            // bytes whenever the sender already holds current records.
            let digest = self.registry.digest();
            self.order(
                net,
                AppPayload::Hello {
                    node: self.id,
                    digest,
                },
            );
        }
        self.process_pending_adoptions(net, now);
        self.process_pending_upgrades(now);
        self.flush_deferred_persistence();
        self.sample(now);
        self.run_autonomic(net, now);
        self.sweep_stranded(net, now);
        self.check_drained(net, now);
    }

    /// Write-behind convergence: lifecycle transitions never roll back on a
    /// transient SAN failure — the framework marks its snapshot/data areas
    /// dirty instead. Each tick retries the flush (cheap no-op when nothing
    /// is dirty), gated on the SAN answering at all so a brown-out is not
    /// hammered every 5 ms.
    fn flush_deferred_persistence(&mut self) {
        if self.store.is_available() {
            self.mgr.flush_persist_all();
        }
    }

    /// Level-triggered failover: periodically claim any instance whose
    /// placement points at a node outside the current view. The
    /// edge-triggered path (view changes) catches ordinary crashes; this
    /// sweep catches the races it cannot — e.g. a `Migrate` sequenced
    /// *after* the destination's death was already processed, which leaves
    /// a record homed on a dead node with no further view change to react
    /// to. Claims stay race-free: they carry the observed dead home and
    /// the first one in the total order wins everywhere.
    fn sweep_stranded(&mut self, net: &mut impl Fabric<Wire>, now: SimTime) {
        if self.state != NodeState::Running {
            return;
        }
        let due = self
            .last_sweep
            .map(|at| now.since(at) >= SimDuration::from_millis(1_000))
            .unwrap_or(true);
        if !due {
            return;
        }
        self.last_sweep = Some(now);
        let view = self.gcs.view().clone();
        if !view.has_majority(self.gcs.universe() - self.departed_peers.len()) {
            return;
        }
        let stranded: Vec<NodeId> = {
            let mut v: Vec<NodeId> = self
                .registry
                .records()
                .flat_map(|r| {
                    let mut endpoints = vec![r.home];
                    if let InstanceStatus::Migrating { to } = r.status {
                        endpoints.push(to);
                    }
                    endpoints
                })
                .filter(|n| !view.contains(*n))
                .collect();
            v.sort();
            v.dedup();
            v
        };
        // Also retry plain `Orphaned` records whose home is back *inside*
        // the view: a spurious suspicion (message loss) can orphan a record
        // and lose the claim in the view churn, after which the home's
        // rejoin means no further view change will ever re-trigger
        // failover. The claim rules keep this race-free — a claim against
        // an `Orphaned` record wins exactly once in the total order.
        if !stranded.is_empty() || !self.registry.orphans().is_empty() {
            self.handle_failover(&stranded, net);
        }
        self.heal_quarantined(net);
    }

    /// The healing half of quarantine: once the SAN answers again, re-claim
    /// every quarantined instance homed here via the total order
    /// (`prior_home: self` makes the claim valid on every replica) — the
    /// winning claim flips the record back to `Placed` and the normal
    /// adoption path re-materializes the instance from the SAN.
    fn heal_quarantined(&mut self, net: &mut impl Fabric<Wire>) {
        if !self.store.is_available() {
            return;
        }
        let healable: Vec<String> = self
            .registry
            .records()
            .filter(|r| r.status == InstanceStatus::Quarantined && r.home == self.id)
            .filter(|r| !self.pending_adoptions.iter().any(|p| p.name == r.name))
            .map(|r| r.name.clone())
            .collect();
        for name in healable {
            let ctx = self.claim_context(&name, "heal", net.now().as_micros());
            self.order_traced(
                net,
                AppPayload::Adopted {
                    name,
                    node: self.id,
                    prior_home: self.id,
                },
                ctx,
            );
        }
    }

    /// The trace context for a failover/heal claim on `name`: reuses the
    /// open claim root if an earlier claim is still unresolved (the sweep
    /// retries lost claims), otherwise mints a fresh `<kind>/<name>` root.
    fn claim_context(&mut self, name: &str, kind: &str, now_us: u64) -> Option<TraceContext> {
        let span = match self.claim_traces.get(name) {
            Some(&s) => s,
            None => {
                let s = self.recorder.root(&format!("{kind}/{name}"), now_us);
                self.claim_traces.insert(name.to_owned(), s);
                s
            }
        };
        self.recorder.context(span)
    }

    fn order(&mut self, net: &mut impl Fabric<Wire>, payload: AppPayload) {
        let mut t = FabricTransport::new(net, self.id);
        self.gcs.order(&mut t, payload);
    }

    fn order_traced(
        &mut self,
        net: &mut impl Fabric<Wire>,
        payload: AppPayload,
        ctx: Option<TraceContext>,
    ) {
        let mut t = FabricTransport::new(net, self.id);
        self.gcs.order_traced(&mut t, payload, ctx);
    }

    fn on_gcs_event(
        &mut self,
        event: GcsEvent<AppPayload>,
        net: &mut impl Fabric<Wire>,
        now: SimTime,
    ) {
        match event {
            GcsEvent::ViewChange { view, joined, left } => {
                self.events.push(NodeEvent::ViewChanged {
                    at: now,
                    members: view.members.clone(),
                    left: left.clone(),
                });
                // Classify departures: a node that announced Draining left
                // voluntarily and stops counting toward the quorum
                // universe; anything else is a crash.
                for l in &left {
                    if self.draining_peers.remove(l) {
                        self.departed_peers.insert(*l);
                    }
                }
                for j in &joined {
                    self.draining_peers.remove(j);
                    self.departed_peers.remove(j);
                }
                // State transfer for joiners: the lowest-id member that
                // was *already* in the group sends its registry (the new
                // coordinator may well be the freshly-restarted joiner,
                // whose registry is empty).
                let sync_sender = view
                    .members
                    .iter()
                    .filter(|m| !joined.contains(m))
                    .min()
                    .copied();
                if !joined.is_empty() && sync_sender == Some(self.id) {
                    let snapshot = self.registry.export();
                    self.telemetry
                        .add("registry.sync_bytes", snapshot.encoded_len() as u64);
                    self.order(net, AppPayload::RegistrySync { registry: snapshot });
                }
                let effective_universe = self.gcs.universe() - self.departed_peers.len();
                if !left.is_empty() && view.has_majority(effective_universe) {
                    self.handle_failover(&left, net);
                }
            }
            GcsEvent::OrderedDeliver { payload, trace, .. } => {
                // Fold the carried Lamport stamp into the local logical
                // clock even when this node opens no span of its own: a
                // later local root must still order after everything the
                // delivery happened-after.
                if let Some(ctx) = trace {
                    self.recorder.observe(ctx);
                }
                self.apply_control(payload, trace, net, now);
            }
            GcsEvent::Deliver { .. } => {
                // All control traffic is ordered; FIFO deliveries are
                // reserved for future bulk data.
            }
        }
    }

    /// §3.2's decentralized redeployment: every survivor computes the same
    /// assignment from the same replicated registry and agreed view, then
    /// *claims* (via the total order) only the instances assigned to
    /// itself. The first claim per orphan wins on every node alike.
    fn handle_failover(&mut self, left: &[NodeId], net: &mut impl Fabric<Wire>) {
        // Claim both newly-orphaned records AND records still sitting in
        // Orphaned (an earlier claim may have been lost or overwritten):
        // the sweep retries until the registry converges.
        let mut orphans = self.registry.orphan_homes(left);
        orphans.extend(self.registry.orphans());
        orphans.sort();
        orphans.dedup();
        if orphans.is_empty() || self.state != NodeState::Running {
            return;
        }
        let candidates = {
            let mut c = self.placement_candidates();
            c.push(self.id);
            c.sort();
            c
        };
        let assignment = self
            .config
            .placement
            .assign_all(&orphans, &candidates, &self.registry);
        self.telemetry
            .add("core.placement.decisions", assignment.len() as u64);
        for (name, dest) in assignment {
            if dest == self.id {
                let prior_home = self
                    .registry
                    .record(&name)
                    .map(|r| r.home)
                    .unwrap_or(self.id);
                let ctx = self.claim_context(&name, "failover", net.now().as_micros());
                self.order_traced(
                    net,
                    AppPayload::Adopted {
                        name,
                        node: self.id,
                        prior_home,
                    },
                    ctx,
                );
            }
        }
    }

    fn apply_control(
        &mut self,
        payload: AppPayload,
        trace: Option<TraceContext>,
        net: &mut impl Fabric<Wire>,
        now: SimTime,
    ) {
        self.telemetry.incr("core.registry.ops");
        // Snapshot pre-application status for claim/adoption decisions.
        let prior_status = payload
            .instance()
            .and_then(|n| self.registry.record(n))
            .map(|r| r.status);
        self.registry.apply(&payload);
        match payload {
            AppPayload::Migrate { name, from, to } => {
                if from == self.id && prior_status != Some(InstanceStatus::Orphaned) {
                    self.release_instance(&name, to, net, now, trace);
                }
            }
            AppPayload::Released { name, to } => {
                if to == self.id && prior_status != Some(InstanceStatus::Orphaned) {
                    self.adopt(&name, AdoptReason::Migration, now, trace);
                }
            }
            AppPayload::Adopted { name, node, .. } => {
                // Any delivered claim for `name` resolves the race this
                // node's own claim (if any) was part of: close its root.
                if let Some(span) = self.claim_traces.remove(&name) {
                    self.recorder.end(span, now.as_micros());
                }
                // Decide by post-application state: did this claim win?
                let won = self
                    .registry
                    .record(&name)
                    .map(|r| r.home == node && r.status == InstanceStatus::Placed)
                    .unwrap_or(false);
                if won {
                    if node == self.id {
                        let already_running = self
                            .mgr
                            .find_by_name(&name)
                            .and_then(|i| self.mgr.instance(i))
                            .map(|i| i.is_running())
                            .unwrap_or(false);
                        if !already_running
                            && !self.pending_adoptions.iter().any(|p| p.name == name)
                        {
                            self.adopt(&name, AdoptReason::Failover, now, trace);
                        }
                    } else if self.mgr.find_by_name(&name).is_some() {
                        // A stale local copy (healed partition / lost
                        // race): the total order says it lives elsewhere.
                        self.drop_local(&name);
                    }
                }
            }
            AppPayload::Draining { node } => {
                if node != self.id {
                    self.draining_peers.insert(node);
                }
            }
            AppPayload::Hello { node, digest } => {
                // Answer a (re)started peer with a per-record delta against
                // its digest, so a silent restart (crash + rejoin under the
                // suspicion timeout) still converges without re-shipping
                // records the peer already holds at the current revision.
                // The lowest-id *other* view member answers; rev-gated
                // merge-import makes duplicates harmless.
                let responder = self
                    .gcs
                    .view()
                    .members
                    .iter()
                    .find(|m| **m != node)
                    .copied();
                if node != self.id && responder == Some(self.id) && !self.registry.is_empty() {
                    let (upserts, removes) = self.registry.export_delta(&digest);
                    let payload_rows = upserts.as_list().map(<[Value]>::len).unwrap_or(0)
                        + removes.as_list().map(<[Value]>::len).unwrap_or(0);
                    if payload_rows > 0 {
                        self.telemetry.add(
                            "registry.delta_bytes",
                            (upserts.encoded_len() + removes.encoded_len()) as u64,
                        );
                        self.order(net, AppPayload::RegistryDelta { upserts, removes });
                    }
                }
            }
            AppPayload::RegistrySync { registry } => {
                // Authoritative snapshot in the total order — the
                // anti-entropy fallback (joiners, healed minorities):
                // everyone merges the same snapshot at the same logical
                // instant, then reconciles local instances against it
                // (partition heal).
                self.registry.import(&registry);
                self.reconcile_with_registry(now);
            }
            AppPayload::RegistryDelta { upserts, removes } => {
                // Ordered per-record delta: same merge semantics as a full
                // sync (rev-gated upserts, rev-equality-guarded removals),
                // applied by every member at the same logical instant.
                self.registry.import_delta(&upserts, &removes);
                self.reconcile_with_registry(now);
            }
            AppPayload::Quarantined { .. } => {
                // Registry bookkeeping only (done in `apply` above): the
                // quarantining node keeps its partially-restored copy
                // installed-but-stopped so the heal re-claim can restart it
                // in place.
            }
            AppPayload::Deployed { .. } | AppPayload::Undeployed { .. } => {}
        }
    }

    /// Destroys a stale local copy (keeping the SAN state — the instance
    /// lives on elsewhere).
    fn drop_local(&mut self, name: &str) {
        if let Some(iid) = self.mgr.find_by_name(name) {
            let _ = self.mgr.stop_instance(iid);
            let _ = self.mgr.destroy_instance(iid, false);
        }
        self.monitor.forget(name);
        self.throttled.remove(name);
        if let Some(a) = &mut self.autonomic {
            a.forget(name);
        }
    }

    /// After importing an authoritative registry snapshot, converge the
    /// local state to it in both directions: local copies the registry
    /// homes elsewhere are stale and dropped; instances the registry homes
    /// *here* but that are not running locally are (re-)adopted from the
    /// SAN. The second direction is what makes merge-time sync storms
    /// self-healing: whatever snapshot ends up last in the total order,
    /// its designated home re-materializes the instance.
    fn reconcile_with_registry(&mut self, now: SimTime) {
        let stale: Vec<String> = self
            .mgr
            .instances()
            .map(|i| i.descriptor.name.clone())
            .filter(|name| {
                // An instance with no record at all is kept: it may be a
                // local deploy whose `Deployed` is still in flight.
                self.registry
                    .record(name)
                    .map(|r| r.home != self.id)
                    .unwrap_or(false)
            })
            .collect();
        for name in stale {
            self.drop_local(&name);
        }
        let missing: Vec<String> = self
            .registry
            .records()
            .filter(|r| {
                r.home == self.id
                    && r.status == InstanceStatus::Placed
                    && !self.probe_local(&r.name)
                    && !self.pending_adoptions.iter().any(|p| p.name == r.name)
            })
            .map(|r| r.name.clone())
            .collect();
        for name in missing {
            self.adopt(&name, AdoptReason::Failover, now, None);
        }
    }

    fn release_instance(
        &mut self,
        name: &str,
        to: NodeId,
        net: &mut impl Fabric<Wire>,
        now: SimTime,
        ctx: Option<TraceContext>,
    ) {
        let Some(iid) = self.mgr.find_by_name(name) else {
            return;
        };
        let now_us = now.as_micros();
        let rel = match ctx {
            Some(c) => self.recorder.child(c, &format!("release/{name}"), now_us),
            None => TraceRef::NONE,
        };
        // Quiesce: stop the instance (in-flight work completes — the sim's
        // stop is synchronous, so this phase costs no simulated time).
        let quiesce = self
            .recorder
            .child_of(rel, &format!("quiesce/{name}"), now_us);
        let _ = self.mgr.stop_instance(iid);
        self.recorder.end(quiesce, now_us);
        // Persist: tear down the local copy, flushing its state to the SAN
        // (kept — the instance lives on at the destination).
        let persist = self
            .recorder
            .child_of(rel, &format!("persist/{name}"), now_us);
        let _ = self.mgr.destroy_instance(iid, false);
        self.recorder.end(persist, now_us);
        self.monitor.forget(name);
        self.throttled.remove(name);
        if let Some(a) = &mut self.autonomic {
            a.forget(name);
        }
        self.events.push(NodeEvent::Released {
            at: now,
            name: name.to_owned(),
            to,
        });
        // Close the release span *before* exporting the context the
        // `Released` order carries: the destination's adopt span then
        // starts strictly Lamport-after the release ended — the invariant
        // trace_check's adopt-before-release detector leans on.
        self.recorder.end(rel, now_us);
        let released_ctx = self.recorder.context(rel);
        self.order_traced(
            net,
            AppPayload::Released {
                name: name.to_owned(),
                to,
            },
            released_ctx,
        );
    }

    /// Queues an adoption: re-materializing an instance costs simulated
    /// time — a SAN read of its persisted state plus a start cost per
    /// bundle. §3.2: *"The cost of this operation is therefore comparable
    /// to a normal startup of the platform, probably less, as we already
    /// have the basic services deployed on the underlying framework."*
    /// A pre-created hot standby (see [`crate::replication`]) skips the
    /// install half and pays only the start cost.
    fn adopt(&mut self, name: &str, reason: AdoptReason, now: SimTime, ctx: Option<TraceContext>) {
        let Some(rec) = self.registry.record(name) else {
            return;
        };
        let descriptor = match InstanceDescriptor::from_value(&rec.descriptor) {
            Ok(d) => d,
            Err(e) => {
                self.events.push(NodeEvent::AdoptFailed {
                    at: now,
                    name: name.to_owned(),
                    error: e,
                });
                return;
            }
        };
        let state_bytes = self
            .store
            .namespace_bytes_prefixed(&descriptor.state_namespace());
        let bundles = descriptor.bundles.len() as u64;
        let standby = self.mgr.find_by_name(name).is_some();
        let cost = if standby {
            // Bundles already installed: pay only the start sweep.
            (self.config.start_cost_per_bundle / 2) * bundles
        } else {
            self.config.san.read_cost(state_bytes) + self.config.start_cost_per_bundle * bundles
        };
        let span = self
            .telemetry
            .span_enter(&format!("core.adopt/{name}"), now.as_micros());
        let trace = match ctx {
            Some(c) => self
                .recorder
                .child(c, &format!("adopt/{name}"), now.as_micros()),
            None => TraceRef::NONE,
        };
        self.pending_adoptions.push(PendingAdoption {
            ready_at: now + cost,
            name: name.to_owned(),
            reason,
            attempt: 0,
            span,
            trace,
        });
    }

    fn process_pending_adoptions(&mut self, net: &mut impl Fabric<Wire>, now: SimTime) {
        let due: Vec<PendingAdoption> = {
            let (ready, rest): (Vec<_>, Vec<_>) = self
                .pending_adoptions
                .drain(..)
                .partition(|p| p.ready_at <= now);
            self.pending_adoptions = rest;
            ready
        };
        for p in due {
            // A queued adoption can be invalidated by messages ordered
            // *after* it was queued: a replayed snapshot may have enqueued
            // it, then a later claim re-homed the instance elsewhere (or an
            // undeploy removed it). Materializing a stale ticket would
            // create a second live copy, so re-check the replicated
            // registry at materialization time and drop tickets the total
            // order has since overruled.
            let still_ours = self
                .registry
                .record(&p.name)
                .map(|r| r.home == self.id && r.status == InstanceStatus::Placed)
                .unwrap_or(false);
            if !still_ours {
                self.telemetry.span_exit(p.span, now.as_micros());
                self.recorder.end(p.trace, now.as_micros());
                self.telemetry.incr("core.adopt.overruled");
                continue;
            }
            let outcome = match self.mgr.find_by_name(&p.name) {
                // Hot standby or a previous partially-restored attempt:
                // already installed, just (re)start it.
                Some(iid) => self.mgr.start_instance(iid).map(|_| iid),
                None => {
                    let Some(rec) = self.registry.record(&p.name) else {
                        self.telemetry.span_exit(p.span, now.as_micros());
                        self.recorder.end(p.trace, now.as_micros());
                        continue;
                    };
                    match InstanceDescriptor::from_value(&rec.descriptor) {
                        Ok(d) => self.mgr.adopt_instance(d),
                        Err(e) => {
                            self.telemetry.span_exit(p.span, now.as_micros());
                            self.recorder.end(p.trace, now.as_micros());
                            self.events.push(NodeEvent::AdoptFailed {
                                at: now,
                                name: p.name,
                                error: e,
                            });
                            continue;
                        }
                    }
                }
            };
            match outcome {
                Ok(iid) => {
                    // Verify the adoption: activator failures during restore
                    // are swallowed into framework events (one bad bundle
                    // must not block the rest), so a transient SAN read
                    // during state recovery leaves autostart bundles dead
                    // while the instance *looks* adopted. Such a partial
                    // re-materialization is a failed adoption: stop it
                    // (keeping it installed — the retry restarts in place,
                    // re-running the activators against the SAN) and go
                    // through the same retry/quarantine discipline.
                    let degraded = self
                        .mgr
                        .instance(iid)
                        .map(|i| !i.framework().degraded_bundles().is_empty())
                        .unwrap_or(false);
                    if degraded {
                        let _ = self.mgr.stop_instance(iid);
                        self.retry_or_quarantine(
                            p,
                            "partial restore: autostart bundles failed to start".to_owned(),
                            true,
                            net,
                            now,
                        );
                    } else {
                        self.telemetry.span_exit(p.span, now.as_micros());
                        self.recorder.end(p.trace, now.as_micros());
                        self.events.push(NodeEvent::Adopted {
                            at: now,
                            name: p.name,
                            reason: p.reason,
                        });
                    }
                }
                Err(e) => {
                    let transient = e.is_transient_store();
                    self.retry_or_quarantine(p, e.to_string(), transient, net, now);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // In-place bundle upgrades (hot swap)
    // ------------------------------------------------------------------

    /// Requests an in-place upgrade of the bundle named by
    /// `manifest.symbolic_name` inside local instance `name`. The swap is
    /// queued for the modeled blackout window — a SAN write of the bundle's
    /// persisted state plus [`NodeConfig::upgrade_swap_cost`] — and lands on
    /// a subsequent tick; the instance keeps serving its *other* bundles
    /// throughout, and the old revision keeps serving until the swap
    /// instant. Completion is observable as [`NodeEvent::BundleUpgraded`].
    ///
    /// Re-requesting while an earlier attempt is still retrying reuses the
    /// open `upgrade/<name>` trace root (the `claim_traces` discipline), so
    /// SAN-faulted upgrades never leak spans.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotPlaced`] when the instance is not running here.
    pub fn request_upgrade(
        &mut self,
        name: &str,
        manifest: BundleManifest,
        now: SimTime,
    ) -> Result<(), CoreError> {
        let Some(iid) = self.mgr.find_by_name(name) else {
            return Err(CoreError::NotPlaced(name.to_owned()));
        };
        let sn = manifest.symbolic_name.to_string();
        let now_us = now.as_micros();
        let key = format!("{name}/{sn}");
        if !self.upgrade_traces.contains_key(&key) {
            let root = self.recorder.root(&format!("upgrade/{name}"), now_us);
            self.upgrade_traces.insert(key, root);
        }
        let span = self
            .telemetry
            .span_enter(&format!("core.upgrade/{name}"), now_us);
        let state_bytes = self
            .mgr
            .instance(iid)
            .map(|i| {
                let ns = i.descriptor.state_namespace();
                self.store
                    .namespace_bytes_prefixed(&format!("{ns}/data/{sn}"))
            })
            .unwrap_or(0);
        let blackout = self.config.san.write_cost(state_bytes) + self.config.upgrade_swap_cost;
        self.pending_upgrades.push(PendingUpgrade {
            ready_at: now + blackout,
            name: name.to_owned(),
            manifest,
            attempt: 0,
            span,
        });
        Ok(())
    }

    /// Number of upgrades still queued (pending or in backoff).
    pub fn pending_upgrades(&self) -> usize {
        self.pending_upgrades.len()
    }

    /// The trace context of the most recent *completed* upgrade of an
    /// instance hosted here — the hook the rolling-upgrade wave uses to
    /// attach its `undrain/` span causally after the new revision's
    /// adoption.
    pub fn upgrade_trace_context(&self, name: &str) -> Option<TraceContext> {
        self.finished_upgrade_traces
            .get(name)
            .and_then(|&root| self.recorder.context(root))
    }

    fn process_pending_upgrades(&mut self, now: SimTime) {
        if self.pending_upgrades.is_empty() {
            return;
        }
        let due: Vec<PendingUpgrade> = {
            let (ready, rest): (Vec<_>, Vec<_>) = self
                .pending_upgrades
                .drain(..)
                .partition(|p| p.ready_at <= now);
            self.pending_upgrades = rest;
            ready
        };
        for p in due {
            let sn = p.manifest.symbolic_name.to_string();
            let key = format!("{}/{}", p.name, sn);
            let now_us = now.as_micros();
            // The instance may have migrated away or crashed between the
            // request and the swap instant: abandon the ticket cleanly.
            let Some(iid) = self.mgr.find_by_name(&p.name) else {
                self.telemetry.span_exit(p.span, now_us);
                if let Some(root) = self.upgrade_traces.remove(&key) {
                    self.recorder.end(root, now_us);
                }
                self.events.push(NodeEvent::UpgradeFailed {
                    at: now,
                    name: p.name,
                    bundle: sn,
                    error: "instance no longer placed here".to_owned(),
                });
                continue;
            };
            let state_bytes = self
                .mgr
                .instance(iid)
                .map(|i| {
                    let ns = i.descriptor.state_namespace();
                    self.store
                        .namespace_bytes_prefixed(&format!("{ns}/data/{sn}"))
                })
                .unwrap_or(0);
            let persist_cost = self.config.san.write_cost(state_bytes);
            let blackout = persist_cost + self.config.upgrade_swap_cost;
            match self.mgr.upgrade_bundle(iid, &sn, p.manifest.clone()) {
                Ok(report) => {
                    // Stamp the handoff phases under the upgrade root with
                    // their modeled µs offsets: quiesce is synchronous,
                    // persist pays the SAN write, the new revision's adopt
                    // starts strictly after persist ends (the ordering
                    // trace_check's upgrade rules pin).
                    let root = self.upgrade_traces.remove(&key).unwrap_or(TraceRef::NONE);
                    let q = self
                        .recorder
                        .child_of(root, &format!("u_quiesce/{sn}"), now_us);
                    self.recorder.end(q, now_us);
                    let persist_end = now_us + persist_cost.as_micros();
                    let pr = self
                        .recorder
                        .child_of(root, &format!("u_persist/{sn}"), now_us);
                    self.recorder.end(pr, persist_end);
                    let adopt_end = now_us + blackout.as_micros();
                    let a = self
                        .recorder
                        .child_of(root, &format!("u_adopt/{sn}"), persist_end);
                    self.recorder.end(a, adopt_end);
                    self.recorder.end(root, adopt_end);
                    self.finished_upgrade_traces.insert(p.name.clone(), root);
                    self.telemetry.span_exit(p.span, now_us);
                    self.telemetry.incr("core.upgrade.completed");
                    self.telemetry
                        .record("core.upgrade.blackout_us", blackout.as_micros());
                    self.events.push(NodeEvent::BundleUpgraded {
                        at: now,
                        name: p.name,
                        bundle: sn,
                        from: report.from,
                        to: report.to,
                        blackout,
                    });
                }
                Err(e) => {
                    let failures = p.attempt + 1;
                    if e.is_transient_store() && !self.config.retry.exhausted(failures) {
                        // The framework rolled the old revision back; it
                        // keeps serving during the backoff. The upgrade
                        // root stays OPEN in `upgrade_traces` — the retry
                        // continues the same trace instead of minting (and
                        // leaking) a new root per attempt.
                        let backoff = self.config.retry.backoff(p.attempt);
                        self.telemetry.incr("core.upgrade.retries");
                        self.events.push(NodeEvent::UpgradeRetried {
                            at: now,
                            name: p.name.clone(),
                            bundle: sn,
                            attempt: p.attempt,
                            error: e.to_string(),
                        });
                        self.pending_upgrades.push(PendingUpgrade {
                            ready_at: now + backoff,
                            attempt: failures,
                            ..p
                        });
                    } else {
                        self.telemetry.span_exit(p.span, now_us);
                        if let Some(root) = self.upgrade_traces.remove(&key) {
                            self.recorder.end(root, now_us);
                        }
                        self.telemetry.incr("core.upgrade.failed");
                        self.events.push(NodeEvent::UpgradeFailed {
                            at: now,
                            name: p.name,
                            bundle: sn,
                            error: e.to_string(),
                        });
                    }
                }
            }
        }
    }

    /// A materialization attempt failed. Transient failures are retried
    /// with exponential backoff + jitter on the simulated clock until the
    /// [`RetryPolicy`](dosgi_san::RetryPolicy) is exhausted, at which point
    /// the instance is **quarantined** — announced cluster-wide so every
    /// registry marks it down-but-owned — rather than panicking the node or
    /// flapping forever. Non-transient failures (corrupt snapshot, unknown
    /// bundle) surface immediately as `AdoptFailed`.
    fn retry_or_quarantine(
        &mut self,
        p: PendingAdoption,
        error: String,
        transient: bool,
        net: &mut impl Fabric<Wire>,
        now: SimTime,
    ) {
        if !transient {
            self.telemetry.span_exit(p.span, now.as_micros());
            self.recorder.end(p.trace, now.as_micros());
            self.events.push(NodeEvent::AdoptFailed {
                at: now,
                name: p.name,
                error,
            });
            return;
        }
        let failures = p.attempt + 1;
        if self.config.retry.exhausted(failures) {
            self.telemetry.span_exit(p.span, now.as_micros());
            self.telemetry.incr("san.quarantines");
            self.events.push(NodeEvent::Quarantined {
                at: now,
                name: p.name.clone(),
            });
            // The quarantine announcement continues the adoption's trace:
            // the eventual heal re-claim starts a new root, but this stamps
            // where the causal chain ended.
            let ctx = self.recorder.context(p.trace);
            self.recorder.end(p.trace, now.as_micros());
            self.order_traced(
                net,
                AppPayload::Quarantined {
                    name: p.name,
                    node: self.id,
                },
                ctx,
            );
            return;
        }
        let backoff = self.config.retry.backoff(p.attempt);
        self.telemetry.incr("san.retries");
        self.telemetry
            .record("san.retry.backoff_us", backoff.as_micros());
        self.events.push(NodeEvent::AdoptRetried {
            at: now,
            name: p.name.clone(),
            attempt: p.attempt,
            error,
        });
        self.pending_adoptions.push(PendingAdoption {
            ready_at: now + backoff,
            name: p.name,
            reason: p.reason,
            attempt: failures,
            span: p.span,
            trace: p.trace,
        });
    }

    // ------------------------------------------------------------------
    // Monitoring + autonomic
    // ------------------------------------------------------------------

    fn sample(&mut self, now: SimTime) {
        let due = self
            .last_sample
            .map(|at| now.since(at) >= self.config.sample_interval)
            .unwrap_or(true);
        if !due {
            return;
        }
        self.last_sample = Some(now);
        let usages: Vec<(String, dosgi_osgi::UsageSnapshot)> = self
            .mgr
            .instances()
            .map(|i| (i.descriptor.name.clone(), i.usage()))
            .collect();
        for (name, usage) in usages {
            // Bridge the monitor's windowed series into the telemetry
            // registry as per-instance gauges. Integer-scaled from the raw
            // window counters (never through the f64 series) so snapshot
            // bytes stay deterministic: CPU share in per-mille of one core,
            // call rate in milli-calls per second.
            if let Some(w) = self.monitor.record(&name, now, usage) {
                let window_us = w.window.as_micros().max(1);
                let cpu_pm = w.cpu.as_micros().saturating_mul(1000) / window_us;
                let call_mcps = w.calls.saturating_mul(1_000_000_000) / window_us;
                self.telemetry
                    .gauge_set(&format!("monitor.{name}.cpu_share_pm"), cpu_pm as i64);
                self.telemetry
                    .gauge_set(&format!("monitor.{name}.memory_bytes"), w.memory as i64);
                self.telemetry
                    .gauge_set(&format!("monitor.{name}.call_rate_mcps"), call_mcps as i64);
            }
        }
    }

    fn run_autonomic(&mut self, net: &mut impl Fabric<Wire>, now: SimTime) {
        let Some(autonomic) = &mut self.autonomic else {
            return;
        };
        if !autonomic.due(now) || self.state != NodeState::Running {
            return;
        }
        let quotas: BTreeMap<String, ResourceQuota> = self
            .mgr
            .instances()
            .map(|i| (i.descriptor.name.clone(), i.descriptor.quota))
            .collect();
        let view = self.gcs.view();
        let node_count = view.members.len();
        let node_rank = view.members.iter().position(|m| *m == self.id).unwrap_or(0);
        let decisions = autonomic.evaluate(
            now,
            &self.monitor,
            &quotas,
            &self.config.capacity,
            node_count,
            node_rank,
        );
        for decision in decisions {
            self.events.push(NodeEvent::PolicyFired {
                at: now,
                decision: decision.clone(),
            });
            self.execute(decision.action, net, now);
        }
    }

    fn execute(&mut self, action: PolicyAction, net: &mut impl Fabric<Wire>, now: SimTime) {
        match action {
            PolicyAction::Migrate { subject } => {
                let candidates = self.placement_candidates();
                if let Some(dest) = self.config.placement.choose(
                    &subject,
                    &candidates,
                    &self.registry,
                    &BTreeMap::new(),
                ) {
                    let _ = self.migrate_away(&subject, dest, net);
                }
            }
            PolicyAction::Stop { subject } => {
                if let Some(iid) = self.mgr.find_by_name(&subject) {
                    let _ = self.mgr.stop_instance(iid);
                }
            }
            PolicyAction::Restart { subject } => {
                if let Some(iid) = self.mgr.find_by_name(&subject) {
                    let _ = self.mgr.stop_instance(iid);
                    let _ = self.mgr.start_instance(iid);
                }
            }
            PolicyAction::Throttle { subject } => {
                self.throttled.insert(subject);
            }
            PolicyAction::HibernateNode => {
                // Announce the drain so peers stop placing instances here,
                // migrate everything away, then hibernate once empty AND
                // once every pending ordered message has been sequenced
                // (check_drained gates on both).
                self.hibernate_when_empty = true;
                let root = self.recorder.root("hibernate", now.as_micros());
                self.lifecycle_trace = root;
                let ctx = self.recorder.context(root);
                self.order_traced(net, AppPayload::Draining { node: self.id }, ctx);
                self.migrate_all_local(net, root);
            }
            PolicyAction::Custom { name, .. } if name == "migrate_all" => {
                self.migrate_all_local(net, TraceRef::NONE);
            }
            PolicyAction::WakeNode
            | PolicyAction::ScaleOut
            | PolicyAction::ShedClass { .. }
            | PolicyAction::UpgradeWave
            | PolicyAction::Alert { .. }
            | PolicyAction::Custom { .. } => {
                // Alerts are visible through the PolicyFired event; wake,
                // scale-out, class shedding and upgrade waves are
                // cluster-level operations (the driver reacts — e.g. E15
                // wakes a standby replica or flips the admission layer's
                // shed switch, E14 starts a rolling `UpgradeWave`).
            }
        }
    }

    fn hibernate(&mut self, net: &mut impl Fabric<Wire>, now: SimTime) {
        let mut t = FabricTransport::new(net, self.id);
        self.gcs.leave(&mut t);
        self.state = NodeState::Hibernated;
        self.recorder.end(self.lifecycle_trace, now.as_micros());
        self.lifecycle_trace = TraceRef::NONE;
        self.events.push(NodeEvent::Hibernated { at: now });
    }

    fn check_drained(&mut self, net: &mut impl Fabric<Wire>, now: SimTime) {
        // Leaving before our last control messages (Released!) are
        // sequenced would strand the instances we just handed off.
        let flushed = self.gcs.pending_orders() == 0;
        if self.state == NodeState::Draining && self.mgr.is_empty() && flushed {
            let mut t = FabricTransport::new(net, self.id);
            self.gcs.leave(&mut t);
            self.state = NodeState::Stopped;
            self.recorder.end(self.lifecycle_trace, now.as_micros());
            self.lifecycle_trace = TraceRef::NONE;
            self.events.push(NodeEvent::Drained { at: now });
        }
        if self.hibernate_when_empty
            && self.mgr.is_empty()
            && flushed
            && self.state == NodeState::Running
        {
            self.hibernate_when_empty = false;
            self.hibernate(net, now);
        }
    }
}
