//! # dosgi-core — the Dependable Distributed OSGi Environment
//!
//! This crate is the paper's contribution assembled from the substrate
//! crates: a cluster of nodes, each hosting an OSGi framework with an
//! Instance Manager for per-customer **virtual OSGi instances**
//! (`dosgi-vosgi`), connected by a group communication system
//! (`dosgi-gcs`) over a simulated network (`dosgi-net`), sharing a SAN
//! (`dosgi-san`), observed by a Monitoring Module (`dosgi-monitor`) and
//! governed by an Autonomic Module running policy scripts
//! (`dosgi-policy`), with service localization via virtual IPs and ipvs
//! (`dosgi-ipvs`).
//!
//! The paper's four goals map onto this crate as follows:
//!
//! 1. *Safely run multiple customers* — [`DosgiNode`] wraps an
//!    [`InstanceManager`](dosgi_vosgi::InstanceManager) per node;
//! 2. *Migrate customers between nodes* — the [`migration`] module:
//!    graceful migration via totally-ordered hand-off messages, and
//!    decentralized failover on view changes (every survivor derives the
//!    same deterministic placement, so no coordinator is needed);
//! 3. *Measure resource usage of each customer* — per-node
//!    [`MonitoringModule`](dosgi_monitor::MonitoringModule) fed by the
//!    frameworks' usage ledgers;
//! 4. *Enforce SLA requirements based on business policies* — the
//!    [`autonomic`] module evaluates policy scripts against the monitoring
//!    blackboard and executes the resulting actions (stop / throttle /
//!    migrate / consolidate).
//!
//! The [`DosgiCluster`] type is the experiment driver: deterministic,
//! seeded, with crash/partition/shutdown injection and service-availability
//! probes — every figure-level experiment in `EXPERIMENTS.md` runs on it.
//!
//! # Quickstart
//!
//! ```
//! use dosgi_core::{ClusterConfig, DosgiCluster, workloads};
//! use dosgi_net::SimDuration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cluster = DosgiCluster::new(3, ClusterConfig::default(), 42);
//! cluster.deploy(workloads::web_instance("acme", "acme-web"), 0)?;
//! cluster.run_for(SimDuration::from_secs(2));
//! assert!(cluster.probe("acme-web"), "instance serving");
//!
//! // Crash the hosting node: the survivors redeploy the instance.
//! cluster.crash_node(0);
//! cluster.run_for(SimDuration::from_secs(3));
//! assert!(cluster.probe("acme-web"), "failed over");
//! # Ok(())
//! # }
//! ```

pub mod autonomic;
pub mod chaos;
mod cluster;
mod error;
mod events;
pub mod loadgen;
pub mod migration;
mod msg;
mod node;
mod placement;
mod registry;
pub mod replication;
pub mod rt;
mod sla;
pub mod upgrade;
pub mod workloads;

pub use chaos::{run_nemesis, ChaosOptions, ChaosReport};
pub use cluster::{ClusterConfig, DosgiCluster};
pub use error::CoreError;
pub use events::{AdoptReason, NodeEvent};
pub use msg::AppPayload;
pub use node::{DosgiNode, NodeConfig, NodeState};
pub use placement::PlacementPolicy;
pub use registry::{ClusterRegistry, InstanceRecord, InstanceStatus};
pub use rt::RealCluster;
pub use sla::{SlaSpec, SlaTracker};
pub use upgrade::{NoTrafficHooks, UpgradeWave, WaveHooks, WaveReport, WaveUpgrade};
