//! The deterministic chaos (nemesis) harness.
//!
//! [`dosgi_testkit::nemesis`] generates seeded fault schedules — node
//! crashes, minority partitions, SAN brown-outs/flakiness, message loss —
//! as pure data; this module **applies** them to a [`DosgiCluster`] while a
//! client workload drives write-through counters, and checks the
//! dependability invariants the paper's protocol promises:
//!
//! 1. **At most one live adoption** — no instance is ever *running* on two
//!    nodes at once (checked whenever the network has been undisturbed long
//!    enough for the total order to reconverge; during a partition a stale
//!    minority copy may legitimately linger until heal-time reconciliation).
//! 2. **Write-through state is never lost** — the SAN's durable counter is
//!    always ≥ the highest value a client saw acknowledged (increments
//!    acknowledged through a partitioned minority are excluded: a split
//!    brain may serve them from a copy that heal-time reconciliation
//!    discards — the client-visible contract the protocol actually makes).
//! 3. **Convergence after heal** — once every fault is healed and the
//!    schedule's quiet tail has passed, all replicated registries are
//!    byte-identical, every instance is `Placed` and serving, and no
//!    quarantine is left standing (the SAN healed, so quarantined
//!    instances must have re-materialized).
//!
//! Every run is deterministic in its seed: same seed, same schedule, same
//! violations, same [`ChaosReport::fingerprint`]. A failing run prints its
//! seed; replaying it reproduces the failure exactly.

use crate::registry::InstanceStatus;
use crate::upgrade::{NoTrafficHooks, UpgradeWave, WaveReport};
use crate::workloads;
use crate::{ClusterConfig, CoreError, DosgiCluster};
use dosgi_net::{LinkConfig, NodeId, Partition, SimDuration, SimTime};
use dosgi_san::{BackendKind, FaultPlan, Value};
use dosgi_telemetry::{Telemetry, TraceLog};
use dosgi_testkit::mix_seed;
use dosgi_testkit::nemesis::{NemesisOp, NemesisPlan};
use std::collections::BTreeMap;

/// Workload knobs for a nemesis run (the schedule itself comes from a
/// [`NemesisPlan`]).
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// How many write-through counter instances to deploy (round-robin).
    pub instances: usize,
    /// How often the client attempts one `incr` per instance.
    pub client_period: SimDuration,
    /// How long after a network disturbance (partition / message loss)
    /// ends before order-sensitive invariants are enforced again.
    pub settle: SimDuration,
    /// SAN storage backend for the run. Conformant backends may not change
    /// any observable outcome, so reports (and fingerprints) must be
    /// byte-identical across this knob — the chaos sweep enforces that on
    /// every seed.
    pub backend: BackendKind,
    /// When set, a rolling [`UpgradeWave`] (counter bundle → 1.1.0, every
    /// node in order, [`NoTrafficHooks`]) starts this many µs after the
    /// schedule's t0 — hot-swap under nemesis fire. The wave must never
    /// break an invariant, and its outcome folds into the fingerprint so
    /// the telemetry-passivity and backend-conformance sweeps cover it too.
    pub upgrade_wave_at_us: Option<u64>,
    /// When set, the run enables continuous observability
    /// ([`DosgiCluster::enable_observability`] with the default scrape
    /// cadence and SLO set): time-series collection plus burn-rate
    /// alerting driven from the step loop. The scraper is strictly
    /// passive — it must never touch the fault-injector RNG stream — so
    /// the report (and fingerprint) must be byte-identical with this on
    /// or off; the chaos sweep enforces that on every seed and backend.
    pub series: bool,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            instances: 3,
            client_period: SimDuration::from_millis(100),
            settle: SimDuration::from_secs(6),
            backend: BackendKind::Map,
            upgrade_wave_at_us: None,
            series: false,
        }
    }
}

/// The outcome of one nemesis run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The schedule's seed (replay key).
    pub seed: u64,
    /// Fingerprint of the generated schedule.
    pub plan_fingerprint: u64,
    /// Nemesis operations actually applied.
    pub steps_applied: usize,
    /// Total client increments acknowledged (across instances).
    pub acked: u64,
    /// The durable floor per instance: the highest acknowledged counter
    /// value the SAN must never fall below.
    pub floors: BTreeMap<String, i64>,
    /// Invariant violations, in detection order. Empty means the run held
    /// every promise.
    pub violations: Vec<String>,
    /// Fingerprint of the run's observable end state (registry bytes, SAN
    /// counters, ack counts, violations). Two runs of the same seed must
    /// produce the same value — the "replays byte-identically" check.
    /// Deliberately excludes the trace: equal fingerprints across traced
    /// and untraced replays are the passivity proof.
    pub fingerprint: u64,
    /// The merged cluster-wide causal trace (empty when the run was
    /// uninstrumented). Export with [`TraceLog::to_chrome_json`]; analyze
    /// with the `trace_check` bin.
    pub trace: TraceLog,
    /// The rolling upgrade wave's outcome, when
    /// [`ChaosOptions::upgrade_wave_at_us`] armed one.
    pub wave: Option<WaveReport>,
}

impl ChaosReport {
    /// True when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Applies `plan` to a fresh cluster and returns the invariant report.
/// Deterministic in `(plan, opts)`.
pub fn run_nemesis(plan: &NemesisPlan, opts: &ChaosOptions) -> ChaosReport {
    run_nemesis_with_telemetry(plan, opts, Telemetry::new())
}

/// Like [`run_nemesis`] but with an explicit telemetry handle. Telemetry is
/// strictly passive: the report (and its fingerprint) is identical whether
/// the handle is enabled, disabled, or shared with other runs — the
/// property the chaos sweep verifies on every seed. The caller keeps a
/// clone of the handle to snapshot the run's metrics afterwards.
pub fn run_nemesis_with_telemetry(
    plan: &NemesisPlan,
    opts: &ChaosOptions,
    telemetry: Telemetry,
) -> ChaosReport {
    let config = ClusterConfig {
        backend: opts.backend,
        ..ClusterConfig::default()
    };
    let default_link = config.link;
    let mut cluster = DosgiCluster::new_with_telemetry(
        plan.nodes.max(1),
        config,
        mix_seed(plan.seed, 0xC1A0_5EED),
        telemetry,
    );
    if opts.series {
        cluster.enable_observability(
            dosgi_telemetry::ScrapeConfig::default(),
            DosgiCluster::default_slos(),
        );
    }
    let mut violations: Vec<String> = Vec::new();

    // Boot, deploy the workload, let placement commit everywhere.
    cluster.run_for(SimDuration::from_millis(500));
    let names: Vec<String> = (0..opts.instances.max(1))
        .map(|i| format!("ctr-{i}"))
        .collect();
    for (i, name) in names.iter().enumerate() {
        let d = workloads::counter_instance_with("chaos", name, workloads::COUNTER_WRITE_THROUGH);
        if let Err(e) = cluster.deploy(d, i % plan.nodes.max(1)) {
            violations.push(format!("setup: deploy {name} failed: {e}"));
        }
    }
    cluster.run_for(SimDuration::from_millis(500));

    // The schedule runs relative to t0 (post-setup).
    let t0 = cluster.now();
    let horizon = t0 + SimDuration::from_micros(plan.horizon_us);
    let mut next_op = 0usize;
    let mut steps_applied = 0usize;
    let mut partitioned = false;
    let mut lossy = false;
    let mut disturbed_until = t0; // settle clock after partition/loss heals
    let mut floors: BTreeMap<String, i64> = names.iter().map(|n| (n.clone(), 0)).collect();
    let mut acked = 0u64;
    let mut next_call = t0;
    let wave_start = opts
        .upgrade_wave_at_us
        .map(|at| t0 + SimDuration::from_micros(at));
    let mut wave: Option<UpgradeWave> = None;
    let mut wave_hooks = NoTrafficHooks;

    while cluster.now() < horizon {
        // Apply every nemesis op that has come due.
        while next_op < plan.steps.len()
            && t0 + SimDuration::from_micros(plan.steps[next_op].at_us) <= cluster.now()
        {
            let op = &plan.steps[next_op].op;
            apply_op(
                &mut cluster,
                op,
                plan,
                next_op,
                horizon,
                &mut partitioned,
                &mut lossy,
                &mut disturbed_until,
                opts.settle,
                default_link,
            );
            next_op += 1;
            steps_applied += 1;
        }
        cluster.step();
        let now = cluster.now();
        let undisturbed = !partitioned && !lossy && now >= disturbed_until;

        // The rolling upgrade wave, stepped in lock-step with the nemesis
        // so it can be hit mid-flight by crashes, partitions and SAN faults.
        if let Some(start) = wave_start {
            if wave.is_none() && now >= start {
                wave = Some(UpgradeWave::new(
                    workloads::counter_manifest_at(
                        workloads::COUNTER_WRITE_THROUGH,
                        dosgi_osgi::Version::new(1, 1, 0),
                    ),
                    (0..plan.nodes.max(1)).collect(),
                    SimDuration::from_secs(8),
                ));
            }
        }
        if let Some(w) = wave.as_mut() {
            if !w.is_done() {
                let events = cluster.take_events();
                w.step(&mut cluster, &events, &mut wave_hooks);
            }
        }

        // Client workload: one increment per instance per period.
        if now >= next_call {
            next_call = now + opts.client_period;
            for name in &names {
                match cluster.call(name, workloads::COUNTER_SERVICE, "incr", &Value::Null) {
                    Ok(v) => {
                        acked += 1;
                        if undisturbed {
                            if let Some(n) = v.as_int() {
                                let f = floors.get_mut(name).expect("floors pre-seeded");
                                *f = (*f).max(n);
                            }
                        }
                    }
                    // Downtime / throttling / transient store refusals are
                    // the SLA tracker's business, not an invariant's.
                    Err(
                        CoreError::NotPlaced(_)
                        | CoreError::Throttled(_)
                        | CoreError::NodeUnavailable(_)
                        | CoreError::Vosgi(_),
                    ) => {}
                    Err(e) => violations.push(format!(
                        "[{now:?}] client incr on {name}: unexpected error {e}"
                    )),
                }
            }
        }

        check_durability(&cluster, &names, &floors, now, &mut violations);
        if undisturbed {
            check_single_copy(&cluster, &names, now, &mut violations);
        }
        if violations.len() > 32 {
            break; // a broken run floods; keep the report readable
        }
    }

    // Convergence: by horizon the schedule guarantees a healed, quiet tail.
    check_convergence(&cluster, &names, &floors, &mut violations);
    // Publish the end-state gauges so a caller-held telemetry handle can be
    // snapshotted right after the run.
    cluster.record_telemetry_gauges();

    let wave_report = wave.map(UpgradeWave::into_report);

    let mut h = mix_seed(plan.fingerprint(), acked);
    if let Some(w) = &wave_report {
        h = mix_seed(h, w.upgraded.len() as u64);
        h = mix_seed(h, w.failed.len() as u64);
        for s in &w.skipped_nodes {
            h = mix_seed(h, *s as u64);
        }
        for u in &w.upgraded {
            for b in u.instance.as_bytes() {
                h = mix_seed(h, *b as u64);
            }
            h = mix_seed(h, u.node as u64);
        }
    }
    for name in &names {
        h = mix_seed(h, floors[name] as u64);
        h = mix_seed(h, san_count(&cluster, name).unwrap_or(-1) as u64);
    }
    if let Some(reg) = cluster
        .running_nodes()
        .first()
        .and_then(|i| cluster.node(*i))
        .map(|n| n.registry().export().encode())
    {
        for b in reg {
            h = mix_seed(h, b as u64);
        }
    }
    for v in &violations {
        for b in v.as_bytes() {
            h = mix_seed(h, *b as u64);
        }
    }
    ChaosReport {
        seed: plan.seed,
        plan_fingerprint: plan.fingerprint(),
        steps_applied,
        acked,
        floors,
        violations,
        fingerprint: h,
        trace: cluster.trace_log(),
        wave: wave_report,
    }
}

#[allow(clippy::too_many_arguments)] // plain plumbing, local to the driver
fn apply_op(
    cluster: &mut DosgiCluster,
    op: &NemesisOp,
    plan: &NemesisPlan,
    op_index: usize,
    horizon: SimTime,
    partitioned: &mut bool,
    lossy: &mut bool,
    disturbed_until: &mut SimTime,
    settle: SimDuration,
    default_link: LinkConfig,
) {
    let now = cluster.now();
    match op {
        NemesisOp::CrashNode { node } => cluster.crash_node(*node),
        NemesisOp::RestartNode { node } => cluster.restart_node(*node),
        NemesisOp::Partition { minority } => {
            let minority_ids: Vec<NodeId> = minority.iter().map(|n| NodeId(*n as u32)).collect();
            let rest: Vec<NodeId> = (0..plan.nodes)
                .filter(|n| !minority.contains(n))
                .map(|n| NodeId(n as u32))
                .collect();
            cluster.partition(Partition::split([minority_ids, rest]));
            *partitioned = true;
        }
        NemesisOp::HealPartition => {
            cluster.heal();
            *partitioned = false;
            *disturbed_until = now + settle;
        }
        NemesisOp::SanBrownout => {
            // The heal is its own schedule step; arm a window that outlasts
            // the run and rely on `SanHeal` to lift it.
            cluster.set_fault_plan(
                FaultPlan::none().with_brownout(now, horizon + SimDuration::from_secs(3600)),
            );
        }
        NemesisOp::SanFlaky { error_rate } => {
            cluster.set_fault_plan(FaultPlan::flaky(
                *error_rate,
                mix_seed(plan.seed, op_index as u64),
            ));
        }
        NemesisOp::SanHeal => cluster.clear_faults(),
        NemesisOp::MessageLoss { rate } => {
            set_all_links(cluster, plan.nodes, LinkConfig::lossy(*rate));
            *lossy = true;
        }
        NemesisOp::MessageLossOff => {
            set_all_links(cluster, plan.nodes, default_link);
            *lossy = false;
            *disturbed_until = now + settle;
        }
    }
}

fn set_all_links(cluster: &mut DosgiCluster, nodes: usize, cfg: LinkConfig) {
    for a in 0..nodes {
        for b in 0..nodes {
            if a != b {
                cluster
                    .net_mut()
                    .set_link(NodeId(a as u32), NodeId(b as u32), cfg);
            }
        }
    }
}

/// The durable counter value the SAN holds for `name`, via the fault-free
/// diagnostic read (works during brown-outs — the checker is omniscient).
fn san_count(cluster: &DosgiCluster, name: &str) -> Option<i64> {
    cluster
        .store()
        .peek(
            &format!("instance/{name}/data/{}", workloads::COUNTER_WRITE_THROUGH),
            "count",
        )
        .and_then(|v| v.as_int())
}

/// Invariant 2: the SAN never holds less than the acknowledged floor.
fn check_durability(
    cluster: &DosgiCluster,
    names: &[String],
    floors: &BTreeMap<String, i64>,
    now: SimTime,
    violations: &mut Vec<String>,
) {
    for name in names {
        let floor = floors[name];
        if floor == 0 {
            continue;
        }
        let durable = san_count(cluster, name).unwrap_or(0);
        if durable < floor {
            violations.push(format!(
                "[{now:?}] durability: {name} SAN count {durable} < acked floor {floor}"
            ));
        }
    }
}

/// Invariant 1: at most one node runs a live copy of each instance.
fn check_single_copy(
    cluster: &DosgiCluster,
    names: &[String],
    now: SimTime,
    violations: &mut Vec<String>,
) {
    for name in names {
        let live: Vec<usize> = (0..cluster.len())
            .filter(|i| {
                cluster
                    .node(*i)
                    .map(|n| n.probe_local(name))
                    .unwrap_or(false)
            })
            .collect();
        if live.len() > 1 {
            violations.push(format!(
                "[{now:?}] duplicate adoption: {name} live on nodes {live:?}"
            ));
        }
    }
}

/// Invariant 3: after the healed quiet tail, everything has reconverged.
fn check_convergence(
    cluster: &DosgiCluster,
    names: &[String],
    floors: &BTreeMap<String, i64>,
    violations: &mut Vec<String>,
) {
    let now = cluster.now();
    let running = cluster.running_nodes();
    if running.is_empty() {
        violations.push(format!(
            "[{now:?}] convergence: no running nodes at horizon"
        ));
        return;
    }
    let exports: Vec<Vec<u8>> = running
        .iter()
        .filter_map(|i| cluster.node(*i))
        .map(|n| n.registry().export().encode())
        .collect();
    if exports.windows(2).any(|w| w[0] != w[1]) {
        violations.push(format!(
            "[{now:?}] convergence: registries diverge across running nodes {running:?}"
        ));
    }
    for name in names {
        let rec = cluster
            .running_nodes()
            .first()
            .and_then(|i| cluster.node(*i))
            .and_then(|n| n.registry().record(name).cloned());
        match rec {
            Some(r) if r.status == InstanceStatus::Placed => {}
            Some(r) => violations.push(format!(
                "[{now:?}] convergence: {name} ended {:?}, not Placed",
                r.status
            )),
            None => violations.push(format!(
                "[{now:?}] convergence: {name} missing from the registry"
            )),
        }
        if !cluster.probe(name) {
            violations.push(format!(
                "[{now:?}] convergence: {name} not serving at horizon"
            ));
        }
    }
    check_durability(cluster, names, floors, now, violations);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosgi_testkit::nemesis::NemesisConfig;

    fn quick_config() -> NemesisConfig {
        NemesisConfig {
            faults: 3,
            horizon_us: 30_000_000,
            heal_tail_us: 12_000_000,
            start_us: 1_000_000,
            min_gap_us: 1_000_000,
            duration_us: (500_000, 2_500_000),
            ..NemesisConfig::default()
        }
    }

    #[test]
    fn quiet_schedule_has_no_violations_and_replays_identically() {
        let plan = NemesisPlan::generate(11, 3, &NemesisConfig::none());
        let opts = ChaosOptions::default();
        let a = run_nemesis(&plan, &opts);
        assert!(a.ok(), "violations: {:?}", a.violations);
        assert!(a.acked > 0, "client made progress");
        let b = run_nemesis(&plan, &opts);
        assert_eq!(a.fingerprint, b.fingerprint, "deterministic replay");
    }

    #[test]
    fn crash_schedule_holds_invariants() {
        let cfg = NemesisConfig {
            partition: false,
            brownout: false,
            flaky: false,
            msg_loss: false,
            ..quick_config()
        };
        let plan = NemesisPlan::generate(3, 3, &cfg);
        assert!(
            plan.steps
                .iter()
                .any(|s| matches!(s.op, NemesisOp::CrashNode { .. })),
            "schedule exercises crashes"
        );
        let report = run_nemesis(&plan, &ChaosOptions::default());
        assert!(report.ok(), "violations: {:?}", report.violations);
    }

    /// The issue's acceptance run: a seeded nemesis schedule injecting SAN
    /// faults at a 10% error rate over a 5-node cluster completes with
    /// zero invariant violations and replays byte-identically.
    #[test]
    fn five_node_ten_percent_san_faults_clean_and_replayable() {
        use dosgi_testkit::nemesis::NemesisStep;
        let plan = NemesisPlan {
            seed: 0xD0561,
            nodes: 5,
            horizon_us: 30_000_000,
            steps: vec![
                NemesisStep {
                    at_us: 2_000_000,
                    op: NemesisOp::SanFlaky { error_rate: 0.10 },
                },
                NemesisStep {
                    at_us: 8_000_000,
                    op: NemesisOp::SanHeal,
                },
                NemesisStep {
                    at_us: 11_000_000,
                    op: NemesisOp::SanFlaky { error_rate: 0.10 },
                },
                NemesisStep {
                    at_us: 16_000_000,
                    op: NemesisOp::SanHeal,
                },
            ],
        };
        let opts = ChaosOptions::default();
        let a = run_nemesis(&plan, &opts);
        assert!(a.ok(), "violations: {:?}", a.violations);
        assert!(a.acked > 0, "clients made progress through the flakiness");
        assert_eq!(a.steps_applied, 4);
        let b = run_nemesis(&plan, &opts);
        assert_eq!(a.fingerprint, b.fingerprint, "byte-identical replay");
        assert_eq!(a.acked, b.acked);
        assert_eq!(a.floors, b.floors);
    }

    #[test]
    fn mixed_fault_schedule_holds_invariants() {
        let plan = NemesisPlan::generate(17, 5, &quick_config());
        assert!(!plan.steps.is_empty());
        let report = run_nemesis(&plan, &ChaosOptions::default());
        assert!(report.ok(), "violations: {:?}", report.violations);
    }

    /// Regression: this exact schedule (crash + restart, then a partition
    /// healed while a brown-out is live) once left the rejoining minority
    /// with diverged registry revisions. The merge re-ran the majority
    /// sequencer's full ordered history on the minority — on top of the
    /// snapshot it had just imported — because the view proposer stamped
    /// `stream_base` from its own counter while a *different* node was the
    /// merged view's coordinator. The coordinator-elect now reports its
    /// stream position in its `ViewAck`, so joiners skip history they
    /// already hold via state transfer.
    #[test]
    fn healed_partition_does_not_replay_history_onto_imported_state() {
        let plan = NemesisPlan::generate(7, 5, &NemesisConfig::default());
        let report = run_nemesis(&plan, &ChaosOptions::default());
        assert!(report.ok(), "violations: {:?}", report.violations);
    }

    /// Telemetry must be strictly passive: the same seed-7 schedule
    /// produces a byte-identical fingerprint whether instrumentation is on
    /// or off, and two instrumented replays serialize to the same snapshot
    /// byte for byte.
    #[test]
    fn seed_seven_fingerprint_is_unchanged_by_telemetry() {
        let plan = NemesisPlan::generate(7, 5, &NemesisConfig::default());
        let opts = ChaosOptions::default();

        let on = Telemetry::new();
        let a = run_nemesis_with_telemetry(&plan, &opts, on.clone());
        let b = run_nemesis_with_telemetry(&plan, &opts, Telemetry::disabled());
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "telemetry changed the run's observable behaviour"
        );
        assert_eq!(a.acked, b.acked);
        assert_eq!(a.floors, b.floors);
        assert_eq!(a.violations, b.violations);
        assert!(
            on.counter("san.ops") > 0,
            "the instrumented run actually recorded metrics"
        );

        let on2 = Telemetry::new();
        let c = run_nemesis_with_telemetry(&plan, &opts, on2.clone());
        assert_eq!(a.fingerprint, c.fingerprint);
        assert_eq!(
            on.snapshot("chaos_seed7", plan.seed).to_json(),
            on2.snapshot("chaos_seed7", plan.seed).to_json(),
            "two instrumented replays must snapshot identically"
        );
    }

    /// Series collection and SLO evaluation must be as passive as the
    /// rest of telemetry: the same schedule fingerprints identically
    /// with the scraper on or off, two scraping replays serialize the
    /// same snapshot bytes, and the scraper demonstrably collected.
    #[test]
    fn seed_seven_fingerprint_is_unchanged_by_series_collection() {
        let plan = NemesisPlan::generate(7, 5, &NemesisConfig::default());
        let base = run_nemesis(&plan, &ChaosOptions::default());
        let opts = ChaosOptions {
            series: true,
            ..ChaosOptions::default()
        };
        let on = Telemetry::new();
        let a = run_nemesis_with_telemetry(&plan, &opts, on.clone());
        assert_eq!(
            a.fingerprint, base.fingerprint,
            "series collection changed the run's observable behaviour"
        );
        assert_eq!(a.acked, base.acked);
        assert_eq!(a.violations, base.violations);
        assert!(
            on.counter("san.ops") > 0,
            "the instrumented run recorded metrics"
        );
        let on2 = Telemetry::new();
        let b = run_nemesis_with_telemetry(&plan, &opts, on2.clone());
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(
            on.snapshot("chaos_series7", plan.seed).to_json(),
            on2.snapshot("chaos_series7", plan.seed).to_json(),
            "two scraping replays must snapshot identically"
        );
    }

    /// The storage backend is invisible to the protocol: the same mixed
    /// fault schedule must fingerprint identically on every registered
    /// backend (the full 10-seed sweep lives in the chaos bin).
    #[test]
    fn seed_seven_fingerprint_is_unchanged_by_backend() {
        let plan = NemesisPlan::generate(7, 5, &NemesisConfig::default());
        let reference = run_nemesis(&plan, &ChaosOptions::default());
        for backend in BackendKind::all() {
            let opts = ChaosOptions {
                backend,
                ..ChaosOptions::default()
            };
            let report = run_nemesis(&plan, &opts);
            assert_eq!(
                report.fingerprint, reference.fingerprint,
                "backend {backend} changed the run's observable behaviour"
            );
            assert_eq!(report.acked, reference.acked);
            assert_eq!(report.floors, reference.floors);
            assert_eq!(report.violations, reference.violations);
        }
    }

    /// Satellite: a rolling upgrade wave launched mid-schedule — so the
    /// nemesis can kill the in-flight node, flake the SAN under the
    /// state handoff, or partition the cluster around it — still holds
    /// at-most-one-live-copy, durability and convergence; its outcome is
    /// byte-identical with telemetry on or off and across every SAN
    /// backend. (The full 10-seed sweep lives in the chaos bin.)
    #[test]
    fn upgrade_wave_mid_nemesis_holds_invariants_and_stays_passive() {
        let plan = NemesisPlan::generate(7, 5, &NemesisConfig::default());
        let opts = ChaosOptions {
            upgrade_wave_at_us: Some(5_000_000),
            ..ChaosOptions::default()
        };
        let on = Telemetry::new();
        let a = run_nemesis_with_telemetry(&plan, &opts, on.clone());
        assert!(a.ok(), "violations: {:?}", a.violations);
        let w = a.wave.as_ref().expect("wave armed");
        assert!(
            !w.upgraded.is_empty(),
            "the wave hot-swapped at least one instance under fire: {w:?}"
        );
        let b = run_nemesis_with_telemetry(&plan, &opts, Telemetry::disabled());
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "telemetry changed a wave run's observable behaviour"
        );
        assert_eq!(a.wave, b.wave);
        for backend in BackendKind::all() {
            let r = run_nemesis(
                &plan,
                &ChaosOptions {
                    backend,
                    ..opts.clone()
                },
            );
            assert_eq!(
                r.fingerprint, a.fingerprint,
                "backend {backend} changed a wave run's observable behaviour"
            );
            assert_eq!(r.wave, a.wave);
        }
    }

    /// The causal trace is part of the deterministic surface: two
    /// instrumented replays of the same schedule export byte-identical
    /// Chrome trace JSON, and an uninstrumented run records nothing while
    /// fingerprinting the same.
    #[test]
    fn trace_export_is_deterministic_and_passive() {
        use dosgi_testkit::nemesis::NemesisStep;
        // Crash the node hosting ctr-0, then restart it: guarantees a
        // failover claim (and so a non-empty trace) regardless of seed.
        let plan = NemesisPlan {
            seed: 0x7ACE,
            nodes: 5,
            horizon_us: 30_000_000,
            steps: vec![
                NemesisStep {
                    at_us: 2_000_000,
                    op: NemesisOp::CrashNode { node: 0 },
                },
                NemesisStep {
                    at_us: 12_000_000,
                    op: NemesisOp::RestartNode { node: 0 },
                },
            ],
        };
        let opts = ChaosOptions::default();
        let a = run_nemesis_with_telemetry(&plan, &opts, Telemetry::new());
        let b = run_nemesis_with_telemetry(&plan, &opts, Telemetry::new());
        assert!(
            !a.trace.events.is_empty(),
            "a crashing schedule records failover/adoption spans"
        );
        assert_eq!(
            a.trace.to_chrome_json("t", plan.seed),
            b.trace.to_chrome_json("t", plan.seed),
            "byte-identical trace replay"
        );
        let c = run_nemesis_with_telemetry(&plan, &opts, Telemetry::disabled());
        assert!(c.trace.events.is_empty(), "no tracing without telemetry");
        assert_eq!(a.fingerprint, c.fingerprint, "tracing is passive");
    }

    #[test]
    fn brownout_schedule_holds_invariants() {
        let cfg = NemesisConfig {
            crash: false,
            partition: false,
            flaky: false,
            msg_loss: false,
            ..quick_config()
        };
        let plan = NemesisPlan::generate(5, 3, &cfg);
        assert!(
            plan.steps.iter().any(|s| s.op == NemesisOp::SanBrownout),
            "schedule exercises brown-outs"
        );
        let report = run_nemesis(&plan, &ChaosOptions::default());
        assert!(report.ok(), "violations: {:?}", report.violations);
    }
}
