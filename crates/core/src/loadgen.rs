//! Open-loop workload generation for experiments.
//!
//! Availability and SLA numbers are only as honest as the load behind
//! them; this module provides a deterministic Poisson-process request
//! generator (seeded, exponential inter-arrival gaps), a bounded-Pareto
//! work-size sampler (the standard open-loop web workload shape), and the
//! realism layers experiment E15 sweeps: Zipf-skewed tenant popularity
//! ([`ZipfSampler`]), diurnal ramps and flash-crowd bursts
//! ([`RateSchedule`] + [`ScheduledLoadGenerator`]), and request-class
//! mixes with per-class latency SLOs ([`ClassMix`]). Everything is seeded
//! and advances only on the simulated clock.

use dosgi_ipvs::RequestClass;
use dosgi_net::{SimDuration, SimTime};
use dosgi_testkit::TestRng;

/// Default per-tick arrival cap: a single driver tick never reports more
/// than this many arrivals; the excess carries over to later ticks (the
/// process itself is not thinned — see
/// [`LoadGenerator::arrivals_until`]).
pub const DEFAULT_MAX_ARRIVALS_PER_TICK: u32 = 4096;

/// A Poisson arrival process on the simulated clock.
#[derive(Debug, Clone)]
pub struct LoadGenerator {
    rng: TestRng,
    rate_per_sec: f64,
    next_arrival: SimTime,
    max_per_tick: u32,
}

impl LoadGenerator {
    /// A generator producing `rate_per_sec` arrivals per simulated second,
    /// starting at `start`, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_per_sec` is positive and finite.
    pub fn new(rate_per_sec: f64, seed: u64, start: SimTime) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "rate must be positive"
        );
        let mut gen = LoadGenerator {
            rng: TestRng::new(seed),
            rate_per_sec,
            next_arrival: start,
            max_per_tick: DEFAULT_MAX_ARRIVALS_PER_TICK,
        };
        gen.advance_gap();
        gen
    }

    /// Overrides the per-tick arrival cap (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_max_per_tick(mut self, cap: u32) -> Self {
        assert!(cap > 0, "cap must be positive");
        self.max_per_tick = cap;
        self
    }

    fn advance_gap(&mut self) {
        // Exponential(λ) inter-arrival: -ln(U)/λ.
        let u: f64 = self.rng.f64().max(f64::MIN_POSITIVE);
        let gap_secs = -u.ln() / self.rate_per_sec;
        self.next_arrival += SimDuration::from_micros((gap_secs * 1e6) as u64);
    }

    /// Number of arrivals with timestamps `<= now` since the last call,
    /// bounded by the per-tick cap. Call once per driver tick and issue
    /// that many requests.
    ///
    /// The cap bounds what one tick can *report*, not what the process
    /// produces: when a long sim-time gap (or a very high rate) backs up
    /// more than `max_per_tick` arrivals, the excess stays pending and is
    /// returned by subsequent calls — so no driver tick ever has to issue
    /// a pathological burst, and the long-run arrival count is unchanged.
    pub fn arrivals_until(&mut self, now: SimTime) -> u32 {
        let mut n = 0;
        while n < self.max_per_tick && self.next_arrival <= now {
            n += 1;
            self.advance_gap();
        }
        n
    }

    /// The timestamp of the next pending arrival.
    pub fn next_arrival(&self) -> SimTime {
        self.next_arrival
    }
}

/// A bounded-Pareto sampler for request service demands (heavy-tailed work,
/// as web traffic measurements consistently show).
#[derive(Debug, Clone)]
pub struct WorkSampler {
    rng: TestRng,
    min_us: f64,
    max_us: f64,
    alpha: f64,
}

impl WorkSampler {
    /// Work sizes in `[min, max]` with tail index `alpha` (1.1–2.5 is the
    /// empirical web range; lower = heavier tail).
    ///
    /// # Panics
    ///
    /// Panics unless `min < max` and `alpha > 0`.
    pub fn new(min: SimDuration, max: SimDuration, alpha: f64, seed: u64) -> Self {
        assert!(min < max, "min must be below max");
        assert!(alpha > 0.0, "alpha must be positive");
        WorkSampler {
            rng: TestRng::new(seed),
            min_us: min.as_micros() as f64,
            max_us: max.as_micros() as f64,
            alpha,
        }
    }

    /// Draws one service demand.
    pub fn sample(&mut self) -> SimDuration {
        // Inverse-CDF of the bounded Pareto.
        let u: f64 = self.rng.f64().clamp(1e-12, 1.0 - 1e-12);
        let (l, h, a) = (self.min_us, self.max_us, self.alpha);
        let x = (u * h.powf(a) - u * l.powf(a) - h.powf(a)) / (h.powf(a) * l.powf(a));
        let v = (-x).powf(-1.0 / a);
        SimDuration::from_micros(v.clamp(l, h) as u64)
    }
}

/// A Zipf(s) sampler over ranks `0..n`: rank `k` is drawn with probability
/// proportional to `1/(k+1)^s` — the empirical shape of tenant popularity
/// (a few customers dominate the traffic, a long tail idles).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    rng: TestRng,
    // cdf[k] = P(rank <= k); cdf[n-1] == 1.0.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// A sampler over `n` ranks with exponent `exponent` (1.0 is the
    /// classic web skew; larger = more skew), deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 1` and `exponent` is positive and finite.
    pub fn new(n: usize, exponent: f64, seed: u64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(
            exponent > 0.0 && exponent.is_finite(),
            "exponent must be positive"
        );
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-exponent)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let mut cdf: Vec<f64> = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        // Guard the tail against float round-off: the last slot must catch
        // every u in [0, 1).
        cdf[n - 1] = 1.0;
        ZipfSampler {
            rng: TestRng::new(seed),
            cdf,
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (`n >= 1` by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The probability of drawing `rank`.
    pub fn probability(&self, rank: usize) -> f64 {
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - lo
    }

    /// Maps one uniform draw `u` in `[0, 1)` to a rank (pure inverse-CDF
    /// lookup by binary search; the property suite pins it to a naive
    /// linear scan).
    pub fn pick(&self, u: f64) -> usize {
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }

    /// Draws one rank.
    pub fn sample(&mut self) -> usize {
        let u = self.rng.f64();
        self.pick(u)
    }
}

/// A flash-crowd burst: while active, the offered rate is multiplied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// When the burst begins.
    pub start: SimTime,
    /// How long it lasts.
    pub duration: SimDuration,
    /// The rate multiplier while active (e.g. `8.0` for an 8× spike).
    pub multiplier: f64,
}

/// A deterministic offered-load profile: base rate, optional diurnal ramp
/// (a triangle wave between the base and a peak), and flash-crowd bursts.
/// Pure function of the simulated clock — no RNG, so two runs see exactly
/// the same instantaneous rate at every instant.
#[derive(Debug, Clone)]
pub struct RateSchedule {
    base_rate: f64,
    diurnal: Option<(SimDuration, f64)>, // (period, peak multiplier)
    bursts: Vec<Burst>,
}

impl RateSchedule {
    /// A flat schedule at `rate_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_per_sec` is positive and finite.
    pub fn constant(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "rate must be positive"
        );
        RateSchedule {
            base_rate: rate_per_sec,
            diurnal: None,
            bursts: Vec::new(),
        }
    }

    /// Adds a diurnal ramp (builder style): over each `period` the rate
    /// climbs linearly from the base to `base × peak_multiplier` at
    /// mid-period and back — a compressed day/night cycle.
    ///
    /// # Panics
    ///
    /// Panics unless `period` is positive and `peak_multiplier >= 1`.
    pub fn with_diurnal(mut self, period: SimDuration, peak_multiplier: f64) -> Self {
        assert!(period > SimDuration::ZERO, "period must be positive");
        assert!(peak_multiplier >= 1.0, "peak must be >= 1");
        self.diurnal = Some((period, peak_multiplier));
        self
    }

    /// Adds a flash-crowd burst (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless the multiplier is positive and finite.
    pub fn with_burst(mut self, burst: Burst) -> Self {
        assert!(
            burst.multiplier > 0.0 && burst.multiplier.is_finite(),
            "burst multiplier must be positive"
        );
        self.bursts.push(burst);
        self
    }

    /// The instantaneous offered rate at `t` (requests per second).
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let mut rate = self.base_rate;
        if let Some((period, peak)) = self.diurnal {
            let phase = (t.as_micros() % period.as_micros()) as f64 / period.as_micros() as f64;
            // Triangle wave: 0 at phase 0, 1 at phase 0.5, 0 at phase 1.
            let tri = 1.0 - (2.0 * phase - 1.0).abs();
            rate *= 1.0 + (peak - 1.0) * tri;
        }
        for b in &self.bursts {
            if t >= b.start && t < b.start + b.duration {
                rate *= b.multiplier;
            }
        }
        rate
    }

    /// The largest rate the schedule can ever produce (base × diurnal peak
    /// × the largest overlapping-burst product) — what capacity planning
    /// sizes against.
    pub fn peak_rate(&self) -> f64 {
        let mut rate = self.base_rate * self.diurnal.map_or(1.0, |(_, p)| p);
        for b in &self.bursts {
            rate *= b.multiplier.max(1.0);
        }
        rate
    }
}

/// A non-homogeneous Poisson process driven by a [`RateSchedule`]: gaps
/// are exponential at the instantaneous rate, so ramps and bursts change
/// the arrival intensity exactly when the schedule says so. Same per-tick
/// cap + carry-over contract as [`LoadGenerator::arrivals_until`].
#[derive(Debug, Clone)]
pub struct ScheduledLoadGenerator {
    rng: TestRng,
    schedule: RateSchedule,
    next_arrival: SimTime,
    max_per_tick: u32,
}

impl ScheduledLoadGenerator {
    /// A generator following `schedule`, starting at `start`,
    /// deterministic in `seed`.
    pub fn new(schedule: RateSchedule, seed: u64, start: SimTime) -> Self {
        let mut gen = ScheduledLoadGenerator {
            rng: TestRng::new(seed),
            schedule,
            next_arrival: start,
            max_per_tick: DEFAULT_MAX_ARRIVALS_PER_TICK,
        };
        gen.advance_gap();
        gen
    }

    /// Overrides the per-tick arrival cap (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_max_per_tick(mut self, cap: u32) -> Self {
        assert!(cap > 0, "cap must be positive");
        self.max_per_tick = cap;
        self
    }

    /// The schedule being followed.
    pub fn schedule(&self) -> &RateSchedule {
        &self.schedule
    }

    fn advance_gap(&mut self) {
        let rate = self.schedule.rate_at(self.next_arrival);
        let u: f64 = self.rng.f64().max(f64::MIN_POSITIVE);
        let gap_secs = -u.ln() / rate;
        // Never stall: a gap below 1µs still advances the clock.
        self.next_arrival += SimDuration::from_micros(((gap_secs * 1e6) as u64).max(1));
    }

    /// Number of arrivals with timestamps `<= now` since the last call,
    /// bounded by the per-tick cap (excess carries over).
    pub fn arrivals_until(&mut self, now: SimTime) -> u32 {
        let mut n = 0;
        while n < self.max_per_tick && self.next_arrival <= now {
            n += 1;
            self.advance_gap();
        }
        n
    }

    /// The timestamp of the next pending arrival.
    pub fn next_arrival(&self) -> SimTime {
        self.next_arrival
    }
}

/// A seeded sampler assigning each request a [`RequestClass`] according
/// to a fixed mix (weights need not sum to 1; they are normalized).
#[derive(Debug, Clone)]
pub struct ClassMix {
    rng: TestRng,
    // Cumulative normalized weights in RequestClass::ALL order.
    cdf: [f64; 3],
}

impl ClassMix {
    /// A mix drawing critical/standard/background with the given weights,
    /// deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless every weight is non-negative and their sum positive.
    pub fn new(critical: f64, standard: f64, background: f64, seed: u64) -> Self {
        let w = [critical, standard, background];
        assert!(
            w.iter().all(|x| *x >= 0.0 && x.is_finite()),
            "weights must be non-negative"
        );
        let total: f64 = w.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");
        let mut acc = 0.0;
        let mut cdf = [0.0; 3];
        for (i, x) in w.iter().enumerate() {
            acc += x / total;
            cdf[i] = acc;
        }
        cdf[2] = 1.0;
        ClassMix {
            rng: TestRng::new(seed),
            cdf,
        }
    }

    /// The web-ish default: 10% critical, 60% standard, 30% background.
    pub fn standard_web(seed: u64) -> Self {
        ClassMix::new(0.1, 0.6, 0.3, seed)
    }

    /// Draws one request class.
    pub fn sample(&mut self) -> RequestClass {
        let u = self.rng.f64();
        for (i, c) in RequestClass::ALL.into_iter().enumerate() {
            if u < self.cdf[i] {
                return c;
            }
        }
        RequestClass::Background
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_rate_is_approximately_right() {
        let mut gen = LoadGenerator::new(100.0, 7, SimTime::ZERO);
        let mut total = 0u32;
        for s in 1..=20 {
            total += gen.arrivals_until(SimTime::from_secs(s));
        }
        // 100/s over 20s: expect ~2000, Poisson σ≈45.
        assert!((1700..=2300).contains(&total), "total={total}");
    }

    #[test]
    fn deterministic_in_seed() {
        let run = |seed| {
            let mut gen = LoadGenerator::new(50.0, seed, SimTime::ZERO);
            (1..=10)
                .map(|s| gen.arrivals_until(SimTime::from_secs(s)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn arrivals_are_monotone_and_consumed() {
        let mut gen = LoadGenerator::new(10.0, 3, SimTime::ZERO);
        let first = gen.arrivals_until(SimTime::from_secs(5));
        let again = gen.arrivals_until(SimTime::from_secs(5));
        assert!(first > 0);
        assert_eq!(again, 0, "same instant yields nothing new");
        assert!(gen.next_arrival() > SimTime::from_secs(5));
    }

    #[test]
    fn work_sampler_respects_bounds() {
        let min = SimDuration::from_micros(100);
        let max = SimDuration::from_millis(50);
        let mut s = WorkSampler::new(min, max, 1.5, 11);
        let mut total = SimDuration::ZERO;
        for _ in 0..1000 {
            let w = s.sample();
            assert!(w >= min && w <= max, "{w}");
            total += w;
        }
        let mean = total / 1000;
        // Heavy tail: mean well above min, well below max.
        assert!(mean > min && mean < max, "mean={mean}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = LoadGenerator::new(0.0, 1, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "min must be below max")]
    fn bad_bounds_rejected() {
        let _ = WorkSampler::new(
            SimDuration::from_millis(5),
            SimDuration::from_millis(5),
            1.5,
            1,
        );
    }

    // ------------------------------------------------------------------
    // Per-tick cap + carry-over (regression: a long sim-time gap used to
    // return the whole backlog as one pathological burst).
    // ------------------------------------------------------------------

    #[test]
    fn regression_long_gap_is_capped_and_carries_over() {
        // 1000/s polled after 100 simulated seconds: ~100k arrivals backed
        // up, but one tick must never report more than the cap.
        let mut capped = LoadGenerator::new(1000.0, 9, SimTime::ZERO).with_max_per_tick(500);
        let mut unbounded =
            LoadGenerator::new(1000.0, 9, SimTime::ZERO).with_max_per_tick(u32::MAX);
        let t = SimTime::from_secs(100);
        let want = unbounded.arrivals_until(t);
        assert!(want > 50_000, "the gap really backs up a burst: {want}");
        let mut total = 0u64;
        let mut ticks = 0u64;
        loop {
            let n = capped.arrivals_until(t);
            if n == 0 {
                break;
            }
            assert!(n <= 500, "tick reported {n} > cap");
            total += u64::from(n);
            ticks += 1;
        }
        // Carry-over preserves the process: same RNG stream, same count.
        assert_eq!(total, u64::from(want));
        assert!(ticks >= u64::from(want) / 500);
        assert_eq!(capped.next_arrival(), unbounded.next_arrival());
    }

    #[test]
    fn default_cap_applies() {
        let mut gen = LoadGenerator::new(100_000.0, 4, SimTime::ZERO);
        let n = gen.arrivals_until(SimTime::from_secs(10));
        assert_eq!(n, DEFAULT_MAX_ARRIVALS_PER_TICK);
        assert!(gen.next_arrival() < SimTime::from_secs(10), "backlog pends");
    }

    // ------------------------------------------------------------------
    // Zipf tenant popularity.
    // ------------------------------------------------------------------

    #[test]
    fn zipf_is_skewed_and_deterministic() {
        let mut z = ZipfSampler::new(50, 1.0, 21);
        let mut counts = vec![0u32; 50];
        for _ in 0..20_000 {
            counts[z.sample()] += 1;
        }
        // Rank 0 dominates; the tail is thin but present.
        assert!(counts[0] > counts[10] && counts[10] > 0, "{counts:?}");
        assert!(
            counts[0] as f64 / 20_000.0 > 1.5 * z.probability(1),
            "head probability should dominate rank 1"
        );
        let replay: Vec<usize> = {
            let mut z2 = ZipfSampler::new(50, 1.0, 21);
            (0..100).map(|_| z2.sample()).collect()
        };
        let mut z3 = ZipfSampler::new(50, 1.0, 21);
        let again: Vec<usize> = (0..100).map(|_| z3.sample()).collect();
        assert_eq!(replay, again);
    }

    #[test]
    fn zipf_probabilities_sum_to_one() {
        let z = ZipfSampler::new(17, 1.3, 1);
        let total: f64 = (0..17).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
        assert_eq!(z.len(), 17);
        assert_eq!(z.pick(0.0), 0);
        assert_eq!(z.pick(0.999_999_9), 16);
    }

    #[test]
    #[should_panic(expected = "need at least one rank")]
    fn zipf_empty_rejected() {
        let _ = ZipfSampler::new(0, 1.0, 1);
    }

    // ------------------------------------------------------------------
    // Rate schedules: diurnal ramps + flash crowds.
    // ------------------------------------------------------------------

    #[test]
    fn diurnal_ramp_peaks_mid_period() {
        let s = RateSchedule::constant(100.0).with_diurnal(SimDuration::from_secs(60), 3.0);
        assert!((s.rate_at(SimTime::ZERO) - 100.0).abs() < 1e-9);
        assert!((s.rate_at(SimTime::from_secs(30)) - 300.0).abs() < 1e-9);
        assert!((s.rate_at(SimTime::from_secs(15)) - 200.0).abs() < 1e-6);
        // Periodic: the next cycle looks the same.
        assert!((s.rate_at(SimTime::from_secs(90)) - 300.0).abs() < 1e-9);
        assert!((s.peak_rate() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn flash_crowd_multiplies_while_active() {
        let s = RateSchedule::constant(100.0).with_burst(Burst {
            start: SimTime::from_secs(10),
            duration: SimDuration::from_secs(5),
            multiplier: 8.0,
        });
        assert!((s.rate_at(SimTime::from_secs(9)) - 100.0).abs() < 1e-9);
        assert!((s.rate_at(SimTime::from_secs(10)) - 800.0).abs() < 1e-9);
        assert!((s.rate_at(SimTime::from_secs(14)) - 800.0).abs() < 1e-9);
        assert!((s.rate_at(SimTime::from_secs(15)) - 100.0).abs() < 1e-9);
        assert!((s.peak_rate() - 800.0).abs() < 1e-9);
    }

    #[test]
    fn scheduled_generator_tracks_the_burst() {
        let schedule = RateSchedule::constant(200.0).with_burst(Burst {
            start: SimTime::from_secs(10),
            duration: SimDuration::from_secs(5),
            multiplier: 10.0,
        });
        let mut gen =
            ScheduledLoadGenerator::new(schedule, 5, SimTime::ZERO).with_max_per_tick(u32::MAX);
        let mut before = 0u32;
        for s in 1..=10 {
            before += gen.arrivals_until(SimTime::from_secs(s));
        }
        let mut during = 0u32;
        for s in 11..=15 {
            during += gen.arrivals_until(SimTime::from_secs(s));
        }
        // 10s at 200/s ≈ 2000; 5s at 2000/s ≈ 10000.
        assert!((1500..=2500).contains(&before), "before={before}");
        assert!((8000..=12000).contains(&during), "during={during}");
        // Deterministic replay.
        let mut gen2 = ScheduledLoadGenerator::new(
            RateSchedule::constant(200.0).with_burst(Burst {
                start: SimTime::from_secs(10),
                duration: SimDuration::from_secs(5),
                multiplier: 10.0,
            }),
            5,
            SimTime::ZERO,
        )
        .with_max_per_tick(u32::MAX);
        let mut replay = 0u32;
        for s in 1..=10 {
            replay += gen2.arrivals_until(SimTime::from_secs(s));
        }
        assert_eq!(before, replay);
    }

    // ------------------------------------------------------------------
    // Request-class mixes.
    // ------------------------------------------------------------------

    #[test]
    fn class_mix_respects_weights() {
        let mut m = ClassMix::new(0.1, 0.6, 0.3, 31);
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[m.sample().priority()] += 1;
        }
        assert!((700..=1300).contains(&counts[0]), "critical={}", counts[0]);
        assert!((5400..=6600).contains(&counts[1]), "standard={}", counts[1]);
        assert!(
            (2400..=3600).contains(&counts[2]),
            "background={}",
            counts[2]
        );
    }

    #[test]
    fn degenerate_mix_always_draws_that_class() {
        let mut m = ClassMix::new(0.0, 0.0, 5.0, 1);
        for _ in 0..100 {
            assert_eq!(m.sample(), RequestClass::Background);
        }
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn all_zero_mix_rejected() {
        let _ = ClassMix::new(0.0, 0.0, 0.0, 1);
    }
}

#[cfg(test)]
mod properties {
    //! 200-case statistical pins: Poisson arrival counts stay inside
    //! mean ± 6σ, and the Zipf inverse-CDF binary search matches a naive
    //! linear-scan reference exactly. Seeded and replayable via
    //! `DOSGI_PROP_SEED`.

    use super::*;
    use dosgi_testkit::prop::{self, Config, Gen};
    use dosgi_testkit::{prop_verify, prop_verify_eq};

    #[test]
    fn poisson_arrival_counts_match_rate_200_cases() {
        let cases = Gen::new(|rng: &mut TestRng| {
            let rate = 5.0 + rng.f64() * 495.0; // 5..500 req/s
            let secs = rng.u64_in(5, 30);
            let seed = rng.next_u64();
            (rate, secs, seed)
        });
        prop::check_with(
            &Config::with_cases(200),
            "poisson_arrival_counts_match_rate",
            &cases,
            |&(rate, secs, seed)| {
                let mut gen =
                    LoadGenerator::new(rate, seed, SimTime::ZERO).with_max_per_tick(u32::MAX);
                let mut total = 0u64;
                for s in 1..=secs {
                    total += u64::from(gen.arrivals_until(SimTime::from_secs(s)));
                }
                let mean = rate * secs as f64;
                // Poisson: σ = sqrt(mean); 6σ keeps the false-failure rate
                // negligible over 200 cases while still pinning the rate.
                let slack = 6.0 * mean.sqrt() + 1.0;
                prop_verify!(
                    (total as f64 - mean).abs() <= slack,
                    "rate {rate:.1}/s over {secs}s: {total} arrivals vs mean {mean:.0} ± {slack:.0}"
                );
                Ok(())
            },
        );
    }

    #[test]
    fn capped_generator_conserves_arrivals_200_cases() {
        let cases = Gen::new(|rng: &mut TestRng| {
            let rate = 100.0 + rng.f64() * 1900.0;
            let cap = rng.u64_in(1, 64) as u32;
            let seed = rng.next_u64();
            (rate, cap, seed)
        });
        prop::check_with(
            &Config::with_cases(200),
            "capped_generator_conserves_arrivals",
            &cases,
            |&(rate, cap, seed)| {
                let t = SimTime::from_secs(2);
                let mut unbounded =
                    LoadGenerator::new(rate, seed, SimTime::ZERO).with_max_per_tick(u32::MAX);
                let want = unbounded.arrivals_until(t);
                let mut capped =
                    LoadGenerator::new(rate, seed, SimTime::ZERO).with_max_per_tick(cap);
                let mut total = 0u32;
                loop {
                    let n = capped.arrivals_until(t);
                    prop_verify!(n <= cap, "tick returned {n} > cap {cap}");
                    if n == 0 {
                        break;
                    }
                    total += n;
                }
                prop_verify_eq!(total, want, "cap {cap} lost or invented arrivals");
                Ok(())
            },
        );
    }

    #[test]
    fn zipf_pick_matches_naive_reference_200_cases() {
        let cases = Gen::new(|rng: &mut TestRng| {
            let n = rng.u64_in(1, 200) as usize;
            let exponent = 0.2 + rng.f64() * 2.3;
            let draws: Vec<f64> = (0..100).map(|_| rng.f64()).collect();
            (n, exponent, draws)
        });
        prop::check_with(
            &Config::with_cases(200),
            "zipf_pick_matches_naive_reference",
            &cases,
            |(n, exponent, draws)| {
                let z = ZipfSampler::new(*n, *exponent, 1);
                // Naive reference: un-normalized weights, linear scan.
                let weights: Vec<f64> = (1..=*n).map(|k| (k as f64).powf(-exponent)).collect();
                let total: f64 = weights.iter().sum();
                for &u in draws {
                    let mut acc = 0.0;
                    let mut naive = *n - 1;
                    for (k, w) in weights.iter().enumerate() {
                        acc += w / total;
                        if u < acc {
                            naive = k;
                            break;
                        }
                    }
                    prop_verify_eq!(
                        z.pick(u),
                        naive,
                        "n {n}, s {exponent:.2}, u {u}: binary search != linear scan"
                    );
                }
                // And the per-rank probabilities tile [0, 1].
                let sum: f64 = (0..*n).map(|k| z.probability(k)).sum();
                prop_verify!((sum - 1.0).abs() < 1e-9, "probabilities sum to {sum}");
                Ok(())
            },
        );
    }

    #[test]
    fn zipf_empirical_frequencies_match_analytic_200_cases() {
        let cases = Gen::new(|rng: &mut TestRng| {
            let n = rng.u64_in(2, 40) as usize;
            let exponent = 0.5 + rng.f64() * 1.5;
            let seed = rng.next_u64();
            (n, exponent, seed)
        });
        prop::check_with(
            &Config::with_cases(200),
            "zipf_empirical_frequencies_match_analytic",
            &cases,
            |&(n, exponent, seed)| {
                let mut z = ZipfSampler::new(n, exponent, seed);
                const DRAWS: u32 = 4_000;
                let mut counts = vec![0u32; n];
                for _ in 0..DRAWS {
                    counts[z.sample()] += 1;
                }
                // Binomial 6σ bound per rank.
                for (k, &c) in counts.iter().enumerate() {
                    let p = z.probability(k);
                    let mean = f64::from(DRAWS) * p;
                    let sigma = (f64::from(DRAWS) * p * (1.0 - p)).sqrt();
                    prop_verify!(
                        (f64::from(c) - mean).abs() <= 6.0 * sigma + 1.0,
                        "rank {k}/{n} (s {exponent:.2}): {c} draws vs mean {mean:.1} σ {sigma:.1}"
                    );
                }
                Ok(())
            },
        );
    }
}
