//! Open-loop workload generation for experiments.
//!
//! Availability and SLA numbers are only as honest as the load behind
//! them; this module provides a deterministic Poisson-process request
//! generator (seeded, exponential inter-arrival gaps) and a bounded-Pareto
//! work-size sampler, the standard open-loop web workload shape.

use dosgi_net::{SimDuration, SimTime};
use dosgi_testkit::TestRng;

/// A Poisson arrival process on the simulated clock.
#[derive(Debug, Clone)]
pub struct LoadGenerator {
    rng: TestRng,
    rate_per_sec: f64,
    next_arrival: SimTime,
}

impl LoadGenerator {
    /// A generator producing `rate_per_sec` arrivals per simulated second,
    /// starting at `start`, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_per_sec` is positive and finite.
    pub fn new(rate_per_sec: f64, seed: u64, start: SimTime) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "rate must be positive"
        );
        let mut gen = LoadGenerator {
            rng: TestRng::new(seed),
            rate_per_sec,
            next_arrival: start,
        };
        gen.advance_gap();
        gen
    }

    fn advance_gap(&mut self) {
        // Exponential(λ) inter-arrival: -ln(U)/λ.
        let u: f64 = self.rng.f64().max(f64::MIN_POSITIVE);
        let gap_secs = -u.ln() / self.rate_per_sec;
        self.next_arrival += SimDuration::from_micros((gap_secs * 1e6) as u64);
    }

    /// Number of arrivals with timestamps `<= now` since the last call.
    /// Call once per driver tick and issue that many requests.
    pub fn arrivals_until(&mut self, now: SimTime) -> u32 {
        let mut n = 0;
        while self.next_arrival <= now {
            n += 1;
            self.advance_gap();
        }
        n
    }

    /// The timestamp of the next pending arrival.
    pub fn next_arrival(&self) -> SimTime {
        self.next_arrival
    }
}

/// A bounded-Pareto sampler for request service demands (heavy-tailed work,
/// as web traffic measurements consistently show).
#[derive(Debug, Clone)]
pub struct WorkSampler {
    rng: TestRng,
    min_us: f64,
    max_us: f64,
    alpha: f64,
}

impl WorkSampler {
    /// Work sizes in `[min, max]` with tail index `alpha` (1.1–2.5 is the
    /// empirical web range; lower = heavier tail).
    ///
    /// # Panics
    ///
    /// Panics unless `min < max` and `alpha > 0`.
    pub fn new(min: SimDuration, max: SimDuration, alpha: f64, seed: u64) -> Self {
        assert!(min < max, "min must be below max");
        assert!(alpha > 0.0, "alpha must be positive");
        WorkSampler {
            rng: TestRng::new(seed),
            min_us: min.as_micros() as f64,
            max_us: max.as_micros() as f64,
            alpha,
        }
    }

    /// Draws one service demand.
    pub fn sample(&mut self) -> SimDuration {
        // Inverse-CDF of the bounded Pareto.
        let u: f64 = self.rng.f64().clamp(1e-12, 1.0 - 1e-12);
        let (l, h, a) = (self.min_us, self.max_us, self.alpha);
        let x = (u * h.powf(a) - u * l.powf(a) - h.powf(a)) / (h.powf(a) * l.powf(a));
        let v = (-x).powf(-1.0 / a);
        SimDuration::from_micros(v.clamp(l, h) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_rate_is_approximately_right() {
        let mut gen = LoadGenerator::new(100.0, 7, SimTime::ZERO);
        let mut total = 0u32;
        for s in 1..=20 {
            total += gen.arrivals_until(SimTime::from_secs(s));
        }
        // 100/s over 20s: expect ~2000, Poisson σ≈45.
        assert!((1700..=2300).contains(&total), "total={total}");
    }

    #[test]
    fn deterministic_in_seed() {
        let run = |seed| {
            let mut gen = LoadGenerator::new(50.0, seed, SimTime::ZERO);
            (1..=10)
                .map(|s| gen.arrivals_until(SimTime::from_secs(s)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn arrivals_are_monotone_and_consumed() {
        let mut gen = LoadGenerator::new(10.0, 3, SimTime::ZERO);
        let first = gen.arrivals_until(SimTime::from_secs(5));
        let again = gen.arrivals_until(SimTime::from_secs(5));
        assert!(first > 0);
        assert_eq!(again, 0, "same instant yields nothing new");
        assert!(gen.next_arrival() > SimTime::from_secs(5));
    }

    #[test]
    fn work_sampler_respects_bounds() {
        let min = SimDuration::from_micros(100);
        let max = SimDuration::from_millis(50);
        let mut s = WorkSampler::new(min, max, 1.5, 11);
        let mut total = SimDuration::ZERO;
        for _ in 0..1000 {
            let w = s.sample();
            assert!(w >= min && w <= max, "{w}");
            total += w;
        }
        let mean = total / 1000;
        // Heavy tail: mean well above min, well below max.
        assert!(mean > min && mean < max, "mean={mean}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = LoadGenerator::new(0.0, 1, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "min must be below max")]
    fn bad_bounds_rejected() {
        let _ = WorkSampler::new(
            SimDuration::from_millis(5),
            SimDuration::from_millis(5),
            1.5,
            1,
        );
    }
}
