//! The Migration Module: protocol description and measurement helpers.
//!
//! §3.2 lists four issues; here is how each is addressed:
//!
//! 1. **Knowledge of the available nodes and their resources** — the GCS
//!    membership service ([`dosgi_gcs`]) plus the replicated
//!    [`ClusterRegistry`](crate::ClusterRegistry) maintained through
//!    totally-ordered control messages.
//! 2. **Node failures** — on a view change that excludes nodes, each
//!    survivor orphans the affected records, computes the *same*
//!    deterministic placement ([`PlacementPolicy`](crate::PlacementPolicy))
//!    and claims its own share through the total order; the first claim per
//!    orphan wins everywhere (see [`ClusterRegistry`](crate::ClusterRegistry)). Claims are only
//!    acted on in a **majority partition** (primary-component discipline).
//! 3. **State migration** — the OSGi framework state is persistent (spec
//!    requirement, [`dosgi_osgi::Framework::persist`]) and lives in the SAN
//!    ([`dosgi_san`]), so the destination re-materializes the instance with
//!    [`InstanceManager::adopt_instance`](dosgi_vosgi::InstanceManager::adopt_instance).
//!    Stateless bundles just restart; stateful bundles recover their
//!    persistent state; the in-memory *running context* is lost on crash
//!    (exactly the paper's §3.2 semantics) unless one of the
//!    [`crate::replication`] extensions is active.
//! 4. **Service localization** — virtual IPs ([`dosgi_net::IpBindings`])
//!    moved with the instance (Fig. 5) or shared behind the fault-tolerant
//!    ipvs layer ([`dosgi_ipvs`], Fig. 6).
//!
//! The graceful path (`Migrate → Released` in the total order) is initiated
//! by the administrator ([`DosgiCluster::migrate`](crate::DosgiCluster::migrate)),
//! by the Autonomic Module (SLA enforcement), or by a draining node
//! ([`DosgiCluster::graceful_shutdown`](crate::DosgiCluster::graceful_shutdown)).

use crate::events::{AdoptReason, NodeEvent};
use dosgi_net::{NodeId, SimDuration, SimTime};

/// The instant a node released `name` for migration, from an event stream.
pub fn released_at(events: &[(NodeId, NodeEvent)], name: &str) -> Option<SimTime> {
    events.iter().find_map(|(_, e)| match e {
        NodeEvent::Released { at, name: n, .. } if n == name => Some(*at),
        _ => None,
    })
}

/// The instant `name` was (re-)adopted, optionally filtered by reason.
pub fn adopted_at(
    events: &[(NodeId, NodeEvent)],
    name: &str,
    reason: Option<AdoptReason>,
) -> Option<SimTime> {
    events.iter().find_map(|(_, e)| match e {
        NodeEvent::Adopted {
            at,
            name: n,
            reason: r,
        } if n == name && reason.map(|want| want == *r).unwrap_or(true) => Some(*at),
        _ => None,
    })
}

/// Hand-off latency of a graceful migration: release on the source →
/// adoption on the destination.
pub fn migration_latency(events: &[(NodeId, NodeEvent)], name: &str) -> Option<SimDuration> {
    let released = released_at(events, name)?;
    let adopted = adopted_at(events, name, Some(AdoptReason::Migration))?;
    Some(adopted.since(released))
}

/// Failover latency: from the injected crash instant to the failover
/// adoption (detection + view agreement + claim + re-materialization).
pub fn failover_latency(
    events: &[(NodeId, NodeEvent)],
    name: &str,
    crash_at: SimTime,
) -> Option<SimDuration> {
    let adopted = adopted_at(events, name, Some(AdoptReason::Failover))?;
    Some(adopted.since(crash_at))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> Vec<(NodeId, NodeEvent)> {
        vec![
            (
                NodeId(0),
                NodeEvent::Released {
                    at: SimTime::from_millis(100),
                    name: "a".into(),
                    to: NodeId(1),
                },
            ),
            (
                NodeId(1),
                NodeEvent::Adopted {
                    at: SimTime::from_millis(350),
                    name: "a".into(),
                    reason: AdoptReason::Migration,
                },
            ),
            (
                NodeId(2),
                NodeEvent::Adopted {
                    at: SimTime::from_millis(900),
                    name: "b".into(),
                    reason: AdoptReason::Failover,
                },
            ),
        ]
    }

    #[test]
    fn migration_latency_from_events() {
        let events = stream();
        assert_eq!(
            migration_latency(&events, "a"),
            Some(SimDuration::from_millis(250))
        );
        assert_eq!(migration_latency(&events, "b"), None, "b was failover");
    }

    #[test]
    fn failover_latency_from_crash_instant() {
        let events = stream();
        assert_eq!(
            failover_latency(&events, "b", SimTime::from_millis(500)),
            Some(SimDuration::from_millis(400))
        );
        assert_eq!(failover_latency(&events, "a", SimTime::ZERO), None);
    }

    #[test]
    fn reason_filter() {
        let events = stream();
        assert!(adopted_at(&events, "a", Some(AdoptReason::Failover)).is_none());
        assert!(adopted_at(&events, "a", None).is_some());
    }
}
