//! Cluster application messages (carried inside the GCS).

use dosgi_net::NodeId;
use dosgi_san::Value;

/// Application payloads exchanged between nodes through the group
/// communication layer. Control-plane messages that mutate the replicated
/// instance registry travel **totally ordered** so every node applies them
/// in the same sequence; announcements travel FIFO-reliable.
#[derive(Debug, Clone, PartialEq)]
pub enum AppPayload {
    /// (ordered) A new instance was deployed on `home`. Carries the
    /// serialized descriptor so any node can later re-materialize it.
    Deployed {
        /// The instance name.
        name: String,
        /// The serialized [`InstanceDescriptor`](dosgi_vosgi::InstanceDescriptor).
        descriptor: Value,
        /// The node it was deployed on.
        home: NodeId,
    },
    /// (ordered) A migration was decided: `name` moves `from → to`.
    Migrate {
        /// The instance to move.
        name: String,
        /// Current home.
        from: NodeId,
        /// Destination.
        to: NodeId,
    },
    /// (ordered) The source has stopped the instance and its state is in
    /// the SAN; the destination may adopt it.
    Released {
        /// The instance released.
        name: String,
        /// The destination that should adopt it.
        to: NodeId,
    },
    /// (ordered) A failover **claim**: `node` takes over an instance
    /// stranded on `prior_home`. Carrying the dead home makes the claim
    /// self-contained: it applies identically on nodes that have already
    /// orphaned the record locally and on nodes whose failure detector is
    /// still lagging — the first claim per instance in the total order wins
    /// everywhere.
    Adopted {
        /// The instance claimed.
        name: String,
        /// Its new home (the claimant).
        node: NodeId,
        /// The home the claimant observed as dead.
        prior_home: NodeId,
    },
    /// (ordered) A node exhausted its retry budget re-materializing an
    /// instance it claimed (persistent SAN faults): the instance is
    /// **quarantined** — kept in the registry, homed on the reporting node,
    /// but known-down. When the SAN heals, the home re-claims it with an
    /// `Adopted { prior_home: self }` and re-adopts from the SAN.
    Quarantined {
        /// The instance that could not be re-materialized.
        name: String,
        /// The node that holds (and will heal) it.
        node: NodeId,
    },
    /// (ordered) An instance was destroyed on purpose (undeploy).
    Undeployed {
        /// The instance removed.
        name: String,
    },
    /// (ordered) A node announces it is draining for a graceful shutdown;
    /// its instances will be migrated away before it leaves the group.
    Draining {
        /// The node shutting down.
        node: NodeId,
    },
    /// (ordered) A node announces it (re)started. Peers answer with a
    /// `RegistrySync`, which lets a node that crashed and restarted *below
    /// the suspicion timeout* — invisible to the failure detector — learn
    /// the registry and re-adopt the instances it silently lost.
    Hello {
        /// The (re)started node.
        node: NodeId,
    },
    /// (ordered) Full registry state, sent by the coordinator when a node
    /// (re)joins — application-level state transfer so a restarted node
    /// catches up with the replicated instance registry.
    RegistrySync {
        /// The serialized registry (see
        /// [`ClusterRegistry::export`](crate::ClusterRegistry::export)).
        registry: Value,
    },
}

impl AppPayload {
    /// The instance name this message concerns, if any.
    pub fn instance(&self) -> Option<&str> {
        match self {
            AppPayload::Deployed { name, .. }
            | AppPayload::Migrate { name, .. }
            | AppPayload::Released { name, .. }
            | AppPayload::Adopted { name, .. }
            | AppPayload::Quarantined { name, .. }
            | AppPayload::Undeployed { name } => Some(name),
            AppPayload::Draining { .. }
            | AppPayload::Hello { .. }
            | AppPayload::RegistrySync { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_accessor() {
        let m = AppPayload::Migrate {
            name: "a".into(),
            from: NodeId(0),
            to: NodeId(1),
        };
        assert_eq!(m.instance(), Some("a"));
        assert_eq!(AppPayload::Draining { node: NodeId(0) }.instance(), None);
        assert_eq!(m.clone(), m);
    }
}
