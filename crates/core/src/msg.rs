//! Cluster application messages (carried inside the GCS).

use dosgi_net::NodeId;
use dosgi_san::Value;

/// Application payloads exchanged between nodes through the group
/// communication layer. Control-plane messages that mutate the replicated
/// instance registry travel **totally ordered** so every node applies them
/// in the same sequence; announcements travel FIFO-reliable.
#[derive(Debug, Clone, PartialEq)]
pub enum AppPayload {
    /// (ordered) A new instance was deployed on `home`. Carries the
    /// serialized descriptor so any node can later re-materialize it.
    Deployed {
        /// The instance name.
        name: String,
        /// The serialized [`InstanceDescriptor`](dosgi_vosgi::InstanceDescriptor).
        descriptor: Value,
        /// The node it was deployed on.
        home: NodeId,
    },
    /// (ordered) A migration was decided: `name` moves `from → to`.
    Migrate {
        /// The instance to move.
        name: String,
        /// Current home.
        from: NodeId,
        /// Destination.
        to: NodeId,
    },
    /// (ordered) The source has stopped the instance and its state is in
    /// the SAN; the destination may adopt it.
    Released {
        /// The instance released.
        name: String,
        /// The destination that should adopt it.
        to: NodeId,
    },
    /// (ordered) A failover **claim**: `node` takes over an instance
    /// stranded on `prior_home`. Carrying the dead home makes the claim
    /// self-contained: it applies identically on nodes that have already
    /// orphaned the record locally and on nodes whose failure detector is
    /// still lagging — the first claim per instance in the total order wins
    /// everywhere.
    Adopted {
        /// The instance claimed.
        name: String,
        /// Its new home (the claimant).
        node: NodeId,
        /// The home the claimant observed as dead.
        prior_home: NodeId,
    },
    /// (ordered) A node exhausted its retry budget re-materializing an
    /// instance it claimed (persistent SAN faults): the instance is
    /// **quarantined** — kept in the registry, homed on the reporting node,
    /// but known-down. When the SAN heals, the home re-claims it with an
    /// `Adopted { prior_home: self }` and re-adopts from the SAN.
    Quarantined {
        /// The instance that could not be re-materialized.
        name: String,
        /// The node that holds (and will heal) it.
        node: NodeId,
    },
    /// (ordered) An instance was destroyed on purpose (undeploy).
    Undeployed {
        /// The instance removed.
        name: String,
    },
    /// (ordered) A node announces it is draining for a graceful shutdown;
    /// its instances will be migrated away before it leaves the group.
    Draining {
        /// The node shutting down.
        node: NodeId,
    },
    /// (ordered) A node announces it (re)started. Peers answer with a
    /// `RegistryDelta` computed against the carried digest, which lets a
    /// node that crashed and restarted *below the suspicion timeout* —
    /// invisible to the failure detector — learn the registry and re-adopt
    /// the instances it silently lost, without shipping records it already
    /// holds at the current revision.
    Hello {
        /// The (re)started node.
        node: NodeId,
        /// The sender's registry digest (`name → rev`, see
        /// [`ClusterRegistry::digest`](crate::ClusterRegistry::digest)).
        /// Empty after a fresh restart, in which case the answering delta
        /// degenerates to a full snapshot.
        digest: Value,
    },
    /// (ordered) Full registry state, sent by the coordinator when a node
    /// (re)joins — the anti-entropy fallback for healed minorities and
    /// joiners, whose divergence is unbounded. Per-record deltas
    /// (`RegistryDelta`) cover the common, bounded-divergence case.
    RegistrySync {
        /// The serialized registry (see
        /// [`ClusterRegistry::export`](crate::ClusterRegistry::export)).
        registry: Value,
    },
    /// (ordered) Per-record registry delta, answering a `Hello`: only the
    /// records the digest is missing or holds at an older revision travel,
    /// plus revision-guarded removals for records the digest names but the
    /// sender's registry no longer contains.
    RegistryDelta {
        /// Export-format records (see
        /// [`ClusterRegistry::export`](crate::ClusterRegistry::export))
        /// newer than — or absent from — the digest this delta answers.
        upserts: Value,
        /// A list of `{name, rev}` maps: records the digest named that the
        /// sender lacks. Applied only when the receiver's revision still
        /// equals `rev` (a CAS guard — revisions restart at 1 after an
        /// undeploy + redeploy, so a plain `<=` check would be unsound).
        removes: Value,
    },
}

impl AppPayload {
    /// The instance name this message concerns, if any.
    pub fn instance(&self) -> Option<&str> {
        match self {
            AppPayload::Deployed { name, .. }
            | AppPayload::Migrate { name, .. }
            | AppPayload::Released { name, .. }
            | AppPayload::Adopted { name, .. }
            | AppPayload::Quarantined { name, .. }
            | AppPayload::Undeployed { name } => Some(name),
            AppPayload::Draining { .. }
            | AppPayload::Hello { .. }
            | AppPayload::RegistrySync { .. }
            | AppPayload::RegistryDelta { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_accessor() {
        let m = AppPayload::Migrate {
            name: "a".into(),
            from: NodeId(0),
            to: NodeId(1),
        };
        assert_eq!(m.instance(), Some("a"));
        assert_eq!(AppPayload::Draining { node: NodeId(0) }.instance(), None);
        assert_eq!(
            AppPayload::Hello {
                node: NodeId(0),
                digest: Value::map(),
            }
            .instance(),
            None
        );
        assert_eq!(
            AppPayload::RegistryDelta {
                upserts: Value::List(Vec::new()),
                removes: Value::List(Vec::new()),
            }
            .instance(),
            None
        );
        assert_eq!(m.clone(), m);
    }
}
