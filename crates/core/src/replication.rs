//! Running-context replication — the paper's future work, implemented.
//!
//! §3.2 closes with: *"In the future we intend to address this by further
//! instrumenting the platform to be able to lively migrate the running
//! context of the bundles … having the running context of the bundle
//! replicated on other nodes and doing instantaneous failover in case of
//! node failures. Naturally this approach has many issues to solve, namely
//! the costs and feasibility."*
//!
//! Experiment **E9** quantifies exactly that cost/benefit trade-off across
//! four durability strategies for a stateful bundle:
//!
//! | strategy | context lost on crash | per-update overhead | failover extra cost |
//! |---|---|---|---|
//! | restart (paper baseline, [`COUNTER_ON_STOP`]) | everything since start | none | full re-materialization |
//! | periodic checkpoint ([`COUNTER_CHECKPOINT`]) | ≤ one checkpoint period | 1/k SAN writes | full re-materialization |
//! | write-through ([`COUNTER_WRITE_THROUGH`]) | nothing | one SAN write per update | full re-materialization |
//! | hot standby ([`prepare_standby`]) | per chosen durability | standby memory on another node | start-only (skips install + SAN restore) |
//!
//! [`COUNTER_ON_STOP`]: crate::workloads::COUNTER_ON_STOP
//! [`COUNTER_CHECKPOINT`]: crate::workloads::COUNTER_CHECKPOINT
//! [`COUNTER_WRITE_THROUGH`]: crate::workloads::COUNTER_WRITE_THROUGH

use crate::{CoreError, DosgiCluster};
use dosgi_vosgi::InstanceDescriptor;

/// Pre-creates `name`'s bundles on node `standby` without starting them: a
/// **hot standby**. If `standby` later adopts the instance (failover or
/// migration), it skips the install-and-restore half of re-materialization
/// and pays only the start sweep — the "instantaneous failover" direction
/// the paper sketches.
///
/// # Errors
///
/// [`CoreError::UnknownInstance`] when the registry has no such instance,
/// [`CoreError::NoRunningNodes`] when no node is up to read the registry
/// from, [`CoreError::NodeUnavailable`] when the standby node is down, and
/// instance-manager errors (e.g. the standby already hosts it).
pub fn prepare_standby(
    cluster: &mut DosgiCluster,
    name: &str,
    standby: usize,
) -> Result<(), CoreError> {
    let descriptor = {
        let node = cluster
            .running_nodes()
            .first()
            .copied()
            .and_then(|i| cluster.node(i))
            .ok_or(CoreError::NoRunningNodes)?;
        let rec = node
            .registry()
            .record(name)
            .ok_or_else(|| CoreError::UnknownInstance(name.to_owned()))?;
        InstanceDescriptor::from_value(&rec.descriptor).map_err(CoreError::BadMigration)?
    };
    let node = cluster
        .node_mut(standby)
        .ok_or(CoreError::NodeUnavailable(dosgi_net::NodeId(
            standby as u32,
        )))?;
    node.manager_mut().create_instance(descriptor)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConfig, DosgiCluster};

    #[test]
    fn standby_with_no_running_nodes_is_a_clean_error() {
        // Regression: this used to fabricate `NodeUnavailable(n0)` — blaming
        // a node that may not even exist — instead of naming the real
        // condition.
        let mut c = DosgiCluster::new(2, ClusterConfig::default(), 7);
        c.crash_node(0);
        c.crash_node(1);
        assert_eq!(
            prepare_standby(&mut c, "web", 0),
            Err(CoreError::NoRunningNodes)
        );
    }
}
