//! Deterministic placement: where does an instance go?
//!
//! §3.2: after a failure *"the Migration Module (of the remaining nodes)
//! should use the knowledge about that node to redeploy the virtual
//! instances among the available nodes in a decentralized way."*
//!
//! Decentralization here is achieved by determinism: every survivor holds
//! the same replicated registry and the same agreed view, and placement is
//! a pure function of those two inputs — so each node computes the global
//! assignment independently, arrives at the same answer, and simply adopts
//! the instances assigned to itself. No election, no coordinator, no extra
//! round trips.

use crate::registry::ClusterRegistry;
use dosgi_net::NodeId;
use std::collections::BTreeMap;

/// The placement disciplines the Autonomic Module can choose between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementPolicy {
    /// Spread instances evenly: always the candidate currently hosting the
    /// fewest placed instances (ties to the lowest node id).
    #[default]
    FewestInstances,
    /// Deterministic round-robin by instance-name hash — cheapest, ignores
    /// load.
    HashSpread,
    /// Pack instances onto the lowest-id nodes (consolidation mode: frees
    /// the highest-id nodes for hibernation — the paper's power-saving
    /// side effect).
    Consolidate,
}

impl PlacementPolicy {
    /// Chooses a destination for `instance` among `candidates` (must be
    /// non-empty, sorted), given the replicated registry and an
    /// accumulating count of assignments made earlier in this same
    /// placement round (`pending` — so a batch of orphans spreads instead
    /// of all landing on the same least-loaded node).
    pub fn choose(
        self,
        instance: &str,
        candidates: &[NodeId],
        registry: &ClusterRegistry,
        pending: &BTreeMap<NodeId, usize>,
    ) -> Option<NodeId> {
        if candidates.is_empty() {
            return None;
        }
        match self {
            PlacementPolicy::FewestInstances => {
                let load = registry.load_by_node();
                candidates
                    .iter()
                    .min_by_key(|n| {
                        load.get(n).copied().unwrap_or(0) + pending.get(n).copied().unwrap_or(0)
                    })
                    .copied()
            }
            PlacementPolicy::HashSpread => {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in instance.as_bytes() {
                    h ^= u64::from(*b);
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                Some(candidates[(h % candidates.len() as u64) as usize])
            }
            PlacementPolicy::Consolidate => candidates.first().copied(),
        }
    }

    /// Assigns every `orphan` to a candidate, spreading within the batch.
    /// Returns `(instance, destination)` pairs in input order.
    pub fn assign_all(
        self,
        orphans: &[String],
        candidates: &[NodeId],
        registry: &ClusterRegistry,
    ) -> Vec<(String, NodeId)> {
        let mut pending: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut out = Vec::with_capacity(orphans.len());
        for name in orphans {
            if let Some(dest) = self.choose(name, candidates, registry, &pending) {
                *pending.entry(dest).or_insert(0) += 1;
                out.push((name.clone(), dest));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::AppPayload;
    use dosgi_san::Value;

    fn registry_with(homes: &[(&str, u32)]) -> ClusterRegistry {
        let mut r = ClusterRegistry::new();
        for (name, home) in homes {
            r.apply(&AppPayload::Deployed {
                name: (*name).to_owned(),
                descriptor: Value::Null,
                home: NodeId(*home),
            });
        }
        r
    }

    #[test]
    fn fewest_instances_picks_least_loaded() {
        let r = registry_with(&[("a", 0), ("b", 0), ("c", 1)]);
        let candidates = vec![NodeId(0), NodeId(1), NodeId(2)];
        let dest = PlacementPolicy::FewestInstances
            .choose("x", &candidates, &r, &BTreeMap::new())
            .unwrap();
        assert_eq!(dest, NodeId(2), "empty node wins");
    }

    #[test]
    fn batch_assignment_spreads() {
        let r = registry_with(&[]);
        let candidates = vec![NodeId(0), NodeId(1)];
        let orphans: Vec<String> = (0..4).map(|i| format!("i{i}")).collect();
        let assignment = PlacementPolicy::FewestInstances.assign_all(&orphans, &candidates, &r);
        let on0 = assignment.iter().filter(|(_, n)| *n == NodeId(0)).count();
        let on1 = assignment.iter().filter(|(_, n)| *n == NodeId(1)).count();
        assert_eq!(on0, 2);
        assert_eq!(on1, 2);
    }

    #[test]
    fn hash_spread_is_deterministic() {
        let r = registry_with(&[]);
        let candidates = vec![NodeId(0), NodeId(1), NodeId(2)];
        let a = PlacementPolicy::HashSpread.choose("acme-web", &candidates, &r, &BTreeMap::new());
        let b = PlacementPolicy::HashSpread.choose("acme-web", &candidates, &r, &BTreeMap::new());
        assert_eq!(a, b);
        // Different names spread (statistically: over 32 names, >1 target).
        let spread: std::collections::HashSet<NodeId> = (0..32)
            .filter_map(|i| {
                PlacementPolicy::HashSpread.choose(
                    &format!("inst-{i}"),
                    &candidates,
                    &r,
                    &BTreeMap::new(),
                )
            })
            .collect();
        assert!(spread.len() > 1);
    }

    #[test]
    fn consolidate_packs_lowest_node() {
        let r = registry_with(&[]);
        let candidates = vec![NodeId(1), NodeId(3)];
        for name in ["a", "b", "c"] {
            assert_eq!(
                PlacementPolicy::Consolidate.choose(name, &candidates, &r, &BTreeMap::new()),
                Some(NodeId(1))
            );
        }
    }

    #[test]
    fn empty_candidates_yield_none() {
        let r = registry_with(&[]);
        for p in [
            PlacementPolicy::FewestInstances,
            PlacementPolicy::HashSpread,
            PlacementPolicy::Consolidate,
        ] {
            assert_eq!(p.choose("x", &[], &r, &BTreeMap::new()), None);
        }
        assert!(PlacementPolicy::default() == PlacementPolicy::FewestInstances);
    }
}
