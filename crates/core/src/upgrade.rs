//! Cluster-wide rolling bundle upgrades (E14).
//!
//! [`UpgradeWave`] composes the node-local hot-swap path
//! ([`DosgiNode::request_upgrade`](crate::DosgiNode::request_upgrade))
//! into a one-node-at-a-time wave over a serving cluster: the in-flight
//! node is drained at the traffic layer (an [`IpvsDirector`] — abstracted
//! behind [`WaveHooks`] so the wave itself stays traffic-layer agnostic),
//! every local instance hosting the target bundle is hot-swapped in place,
//! and the node is un-drained before the wave moves on. Because the drain
//! is work-conserving (queued requests still complete) and the per-bundle
//! blackout is µs-scale, a wave over a loaded cluster drops **zero**
//! in-SLO requests — the E14 deliverable.
//!
//! The wave is a *non-blocking* state machine stepped once per driver
//! iteration, deliberately: a nemesis can kill the in-flight node mid-wave
//! and the wave must skip it (per-node deadline) rather than wedge.
//!
//! [`IpvsDirector`]: dosgi_ipvs::IpvsDirector

use crate::cluster::DosgiCluster;
use crate::events::NodeEvent;
use dosgi_net::{NodeId, SimDuration, SimTime};
use dosgi_osgi::{BundleManifest, Version};
use dosgi_telemetry::TraceContext;

/// Traffic-layer callbacks around each node's upgrade window. The E14
/// driver backs these with an [`IpvsDirector`](dosgi_ipvs::IpvsDirector)
/// (`drain_node_traced` / `undrain_node_traced`); chaos runs use
/// [`NoTrafficHooks`].
pub trait WaveHooks {
    /// Steer new traffic away from `node` (queued work still completes).
    fn drain(&mut self, node: NodeId, now_us: u64);
    /// Re-admit traffic to `node`. `ctx` is the completed upgrade's trace
    /// context when one exists — implementations that record spans should
    /// join it so "un-drain after adopt" stays causally checkable.
    fn undrain(&mut self, node: NodeId, ctx: Option<TraceContext>, now_us: u64);
}

/// Hooks that do nothing (no traffic layer in front of the cluster).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTrafficHooks;

impl WaveHooks for NoTrafficHooks {
    fn drain(&mut self, _node: NodeId, _now_us: u64) {}
    fn undrain(&mut self, _node: NodeId, _ctx: Option<TraceContext>, _now_us: u64) {}
}

/// One completed per-instance upgrade inside a wave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveUpgrade {
    /// The instance whose bundle was swapped.
    pub instance: String,
    /// The node it happened on.
    pub node: usize,
    /// Version before.
    pub from: Version,
    /// Version after.
    pub to: Version,
    /// The modeled per-upgrade blackout (µs-scale).
    pub blackout: SimDuration,
}

/// The outcome of a finished wave.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaveReport {
    /// Every successful per-instance upgrade, in completion order.
    pub upgraded: Vec<WaveUpgrade>,
    /// Per-instance failures (`(instance, error)`).
    pub failed: Vec<(String, String)>,
    /// Nodes skipped because they died or blew the per-node deadline.
    pub skipped_nodes: Vec<usize>,
}

enum WaveStep {
    /// About to drain the current node and queue its upgrades.
    Drain,
    /// Waiting for the queued upgrades to land (or the deadline).
    Wait { expected: Vec<String> },
    /// All nodes visited.
    Finished,
}

/// A rolling upgrade wave: visits `nodes` in order, upgrading every local
/// instance that hosts the target bundle to `manifest`. Drive it with
/// [`step`](Self::step) once per simulation iteration.
pub struct UpgradeWave {
    manifest: BundleManifest,
    nodes: Vec<usize>,
    pos: usize,
    step: WaveStep,
    deadline: SimTime,
    node_deadline: SimDuration,
    /// The most recently completed instance on the current node — its
    /// trace context parents the un-drain span.
    last_done: Option<String>,
    report: WaveReport,
}

impl UpgradeWave {
    /// A wave over `nodes` (visited in the given order) swapping the
    /// bundle named by `manifest.symbolic_name` to `manifest`. A node that
    /// has not finished within `node_deadline` (died mid-upgrade, wedged
    /// SAN) is skipped so the wave cannot stall the cluster.
    pub fn new(manifest: BundleManifest, nodes: Vec<usize>, node_deadline: SimDuration) -> Self {
        UpgradeWave {
            manifest,
            nodes,
            pos: 0,
            step: WaveStep::Drain,
            deadline: SimTime::ZERO,
            node_deadline,
            last_done: None,
            report: WaveReport::default(),
        }
    }

    /// True once every node has been visited.
    pub fn is_done(&self) -> bool {
        matches!(self.step, WaveStep::Finished)
    }

    /// The report so far (complete once [`is_done`](Self::is_done)).
    pub fn report(&self) -> &WaveReport {
        &self.report
    }

    /// Consumes the wave, returning its report.
    pub fn into_report(self) -> WaveReport {
        self.report
    }

    /// Advances the wave by one increment. Call once per driver iteration,
    /// after [`DosgiCluster::step`] with the events that step produced
    /// (from [`DosgiCluster::take_events`]). Returns `true` when the wave
    /// has finished.
    pub fn step(
        &mut self,
        cluster: &mut DosgiCluster,
        events: &[(NodeId, NodeEvent)],
        hooks: &mut dyn WaveHooks,
    ) -> bool {
        let now = cluster.now();
        let now_us = now.as_micros();
        match &mut self.step {
            WaveStep::Finished => return true,
            WaveStep::Drain => {
                let Some(&idx) = self.nodes.get(self.pos) else {
                    self.step = WaveStep::Finished;
                    return true;
                };
                if cluster.node(idx).is_none() {
                    self.report.skipped_nodes.push(idx);
                    self.advance(hooks, idx, now_us);
                    return self.is_done();
                }
                hooks.drain(NodeId(idx as u32), now_us);
                let sn = self.manifest.symbolic_name.to_string();
                let targets: Vec<String> = cluster
                    .node(idx)
                    .map(|n| {
                        n.manager()
                            .instances()
                            .filter(|i| i.descriptor.bundles.contains(&sn))
                            .map(|i| i.descriptor.name.clone())
                            .collect()
                    })
                    .unwrap_or_default();
                if let Some(node) = cluster.node_mut(idx) {
                    for t in &targets {
                        if let Err(e) = node.request_upgrade(t, self.manifest.clone(), now) {
                            self.report.failed.push((t.clone(), e.to_string()));
                        }
                    }
                }
                self.deadline = now + self.node_deadline;
                self.last_done = None;
                self.step = WaveStep::Wait { expected: targets };
            }
            WaveStep::Wait { expected } => {
                let idx = self.nodes[self.pos];
                for (nid, ev) in events {
                    if nid.0 as usize != idx {
                        continue;
                    }
                    match ev {
                        NodeEvent::BundleUpgraded {
                            name,
                            from,
                            to,
                            blackout,
                            ..
                        } if expected.contains(name) => {
                            expected.retain(|n| n != name);
                            self.last_done = Some(name.clone());
                            self.report.upgraded.push(WaveUpgrade {
                                instance: name.clone(),
                                node: idx,
                                from: *from,
                                to: *to,
                                blackout: *blackout,
                            });
                        }
                        NodeEvent::UpgradeFailed { name, error, .. } if expected.contains(name) => {
                            expected.retain(|n| n != name);
                            self.report.failed.push((name.clone(), error.clone()));
                        }
                        _ => {}
                    }
                }
                let node_dead = cluster.node(idx).is_none();
                if expected.is_empty() {
                    let ctx = match (&self.last_done, cluster.node(idx)) {
                        (Some(done), Some(node)) => node.upgrade_trace_context(done),
                        _ => None,
                    };
                    self.advance_with_ctx(hooks, idx, ctx, now_us);
                } else if node_dead || now >= self.deadline {
                    for name in expected.drain(..) {
                        self.report.failed.push((
                            name,
                            if node_dead {
                                "node died mid-upgrade".to_owned()
                            } else {
                                "upgrade deadline exceeded".to_owned()
                            },
                        ));
                    }
                    self.report.skipped_nodes.push(idx);
                    self.advance(hooks, idx, now_us);
                }
            }
        }
        self.is_done()
    }

    fn advance(&mut self, hooks: &mut dyn WaveHooks, idx: usize, now_us: u64) {
        self.advance_with_ctx(hooks, idx, None, now_us);
    }

    fn advance_with_ctx(
        &mut self,
        hooks: &mut dyn WaveHooks,
        idx: usize,
        ctx: Option<TraceContext>,
        now_us: u64,
    ) {
        // Always lift the drain — even for a skipped/dead node, so a later
        // restart comes back into rotation without manual intervention.
        hooks.undrain(NodeId(idx as u32), ctx, now_us);
        self.pos += 1;
        self.step = if self.pos >= self.nodes.len() {
            WaveStep::Finished
        } else {
            WaveStep::Drain
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, DosgiCluster};
    use crate::workloads;
    use dosgi_net::SimDuration;

    fn wave_cluster(n: usize, instances: usize) -> DosgiCluster {
        let mut cluster = DosgiCluster::new(n, ClusterConfig::default(), 99);
        for i in 0..instances {
            cluster
                .deploy(
                    workloads::counter_instance_with(
                        &format!("cust-{i}"),
                        &format!("ctr-{i}"),
                        workloads::COUNTER_WRITE_THROUGH,
                    ),
                    i % n,
                )
                .expect("deploy");
        }
        cluster.run_for(SimDuration::from_secs(1));
        cluster
    }

    fn drive(cluster: &mut DosgiCluster, wave: &mut UpgradeWave, limit: SimDuration) {
        let deadline = cluster.now() + limit;
        let mut hooks = NoTrafficHooks;
        while cluster.now() < deadline {
            cluster.step();
            let events = cluster.take_events();
            if wave.step(cluster, &events, &mut hooks) {
                return;
            }
        }
        panic!("wave did not finish within {limit:?}");
    }

    #[test]
    fn wave_upgrades_every_instance_without_downtime() {
        let mut cluster = wave_cluster(3, 6);
        // Touch every counter so there is real state to hand off.
        for i in 0..6 {
            let name = format!("ctr-{i}");
            for _ in 0..=i {
                cluster
                    .call(
                        &name,
                        workloads::COUNTER_SERVICE,
                        "incr",
                        &dosgi_san::Value::Null,
                    )
                    .expect("increment");
            }
        }
        let manifest = workloads::counter_manifest_at(
            workloads::COUNTER_WRITE_THROUGH,
            dosgi_osgi::Version::new(1, 1, 0),
        );
        let mut wave = UpgradeWave::new(manifest, vec![0, 1, 2], SimDuration::from_secs(10));
        drive(&mut cluster, &mut wave, SimDuration::from_secs(30));
        let report = wave.into_report();
        assert_eq!(report.upgraded.len(), 6, "failed: {:?}", report.failed);
        assert!(report.failed.is_empty());
        assert!(report.skipped_nodes.is_empty());
        for u in &report.upgraded {
            assert_eq!(u.from, dosgi_osgi::Version::new(1, 0, 0));
            assert_eq!(u.to, dosgi_osgi::Version::new(1, 1, 0));
            assert!(
                u.blackout < SimDuration::from_millis(5),
                "blackout stays µs-scale: {:?}",
                u.blackout
            );
        }
        // State survived the swap: counter i was incremented i+1 times.
        for i in 0..6 {
            let got = cluster
                .call(
                    &format!("ctr-{i}"),
                    workloads::COUNTER_SERVICE,
                    "get",
                    &dosgi_san::Value::Null,
                )
                .expect("get after upgrade");
            assert_eq!(got, dosgi_san::Value::Int(i as i64 + 1));
        }
        // And every instance still probes as serving.
        for i in 0..6 {
            assert!(cluster.probe(&format!("ctr-{i}")));
        }
    }

    /// The `claim_traces` discipline, mirrored for upgrades: an upgrade
    /// that fails transiently against a faulty SAN is retried with
    /// backoff, and every retry continues the SAME open `upgrade/` root —
    /// when the SAN heals and the swap lands, exactly one upgrade root
    /// exists in the trace and nothing is left open. (Regression test for
    /// the one-leaked-span-per-retry failure mode.)
    #[test]
    fn san_faulted_upgrade_retries_reuse_one_trace_root() {
        let mut cluster = wave_cluster(2, 1);
        cluster
            .call(
                "ctr-0",
                workloads::COUNTER_SERVICE,
                "incr",
                &dosgi_san::Value::Null,
            )
            .expect("incr");
        let home = cluster.home_of("ctr-0").expect("placed");
        cluster.set_fault_plan(dosgi_san::FaultPlan::flaky(1.0, 7));
        let manifest = workloads::counter_manifest_at(
            workloads::COUNTER_WRITE_THROUGH,
            dosgi_osgi::Version::new(1, 1, 0),
        );
        cluster.upgrade_bundle("ctr-0", manifest).expect("request");
        // Let at least two retries fail against the dead SAN.
        let mut retries = 0;
        let deadline = cluster.now() + SimDuration::from_secs(5);
        while retries < 2 && cluster.now() < deadline {
            cluster.step();
            for (_, ev) in cluster.take_events() {
                if matches!(ev, NodeEvent::UpgradeRetried { .. }) {
                    retries += 1;
                }
            }
        }
        assert!(retries >= 2, "expected transient retries, got {retries}");
        cluster.clear_faults();
        let deadline = cluster.now() + SimDuration::from_secs(10);
        let mut upgraded = false;
        while !upgraded && cluster.now() < deadline {
            cluster.step();
            for (_, ev) in cluster.take_events() {
                if matches!(ev, NodeEvent::BundleUpgraded { .. }) {
                    upgraded = true;
                }
            }
        }
        assert!(upgraded, "upgrade lands once the SAN heals");
        let recorder = cluster.node(home).expect("alive").recorder();
        let roots: Vec<_> = recorder
            .events()
            .into_iter()
            .filter(|e| e.name.starts_with("upgrade/"))
            .collect();
        assert_eq!(
            roots.len(),
            1,
            "retries reuse the open root instead of minting per attempt: {roots:?}"
        );
        assert!(
            recorder
                .open_events()
                .iter()
                .all(|e| !e.name.starts_with("upgrade/")
                    && !e.name.starts_with("u_persist/")
                    && !e.name.starts_with("u_quiesce/")
                    && !e.name.starts_with("u_adopt/")),
            "no upgrade span leaks open after completion"
        );
        // The handoff phase children all landed under that one root.
        let events = recorder.events();
        let root = &roots[0];
        for phase in ["u_quiesce/", "u_persist/", "u_adopt/"] {
            assert!(
                events
                    .iter()
                    .any(|e| e.name.starts_with(phase) && e.trace_id == root.trace_id),
                "{phase} child recorded in the upgrade trace"
            );
        }
        // State survived the faulted handoff.
        let got = cluster
            .call(
                "ctr-0",
                workloads::COUNTER_SERVICE,
                "get",
                &dosgi_san::Value::Null,
            )
            .expect("get");
        assert_eq!(got, dosgi_san::Value::Int(1));
    }

    #[test]
    fn wave_skips_a_node_killed_mid_upgrade() {
        let mut cluster = wave_cluster(3, 3);
        let manifest = workloads::counter_manifest_at(
            workloads::COUNTER_WRITE_THROUGH,
            dosgi_osgi::Version::new(1, 2, 0),
        );
        let mut wave = UpgradeWave::new(manifest, vec![0, 1, 2], SimDuration::from_secs(5));
        let mut hooks = NoTrafficHooks;
        // Kick the wave into node 0's Wait state, then kill node 0.
        cluster.step();
        let events = cluster.take_events();
        wave.step(&mut cluster, &events, &mut hooks);
        cluster.crash_node(0);
        let deadline = cluster.now() + SimDuration::from_secs(40);
        while cluster.now() < deadline && !wave.is_done() {
            cluster.step();
            let events = cluster.take_events();
            wave.step(&mut cluster, &events, &mut hooks);
        }
        assert!(wave.is_done(), "wave must not wedge on a dead node");
        let report = wave.into_report();
        assert!(
            report.skipped_nodes.contains(&0),
            "dead node skipped: {report:?}"
        );
        // The other two nodes' instances still upgraded (ctr-0 may have
        // failed over to one of them after the crash and been missed by
        // this wave — that is the expected at-most-once wave semantics).
        let upgraded_nodes: std::collections::BTreeSet<usize> =
            report.upgraded.iter().map(|u| u.node).collect();
        assert!(upgraded_nodes.contains(&1) && upgraded_nodes.contains(&2));
        // The cluster converged: every instance is serving somewhere.
        cluster.run_for(SimDuration::from_secs(5));
        for i in 0..3 {
            assert!(cluster.probe(&format!("ctr-{i}")), "ctr-{i} serving");
        }
    }
}
