//! # Real-clock cluster runtime
//!
//! [`DosgiCluster`](crate::DosgiCluster) drives every node from one loop
//! against the deterministic [`SimNet`](dosgi_net::SimNet) — perfect for
//! chaos sweeps and byte-stable trace fingerprints, useless for measuring
//! how the hot paths behave under *actual* concurrency.
//!
//! [`RealCluster`] is the second backend behind the same node logic: each
//! [`DosgiNode`] moves onto its own `std::thread`, owns a
//! [`RealEndpoint`](dosgi_net::RealEndpoint) (lock-free `mpsc` links, a
//! shared monotonic [`RealClock`](dosgi_net::RealClock)), and ticks the
//! identical protocol code the simulator runs. Nothing in `DosgiNode` knows
//! which backend it is on — the only coupling is the [`Fabric`] trait.
//!
//! ## Command plane
//!
//! Callers talk to worker threads through per-node command channels; each
//! request carries its own reply channel. The worker loop is:
//!
//! 1. drain pending commands (deploy / migrate / call / probe / …),
//! 2. `node.tick(&mut endpoint, endpoint.now())` — heartbeats, view
//!    changes, total-order delivery, adoption, SLA sweeps,
//! 3. park briefly so an idle cluster does not spin at 100% CPU.
//!
//! Convergence is *eventual* — a deploy returns as soon as the home node
//! accepted it; use [`RealCluster::await_running`] to wait for the ordered
//! registration to propagate.
//!
//! ## Time
//!
//! All nodes share one [`RealClock`]; `SimTime` values are microseconds
//! since cluster start, so GCS timing configs tuned for the simulator
//! (heartbeats, failover deadlines) carry over unchanged. Only node 0's
//! worker stamps the shared store's fault clock, keeping that clock
//! monotonic without cross-thread coordination.

use crate::node::NodeConfig;
use crate::CoreError;
use crate::DosgiNode;
use crate::NodeEvent;
use dosgi_net::{Clock, Fabric, NodeId, RealClock, RealNet, SimTime};
use dosgi_osgi::RegistryReader;
use dosgi_san::{BackendKind, SharedStore, Value};
use dosgi_telemetry::HealthState;
use dosgi_vosgi::InstanceDescriptor;
use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Wire type the nodes exchange (same alias the sim cluster uses).
type Wire = dosgi_gcs::GcsWire<crate::AppPayload>;

/// One request to a node's worker thread. Every variant carries a reply
/// channel; `recv` on the caller side blocks until the worker's next loop
/// iteration services it.
enum Command {
    Deploy(InstanceDescriptor, Sender<Result<(), CoreError>>),
    Migrate(String, NodeId, Sender<Result<(), CoreError>>),
    Call(
        String,
        String,
        String,
        Value,
        Sender<Result<Value, CoreError>>,
    ),
    Probe(String, Sender<bool>),
    Health(Sender<HealthState>),
    Reader(Sender<RegistryReader>),
    TakeEvents(Sender<Vec<NodeEvent>>),
    Shutdown,
}

/// A cluster of [`DosgiNode`]s, one OS thread per node, connected by a
/// [`RealNet`] and paced by a shared monotonic [`RealClock`].
pub struct RealCluster {
    ids: Vec<NodeId>,
    cmds: Vec<Sender<Command>>,
    workers: Vec<JoinHandle<()>>,
    store: SharedStore,
    clock: RealClock,
}

impl RealCluster {
    /// Spins up `n` nodes with identical configs on an in-memory store.
    pub fn new(n: usize, config: NodeConfig) -> Self {
        Self::with_store(n, config, SharedStore::with_kind(BackendKind::Map))
    }

    /// Spins up `n` nodes sharing `store`. Each node is constructed *on*
    /// its worker thread (the node itself never crosses threads), then
    /// ticked until [`shutdown`](Self::shutdown).
    pub fn with_store(n: usize, config: NodeConfig, store: SharedStore) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        let mut net: RealNet<Wire> = RealNet::new();
        let ids: Vec<NodeId> = (0..n).map(|_| net.register_node()).collect();
        let clock = net.clock().clone();
        let mut cmds = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for &id in &ids {
            let (tx, rx) = channel::<Command>();
            let mut endpoint = net.endpoint(id);
            let peers = ids.clone();
            let cfg = config.clone();
            let node_store = store.clone();
            let handle = std::thread::Builder::new()
                .name(format!("dosgi-node-{id}"))
                .spawn(move || {
                    let boot = endpoint.now();
                    let mut node = DosgiNode::new(id, peers, cfg, node_store.clone(), boot);
                    let is_timekeeper = id == NodeId(0);
                    loop {
                        // Service every queued command before the tick so a
                        // burst of requests pays one protocol round, not one
                        // round each.
                        let mut shutdown = false;
                        while let Ok(cmd) = rx.try_recv() {
                            match cmd {
                                Command::Deploy(desc, reply) => {
                                    let now = endpoint.now();
                                    let _ = reply.send(node.deploy(desc, &mut endpoint, now));
                                }
                                Command::Migrate(name, to, reply) => {
                                    let _ = reply.send(node.migrate_away(&name, to, &mut endpoint));
                                }
                                Command::Call(name, interface, method, arg, reply) => {
                                    let _ = reply
                                        .send(node.call_local(&name, &interface, &method, &arg));
                                }
                                Command::Probe(name, reply) => {
                                    let _ = reply.send(node.probe_local(&name));
                                }
                                Command::Health(reply) => {
                                    let _ = reply.send(node_health(&node));
                                }
                                Command::Reader(reply) => {
                                    let _ = reply.send(node.registry_reader());
                                }
                                Command::TakeEvents(reply) => {
                                    let _ = reply.send(node.take_events());
                                }
                                Command::Shutdown => shutdown = true,
                            }
                        }
                        if shutdown {
                            break;
                        }
                        let now = endpoint.now();
                        if is_timekeeper {
                            node_store.set_now(now);
                        }
                        node.tick(&mut endpoint, now);
                        // Events nobody collects must not grow without
                        // bound on a long-lived cluster.
                        if node.events_len() > 16_384 {
                            let _ = node.take_events();
                        }
                        std::thread::sleep(Duration::from_micros(200));
                    }
                })
                .expect("spawn node worker");
            cmds.push(tx);
            workers.push(handle);
        }
        RealCluster {
            ids,
            cmds,
            workers,
            store,
            clock,
        }
    }

    /// Node ids, in spawn order.
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// The shared SAN handle.
    pub fn store(&self) -> &SharedStore {
        &self.store
    }

    /// Microseconds since cluster start, from the shared monotonic clock.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn cmd(&self, on: NodeId) -> &Sender<Command> {
        &self.cmds[on.0 as usize]
    }

    /// Deploys `descriptor` on node `on`; returns once the home node
    /// accepted it (cluster-wide registration follows via total order).
    pub fn deploy(&self, on: NodeId, descriptor: InstanceDescriptor) -> Result<(), CoreError> {
        let (tx, rx) = channel();
        self.cmd(on)
            .send(Command::Deploy(descriptor, tx))
            .expect("worker alive");
        rx.recv().expect("worker replies")
    }

    /// Requests migration of `name` from `from` to `to`.
    pub fn migrate(&self, from: NodeId, name: &str, to: NodeId) -> Result<(), CoreError> {
        let (tx, rx) = channel();
        self.cmd(from)
            .send(Command::Migrate(name.to_owned(), to, tx))
            .expect("worker alive");
        rx.recv().expect("worker replies")
    }

    /// Invokes `interface::method(arg)` on instance `name`, which must be
    /// placed on node `on`.
    pub fn call(
        &self,
        on: NodeId,
        name: &str,
        interface: &str,
        method: &str,
        arg: &Value,
    ) -> Result<Value, CoreError> {
        let (tx, rx) = channel();
        self.cmd(on)
            .send(Command::Call(
                name.to_owned(),
                interface.to_owned(),
                method.to_owned(),
                arg.clone(),
                tx,
            ))
            .expect("worker alive");
        rx.recv().expect("worker replies")
    }

    /// True if instance `name` is currently running on node `on`.
    pub fn probe(&self, on: NodeId, name: &str) -> bool {
        let (tx, rx) = channel();
        self.cmd(on)
            .send(Command::Probe(name.to_owned(), tx))
            .expect("worker alive");
        rx.recv().expect("worker replies")
    }

    /// Node `on`'s current health, computed on the worker thread from the
    /// node's own view: quarantined instances homed there and total-order
    /// backlog pressure (see [`node_health`]). Mirrors the sim driver's
    /// [`DosgiCluster::health_of`](crate::DosgiCluster::health_of) on the
    /// real-clock command plane.
    pub fn health(&self, on: NodeId) -> HealthState {
        let (tx, rx) = channel();
        self.cmd(on)
            .send(Command::Health(tx))
            .expect("worker alive");
        rx.recv().expect("worker replies")
    }

    /// Every node's health, indexed like [`ids`](Self::ids).
    pub fn health_scoreboard(&self) -> Vec<HealthState> {
        self.ids.iter().map(|&id| self.health(id)).collect()
    }

    /// A concurrent read handle onto node `on`'s host service registry.
    /// The handle outlives the request and reads without stopping the node.
    pub fn registry_reader(&self, on: NodeId) -> RegistryReader {
        let (tx, rx) = channel();
        self.cmd(on)
            .send(Command::Reader(tx))
            .expect("worker alive");
        rx.recv().expect("worker replies")
    }

    /// Drains node `on`'s accumulated events.
    pub fn take_events(&self, on: NodeId) -> Vec<NodeEvent> {
        let (tx, rx) = channel();
        self.cmd(on)
            .send(Command::TakeEvents(tx))
            .expect("worker alive");
        rx.recv().expect("worker replies")
    }

    /// Polls until `name` probes true on `on`, or `timeout` elapses.
    /// Returns whether the instance was observed running.
    pub fn await_running(&self, on: NodeId, name: &str, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.probe(on, name) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stops every worker and joins the threads. Called implicitly on drop;
    /// explicit shutdown surfaces worker panics to the caller.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        for tx in &self.cmds {
            // A worker that already exited (panic) has dropped its receiver;
            // join below will surface that.
            let _ = tx.send(Command::Shutdown);
        }
        for handle in self.workers.drain(..) {
            if let Err(panic) = handle.join() {
                if std::thread::panicking() {
                    continue; // don't double-panic out of Drop
                }
                std::panic::resume_unwind(panic);
            }
        }
    }
}

impl Drop for RealCluster {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// Total-order backlog regarded as "100% queue pressure" when deriving a
/// node's health. A healthy node drains its GCS pipeline every tick; a
/// backlog in the hundreds means delivery has wedged behind a partition
/// or a slow peer, which is exactly what the scoreboard should surface.
const GCS_BACKLOG_NOMINAL: usize = 256;

/// Node-local health, computed from state the worker thread already owns:
/// no alerts feed in (SLO engines attach to the sim driver's scraper, not
/// to individual real-clock workers), so health here is quarantined
/// instances homed on this node plus total-order backlog pressure scaled
/// against [`GCS_BACKLOG_NOMINAL`].
fn node_health(node: &DosgiNode) -> HealthState {
    let id = node.id();
    let quarantined = node
        .registry()
        .records()
        .filter(|r| r.status == crate::InstanceStatus::Quarantined && r.home == id)
        .count();
    let queue_pct = (node.gcs_pending() as u64 * 100) / GCS_BACKLOG_NOMINAL as u64;
    dosgi_telemetry::derive_health(0, quarantined, queue_pct.min(100))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    fn two_node_cluster() -> RealCluster {
        RealCluster::new(2, NodeConfig::default())
    }

    #[test]
    fn deploy_call_and_migrate_on_real_threads() {
        let cluster = two_node_cluster();
        let [a, b] = [cluster.ids()[0], cluster.ids()[1]];
        cluster
            .deploy(a, workloads::counter_instance("acme", "ctr-rt"))
            .expect("deploy accepted");
        assert!(cluster.await_running(a, "ctr-rt", Duration::from_secs(10)));

        for want in 1..=3 {
            let got = cluster
                .call(
                    a,
                    "ctr-rt",
                    workloads::COUNTER_SERVICE,
                    "incr",
                    &Value::Null,
                )
                .expect("local call works");
            assert_eq!(got, Value::Int(want));
        }

        cluster.migrate(a, "ctr-rt", b).expect("migrate accepted");
        assert!(
            cluster.await_running(b, "ctr-rt", Duration::from_secs(10)),
            "instance should re-materialize on the destination"
        );
        let got = cluster
            .call(
                b,
                "ctr-rt",
                workloads::COUNTER_SERVICE,
                "incr",
                &Value::Null,
            )
            .expect("state survived migration");
        assert_eq!(got, Value::Int(4), "count persisted across the hop");
        cluster.shutdown();
    }

    /// The command plane answers health queries: an idle healthy cluster
    /// scores `Ok` on every node, and the scoreboard is indexed like `ids`.
    #[test]
    fn health_scoreboard_over_command_plane() {
        let cluster = two_node_cluster();
        let a = cluster.ids()[0];
        cluster
            .deploy(a, workloads::counter_instance("acme", "ctr-health"))
            .expect("deploy accepted");
        assert!(cluster.await_running(a, "ctr-health", Duration::from_secs(10)));
        let board = cluster.health_scoreboard();
        assert_eq!(board.len(), cluster.ids().len());
        for (i, h) in board.iter().enumerate() {
            assert_eq!(*h, HealthState::Ok, "idle node {i} must be healthy");
        }
        assert_eq!(cluster.health(a), HealthState::Ok);
        cluster.shutdown();
    }

    /// Satellite: two genuinely concurrent client threads — one migrating an
    /// instance back and forth, one hammering registry lookups through a
    /// `RegistryReader` — must finish without deadlock or panic. This is the
    /// interleaving the sharded COW registry exists for.
    #[test]
    fn concurrent_migrate_and_lookup_survive() {
        let cluster = two_node_cluster();
        let [a, b] = [cluster.ids()[0], cluster.ids()[1]];
        cluster
            .deploy(a, workloads::counter_instance("acme", "kv-hot"))
            .expect("deploy accepted");
        assert!(cluster.await_running(a, "kv-hot", Duration::from_secs(10)));

        let reader_a = cluster.registry_reader(a);
        let reader_b = cluster.registry_reader(b);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let lookup_stop = stop.clone();
        let lookups = std::thread::spawn(move || {
            let mut sweeps = 0u64;
            let mut done = false;
            while !done {
                done = lookup_stop.load(std::sync::atomic::Ordering::Relaxed);
                for reader in [&reader_a, &reader_b] {
                    for interface in [workloads::LOG_SERVICE, workloads::COUNTER_SERVICE] {
                        for svc in reader.lookup(interface).iter() {
                            std::hint::black_box(&svc.interfaces);
                        }
                    }
                }
                sweeps += 1;
            }
            sweeps
        });

        let mut here = a;
        for _ in 0..4 {
            let to = if here == a { b } else { a };
            cluster
                .migrate(here, "kv-hot", to)
                .expect("migrate accepted");
            assert!(
                cluster.await_running(to, "kv-hot", Duration::from_secs(10)),
                "migration must converge while lookups run"
            );
            here = to;
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let sweeps = lookups.join().expect("lookup thread survives");
        assert!(sweeps > 0, "lookup thread must have made progress");
        cluster.shutdown();
    }
}
