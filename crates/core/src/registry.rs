//! The replicated instance registry.
//!
//! §3.2, issue 1: *"Knowledge of the available nodes and its resources …
//! by exchanging messages with information about the virtual instances
//! running on each node, we reliably address issue number 1."*
//!
//! Every node holds a copy of this registry and mutates it **only** by
//! applying the totally-ordered [`AppPayload`](crate::AppPayload) stream,
//! so all copies stay identical — which is what lets failover placement be
//! computed independently yet identically on every survivor, and what makes
//! failover *claims* race-free: the first claim for an orphan in the total
//! order wins everywhere; later claims are ignored everywhere.

use crate::msg::AppPayload;
use dosgi_net::NodeId;
use dosgi_san::Value;
use std::collections::BTreeMap;

/// Where an instance is in its placement life-cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceStatus {
    /// Running on its home node.
    Placed,
    /// A migration was ordered; the source is stopping it.
    Migrating {
        /// The destination node.
        to: NodeId,
    },
    /// Its home crashed (or a migration was stranded); awaiting a failover
    /// claim.
    Orphaned,
    /// Its home exhausted its retry budget re-materializing it (persistent
    /// SAN faults). The record is kept — homed on the quarantining node —
    /// but the instance is known-down until the SAN heals, when the home
    /// re-claims it (`Adopted { prior_home: self }`).
    Quarantined,
}

/// One instance's replicated record.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceRecord {
    /// The instance name (unique cluster-wide).
    pub name: String,
    /// The serialized descriptor (policy-free; see
    /// [`InstanceDescriptor::from_value`](dosgi_vosgi::InstanceDescriptor::from_value)).
    pub descriptor: Value,
    /// The node responsible for it.
    pub home: NodeId,
    /// Placement status.
    pub status: InstanceStatus,
    /// Revision: bumped by every *ordered* mutation that takes effect
    /// (never by local orphan marking), so it is identical on every node
    /// of a partition. Snapshot imports use it to refuse regressions: a
    /// sync exported before a claim can never overwrite the claim.
    pub rev: u64,
}

/// The replicated registry: apply ordered messages, query placements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterRegistry {
    records: BTreeMap<String, InstanceRecord>,
}

impl ClusterRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one ordered control message. Unknown instances in
    /// non-deploy messages are ignored (idempotent replay tolerance), and
    /// messages that lost a race against an orphaning are ignored too:
    ///
    /// * `Released` completes a migration — unless the record was orphaned
    ///   in the meantime (destination died), in which case the failover
    ///   claim protocol takes over;
    /// * `Adopted` is a **failover claim**: it only takes effect on an
    ///   `Orphaned` record, so exactly the first claim in the total order
    ///   wins, on every node alike.
    pub fn apply(&mut self, msg: &AppPayload) {
        match msg {
            AppPayload::Deployed {
                name,
                descriptor,
                home,
            } => {
                let rev = self.records.get(name).map(|r| r.rev).unwrap_or(0) + 1;
                self.records.insert(
                    name.clone(),
                    InstanceRecord {
                        name: name.clone(),
                        descriptor: descriptor.clone(),
                        home: *home,
                        status: InstanceStatus::Placed,
                        rev,
                    },
                );
            }
            AppPayload::Migrate { name, to, .. } => {
                if let Some(r) = self.records.get_mut(name) {
                    if r.status != InstanceStatus::Orphaned {
                        r.status = InstanceStatus::Migrating { to: *to };
                        r.rev += 1;
                    }
                }
            }
            AppPayload::Released { name, to } => {
                if let Some(r) = self.records.get_mut(name) {
                    if r.status != InstanceStatus::Orphaned {
                        r.home = *to;
                        r.status = InstanceStatus::Placed;
                        r.rev += 1;
                    }
                }
            }
            AppPayload::Adopted {
                name,
                node,
                prior_home,
            } => {
                if let Some(r) = self.records.get_mut(name) {
                    // The claim wins iff the record is orphaned locally OR
                    // still points at the home the claimant saw die (this
                    // node's failure detector is merely behind).
                    let claimable = r.status == InstanceStatus::Orphaned
                        || r.home == *prior_home
                        || matches!(r.status, InstanceStatus::Migrating { to } if to == *prior_home);
                    if claimable {
                        r.home = *node;
                        r.status = InstanceStatus::Placed;
                        r.rev += 1;
                    }
                }
            }
            AppPayload::Quarantined { name, node } => {
                if let Some(r) = self.records.get_mut(name) {
                    // Only the current home may quarantine: a stale report
                    // from a node that already lost the instance (crash +
                    // re-claim raced the report) must not shadow the new
                    // home's live copy.
                    if r.home == *node && r.status != InstanceStatus::Quarantined {
                        r.status = InstanceStatus::Quarantined;
                        r.rev += 1;
                    }
                }
            }
            AppPayload::Undeployed { name } => {
                self.records.remove(name);
            }
            AppPayload::Draining { .. }
            | AppPayload::Hello { .. }
            | AppPayload::RegistrySync { .. }
            | AppPayload::RegistryDelta { .. } => {}
        }
    }

    /// Marks every instance stranded by the departure of `left` as
    /// orphaned; returns the orphaned names, sorted. A `Placed` instance is
    /// stranded when its home left; a `Migrating` one when either endpoint
    /// left.
    pub fn orphan_homes(&mut self, left: &[NodeId]) -> Vec<String> {
        let mut orphans = Vec::new();
        for r in self.records.values_mut() {
            let stranded = match r.status {
                InstanceStatus::Migrating { to } => left.contains(&r.home) || left.contains(&to),
                // A quarantined instance is stranded like a placed one when
                // its home dies: a survivor claims it and runs its own
                // adopt/retry/quarantine cycle against the SAN.
                InstanceStatus::Placed | InstanceStatus::Quarantined => left.contains(&r.home),
                InstanceStatus::Orphaned => false,
            };
            if stranded {
                r.status = InstanceStatus::Orphaned;
                orphans.push(r.name.clone());
            }
        }
        orphans.sort();
        orphans
    }

    /// Looks up a record.
    pub fn record(&self, name: &str) -> Option<&InstanceRecord> {
        self.records.get(name)
    }

    /// All records, in name order.
    pub fn records(&self) -> impl Iterator<Item = &InstanceRecord> {
        self.records.values()
    }

    /// Names of instances currently homed (and placed) on `node`, sorted.
    pub fn placed_on(&self, node: NodeId) -> Vec<String> {
        self.records
            .values()
            .filter(|r| r.home == node && r.status == InstanceStatus::Placed)
            .map(|r| r.name.clone())
            .collect()
    }

    /// Count of placed instances per node (the deterministic load signal
    /// placement uses).
    pub fn load_by_node(&self) -> BTreeMap<NodeId, usize> {
        let mut m = BTreeMap::new();
        for r in self.records.values() {
            if r.status == InstanceStatus::Placed {
                *m.entry(r.home).or_insert(0) += 1;
            }
        }
        m
    }

    /// Names of instances with [`InstanceStatus::Orphaned`], sorted.
    pub fn orphans(&self) -> Vec<String> {
        self.records
            .values()
            .filter(|r| r.status == InstanceStatus::Orphaned)
            .map(|r| r.name.clone())
            .collect()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no instances are registered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes one record in the export wire format.
    fn record_value(r: &InstanceRecord) -> Value {
        let (status, to) = match r.status {
            InstanceStatus::Placed => ("placed", None),
            InstanceStatus::Migrating { to } => ("migrating", Some(to)),
            InstanceStatus::Orphaned => ("orphaned", None),
            InstanceStatus::Quarantined => ("quarantined", None),
        };
        let mut v = Value::map()
            .with("name", r.name.as_str())
            .with("descriptor", r.descriptor.clone())
            .with("home", u64::from(r.home.0))
            .with("status", status)
            .with("rev", r.rev);
        if let Some(to) = to {
            v = v.with("to", u64::from(to.0));
        }
        v
    }

    /// Serializes the full registry for state transfer to a joining node.
    pub fn export(&self) -> Value {
        Value::List(self.records.values().map(Self::record_value).collect())
    }

    /// A compact digest: `name → rev` for every record. Carried by `Hello`
    /// so a peer can answer with a per-record delta
    /// ([`export_delta`](Self::export_delta)) instead of the full registry.
    pub fn digest(&self) -> Value {
        self.records
            .values()
            .map(|r| (r.name.clone(), Value::Int(r.rev as i64)))
            .collect()
    }

    /// Computes the per-record delta that brings a registry described by
    /// `digest` (see [`digest`](Self::digest)) up to date with this one:
    ///
    /// * **upserts** — export-format records the digest is missing or holds
    ///   at an older revision (name-ascending, like [`export`](Self::export));
    /// * **removes** — `{name, rev}` for every digest entry this registry
    ///   has no record for. `rev` echoes the digest's revision and acts as
    ///   a compare-and-swap guard at the receiver: revisions restart at 1
    ///   after an undeploy + redeploy, so revision *equality* — not `<=` —
    ///   is the only sound removal condition.
    ///
    /// Records the digest already holds at this registry's revision (or
    /// newer) are omitted entirely — the fast path that makes a
    /// steady-state hello answer near-empty.
    pub fn export_delta(&self, digest: &Value) -> (Value, Value) {
        let empty = BTreeMap::new();
        let known = digest.as_map().unwrap_or(&empty);
        let upserts: Value = self
            .records
            .values()
            .filter(|r| {
                known
                    .get(&r.name)
                    .and_then(Value::as_int)
                    .map(|rev| (rev as u64) < r.rev)
                    .unwrap_or(true)
            })
            .map(Self::record_value)
            .collect();
        let removes: Value = known
            .iter()
            .filter(|(name, _)| !self.records.contains_key(*name))
            .map(|(name, rev)| {
                Value::map()
                    .with("name", name.as_str())
                    .with("rev", rev.as_int().unwrap_or(0))
            })
            .collect();
        (upserts, removes)
    }

    /// Applies a per-record delta (see [`export_delta`](Self::export_delta)).
    /// Upserts merge exactly like [`import`](Self::import) — revision
    /// regressions are refused — and removals only fire while the local
    /// revision still *equals* the guard: any ordered mutation interleaved
    /// between the digest and the delta (a redeploy, a claim) changes the
    /// revision and voids the removal.
    pub fn import_delta(&mut self, upserts: &Value, removes: &Value) {
        self.import(upserts);
        let Some(list) = removes.as_list() else {
            return;
        };
        for entry in list {
            let Some(name) = entry.get("name").and_then(Value::as_str) else {
                continue;
            };
            let Some(rev) = entry.get("rev").and_then(Value::as_int) else {
                continue;
            };
            if self
                .records
                .get(name)
                .map(|r| r.rev == rev as u64)
                .unwrap_or(false)
            {
                self.records.remove(name);
            }
        }
    }

    /// Merges an exported snapshot into this registry: present records are
    /// overwritten by the incoming version, records the snapshot does not
    /// mention are **kept**. Merge (rather than replace) semantics make
    /// sync storms safe: a stale snapshot — e.g. one exported before an
    /// in-flight `Deployed` re-sequenced — cannot wipe fresher records, and
    /// since every node applies the same syncs in the same total order, all
    /// copies still converge. Malformed entries are skipped (a sync must
    /// never wedge a joining node).
    pub fn import(&mut self, v: &Value) {
        let Some(list) = v.as_list() else { return };
        for entry in list {
            let Some(name) = entry.get("name").and_then(Value::as_str) else {
                continue;
            };
            let Some(home) = entry.get("home").and_then(Value::as_int) else {
                continue;
            };
            let to = entry
                .get("to")
                .and_then(Value::as_int)
                .map(|i| NodeId(i as u32));
            let status = match (entry.get("status").and_then(Value::as_str), to) {
                (Some("placed"), _) => InstanceStatus::Placed,
                (Some("migrating"), Some(to)) => InstanceStatus::Migrating { to },
                (Some("orphaned"), _) => InstanceStatus::Orphaned,
                (Some("quarantined"), _) => InstanceStatus::Quarantined,
                _ => continue,
            };
            let rev = entry.get("rev").and_then(Value::as_int).unwrap_or(0) as u64;
            // Refuse regressions: only adopt the incoming record if it is
            // at least as fresh as ours.
            if self
                .records
                .get(name)
                .map(|local| rev < local.rev)
                .unwrap_or(false)
            {
                continue;
            }
            self.records.insert(
                name.to_owned(),
                InstanceRecord {
                    name: name.to_owned(),
                    descriptor: entry.get("descriptor").cloned().unwrap_or(Value::Null),
                    home: NodeId(home as u32),
                    status,
                    rev,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deployed(name: &str, home: u32) -> AppPayload {
        AppPayload::Deployed {
            name: name.into(),
            descriptor: Value::map().with("name", name),
            home: NodeId(home),
        }
    }

    #[test]
    fn deploy_migrate_release_cycle() {
        let mut r = ClusterRegistry::new();
        r.apply(&deployed("a", 0));
        assert_eq!(r.record("a").unwrap().home, NodeId(0));
        assert_eq!(r.record("a").unwrap().status, InstanceStatus::Placed);

        r.apply(&AppPayload::Migrate {
            name: "a".into(),
            from: NodeId(0),
            to: NodeId(1),
        });
        assert_eq!(
            r.record("a").unwrap().status,
            InstanceStatus::Migrating { to: NodeId(1) }
        );
        // Released completes the move: home flips, status placed.
        r.apply(&AppPayload::Released {
            name: "a".into(),
            to: NodeId(1),
        });
        let rec = r.record("a").unwrap();
        assert_eq!(rec.home, NodeId(1));
        assert_eq!(rec.status, InstanceStatus::Placed);

        r.apply(&AppPayload::Undeployed { name: "a".into() });
        assert!(r.is_empty());
    }

    #[test]
    fn unknown_instances_are_ignored() {
        let mut r = ClusterRegistry::new();
        r.apply(&AppPayload::Adopted {
            name: "ghost".into(),
            node: NodeId(1),
            prior_home: NodeId(0),
        });
        assert!(r.is_empty());
    }

    #[test]
    fn orphaning_marks_crashed_homes() {
        let mut r = ClusterRegistry::new();
        r.apply(&deployed("a", 0));
        r.apply(&deployed("b", 1));
        r.apply(&deployed("c", 0));
        let orphans = r.orphan_homes(&[NodeId(0)]);
        assert_eq!(orphans, vec!["a", "c"]);
        assert_eq!(r.orphans(), vec!["a", "c"]);
        assert_eq!(r.record("b").unwrap().status, InstanceStatus::Placed);
        assert_eq!(r.placed_on(NodeId(1)), vec!["b"]);
        // Idempotent: a second sweep orphans nothing new.
        assert!(r.orphan_homes(&[NodeId(0)]).is_empty());
    }

    #[test]
    fn first_claim_in_total_order_wins() {
        let mut r = ClusterRegistry::new();
        r.apply(&deployed("a", 0));
        r.orphan_homes(&[NodeId(0)]);
        r.apply(&AppPayload::Adopted {
            name: "a".into(),
            node: NodeId(1),
            prior_home: NodeId(0),
        });
        // A competing later claim (against the same dead home) is ignored:
        // the record no longer points at the dead node.
        r.apply(&AppPayload::Adopted {
            name: "a".into(),
            node: NodeId(2),
            prior_home: NodeId(0),
        });
        assert_eq!(r.record("a").unwrap().home, NodeId(1));
        assert_eq!(r.record("a").unwrap().status, InstanceStatus::Placed);
    }

    #[test]
    fn claims_only_apply_to_orphans() {
        let mut r = ClusterRegistry::new();
        r.apply(&deployed("a", 0));
        r.apply(&AppPayload::Adopted {
            name: "a".into(),
            node: NodeId(2),
            prior_home: NodeId(7),
        });
        assert_eq!(
            r.record("a").unwrap().home,
            NodeId(0),
            "claim against an unrelated home is ignored"
        );
    }

    #[test]
    fn stale_release_loses_to_orphaning() {
        let mut r = ClusterRegistry::new();
        r.apply(&deployed("a", 0));
        r.apply(&AppPayload::Migrate {
            name: "a".into(),
            from: NodeId(0),
            to: NodeId(1),
        });
        // Destination n1 dies mid-migration: orphaned.
        assert_eq!(r.orphan_homes(&[NodeId(1)]), vec!["a"]);
        // The source's Released (racing the view change) must not resurrect
        // a placement on the dead destination.
        r.apply(&AppPayload::Released {
            name: "a".into(),
            to: NodeId(1),
        });
        assert_eq!(r.record("a").unwrap().status, InstanceStatus::Orphaned);
    }

    #[test]
    fn source_crash_mid_migration_orphans() {
        let mut r = ClusterRegistry::new();
        r.apply(&deployed("a", 0));
        r.apply(&AppPayload::Migrate {
            name: "a".into(),
            from: NodeId(0),
            to: NodeId(1),
        });
        assert_eq!(r.orphan_homes(&[NodeId(0)]), vec!["a"]);
    }

    #[test]
    fn quarantine_heal_cycle() {
        let mut r = ClusterRegistry::new();
        r.apply(&deployed("a", 0));
        r.orphan_homes(&[NodeId(0)]);
        r.apply(&AppPayload::Adopted {
            name: "a".into(),
            node: NodeId(1),
            prior_home: NodeId(0),
        });
        // n1 cannot re-materialize it: quarantine. The record survives.
        r.apply(&AppPayload::Quarantined {
            name: "a".into(),
            node: NodeId(1),
        });
        let rec = r.record("a").unwrap();
        assert_eq!(rec.status, InstanceStatus::Quarantined);
        assert_eq!(rec.home, NodeId(1));
        assert_eq!(r.placed_on(NodeId(1)), Vec::<String>::new());
        // A stale quarantine report from a non-home is ignored.
        r.apply(&AppPayload::Quarantined {
            name: "a".into(),
            node: NodeId(2),
        });
        assert_eq!(r.record("a").unwrap().home, NodeId(1));
        // SAN heals: the home self-claims and the record is placed again.
        r.apply(&AppPayload::Adopted {
            name: "a".into(),
            node: NodeId(1),
            prior_home: NodeId(1),
        });
        assert_eq!(r.record("a").unwrap().status, InstanceStatus::Placed);
    }

    #[test]
    fn quarantined_instance_is_orphaned_when_its_home_dies() {
        let mut r = ClusterRegistry::new();
        r.apply(&deployed("a", 0));
        r.apply(&AppPayload::Quarantined {
            name: "a".into(),
            node: NodeId(0),
        });
        assert_eq!(r.orphan_homes(&[NodeId(0)]), vec!["a"]);
        assert_eq!(r.record("a").unwrap().status, InstanceStatus::Orphaned);
    }

    #[test]
    fn export_import_round_trips_quarantined_status() {
        let mut r = ClusterRegistry::new();
        r.apply(&deployed("a", 0));
        r.apply(&AppPayload::Quarantined {
            name: "a".into(),
            node: NodeId(0),
        });
        let mut r2 = ClusterRegistry::new();
        r2.import(&Value::decode(&r.export().encode()).unwrap());
        assert_eq!(r2, r);
    }

    #[test]
    fn export_import_round_trip() {
        let mut r = ClusterRegistry::new();
        r.apply(&deployed("a", 0));
        r.apply(&deployed("b", 1));
        r.apply(&AppPayload::Migrate {
            name: "b".into(),
            from: NodeId(1),
            to: NodeId(2),
        });
        r.apply(&deployed("c", 2));
        r.orphan_homes(&[NodeId(2)]);
        let mut r2 = ClusterRegistry::new();
        r2.import(&r.export());
        assert_eq!(r2, r);
        // Import through the binary codec (the wire path).
        let mut r3 = ClusterRegistry::new();
        r3.import(&Value::decode(&r.export().encode()).unwrap());
        assert_eq!(r3, r);
    }

    #[test]
    fn import_skips_garbage_entries() {
        let mut r = ClusterRegistry::new();
        r.import(&Value::List(vec![
            Value::map()
                .with("name", "ok")
                .with("home", 1u64)
                .with("status", "placed"),
            Value::map().with("home", 1u64), // no name
            Value::Int(7),                   // not a map
        ]));
        assert_eq!(r.len(), 1);
        assert!(r.record("ok").is_some());
        // Non-list import is a no-op.
        r.import(&Value::Null);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn delta_against_empty_digest_is_the_full_export() {
        let mut r = ClusterRegistry::new();
        r.apply(&deployed("a", 0));
        r.apply(&deployed("b", 1));
        let (upserts, removes) = r.export_delta(&Value::map());
        assert_eq!(upserts, r.export());
        assert_eq!(removes.as_list().unwrap().len(), 0);
        // A fresh replica importing the delta converges exactly.
        let mut r2 = ClusterRegistry::new();
        r2.import_delta(&upserts, &removes);
        assert_eq!(r2, r);
    }

    #[test]
    fn delta_against_current_digest_is_empty() {
        let mut r = ClusterRegistry::new();
        r.apply(&deployed("a", 0));
        r.apply(&AppPayload::Migrate {
            name: "a".into(),
            from: NodeId(0),
            to: NodeId(1),
        });
        let (upserts, removes) = r.export_delta(&r.digest());
        assert_eq!(upserts.as_list().unwrap().len(), 0);
        assert_eq!(removes.as_list().unwrap().len(), 0);
    }

    #[test]
    fn delta_ships_only_stale_and_missing_records() {
        let mut r = ClusterRegistry::new();
        r.apply(&deployed("a", 0));
        r.apply(&deployed("b", 1));
        let behind = r.clone();
        // `a` advances past the digest; `c` is new; `b` is unchanged.
        r.apply(&AppPayload::Migrate {
            name: "a".into(),
            from: NodeId(0),
            to: NodeId(2),
        });
        r.apply(&deployed("c", 2));
        let (upserts, removes) = r.export_delta(&behind.digest());
        let names: Vec<&str> = upserts
            .as_list()
            .unwrap()
            .iter()
            .filter_map(|e| e.get("name").and_then(Value::as_str))
            .collect();
        assert_eq!(names, vec!["a", "c"]);
        assert_eq!(removes.as_list().unwrap().len(), 0);
        let mut caught_up = behind.clone();
        caught_up.import_delta(&upserts, &removes);
        assert_eq!(caught_up, r);
    }

    #[test]
    fn delta_removes_are_revision_guarded() {
        let mut r = ClusterRegistry::new();
        r.apply(&deployed("a", 0));
        let stale_digest = r.digest(); // knows a@1
        r.apply(&AppPayload::Undeployed { name: "a".into() });
        let (upserts, removes) = r.export_delta(&stale_digest);
        assert_eq!(upserts.as_list().unwrap().len(), 0);
        assert_eq!(removes.as_list().unwrap().len(), 1);

        // A replica still holding a@1 drops it…
        let mut behind = ClusterRegistry::new();
        behind.apply(&deployed("a", 0));
        behind.import_delta(&upserts, &removes);
        assert!(behind.is_empty());

        // …but a replica that re-deployed `a` after the undeploy holds it
        // at rev 1 *again* — the equality guard must still protect it,
        // because that record is a different incarnation. Advance it one
        // rev so the guard visibly mismatches.
        let mut redeployed = ClusterRegistry::new();
        redeployed.apply(&deployed("a", 3));
        redeployed.apply(&AppPayload::Migrate {
            name: "a".into(),
            from: NodeId(3),
            to: NodeId(4),
        });
        redeployed.import_delta(&upserts, &removes);
        assert!(
            redeployed.record("a").is_some(),
            "revision-mismatched remove must be voided"
        );
    }

    #[test]
    fn delta_survives_the_wire_codec() {
        let mut r = ClusterRegistry::new();
        r.apply(&deployed("a", 0));
        r.apply(&AppPayload::Quarantined {
            name: "a".into(),
            node: NodeId(0),
        });
        let (upserts, removes) = r.export_delta(&Value::map());
        let mut r2 = ClusterRegistry::new();
        r2.import_delta(
            &Value::decode(&upserts.encode()).unwrap(),
            &Value::decode(&removes.encode()).unwrap(),
        );
        assert_eq!(r2, r);
    }

    #[test]
    fn import_delta_skips_garbage_removes() {
        let mut r = ClusterRegistry::new();
        r.apply(&deployed("a", 0));
        r.import_delta(
            &Value::List(Vec::new()),
            &Value::List(vec![
                Value::map().with("rev", 1u64), // no name
                Value::map().with("name", "a"), // no rev guard
                Value::Int(9),                  // not a map
            ]),
        );
        assert!(r.record("a").is_some());
    }

    #[test]
    fn load_by_node_counts_placed_only() {
        let mut r = ClusterRegistry::new();
        r.apply(&deployed("a", 0));
        r.apply(&deployed("b", 0));
        r.apply(&deployed("c", 1));
        r.orphan_homes(&[NodeId(1)]);
        let load = r.load_by_node();
        assert_eq!(load.get(&NodeId(0)), Some(&2));
        assert_eq!(load.get(&NodeId(1)), None);
    }
}
