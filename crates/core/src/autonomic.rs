//! The Autonomic Module: policies over the monitoring blackboard.
//!
//! §3.3: *"By using the Monitoring Module to build the view of the system
//! and the Migration Module to know about other nodes … the Autonomic
//! Module is able to enforce the business policies."*
//!
//! Each sampling period the module refreshes a [`Blackboard`] with:
//!
//! | metric | scope | meaning |
//! |---|---|---|
//! | `cpu_share($i)` | instance | CPU cores consumed (0.5 = half a core) |
//! | `memory($i)` | instance | resident bytes |
//! | `disk($i)` | instance | persistent bytes written |
//! | `call_rate($i)` | instance | service calls per second |
//! | `quota_cpu($i)` | instance | SLA CPU entitlement (cores) |
//! | `quota_mem($i)` | instance | SLA memory entitlement (bytes) |
//! | `quota_disk($i)` | instance | SLA disk entitlement (bytes) |
//! | `node_cpu()` | node | total CPU utilization (0..1) |
//! | `node_mem()` | node | total memory utilization (0..1) |
//! | `instance_count()` | node | local running instances |
//! | `node_count()` | node | live nodes in the current view |
//!
//! and evaluates the configured policy script, yielding
//! [`PolicyDecision`]s the node executes (migrate / stop / throttle /
//! restart / hibernate / alert).

use dosgi_monitor::{MonitoringModule, NodeCapacity};
use dosgi_net::{SimDuration, SimTime};
use dosgi_policy::{Blackboard, ParseError, PolicyDecision, PolicyEngine};
use dosgi_vosgi::ResourceQuota;
use std::collections::BTreeMap;

/// The default SLA-enforcement policy used by examples and experiment E10:
/// sustained CPU overuse migrates the offender; memory overuse stops it;
/// an idle under-utilized node consolidates (hibernates).
pub const DEFAULT_POLICY: &str = r#"
rule cpu_hog {
    when cpu_share($i) > quota_cpu($i) * 1.2 for 3
    then migrate($i); alert("cpu quota exceeded")
}
rule mem_hog {
    when memory($i) > quota_mem($i)
    then stop($i); alert("memory quota exceeded")
}
"#;

/// The consolidation add-on policy (paper §4: concentrate idle customers,
/// hibernate freed nodes to save power). The `node_rank()` guard makes
/// consolidation *rolling*: only the highest-ranked member of the current
/// view packs up and hibernates; once it leaves the view, the next one
/// fires — so the cluster drains one node at a time instead of
/// stampeding.
pub const CONSOLIDATION_POLICY: &str = r#"
rule consolidate {
    when node_cpu() < 0.05 and instance_count() > 0 and node_count() > 1
         and node_rank() == node_count() - 1 for 5
    then migrate_all(); hibernate()
}
rule empty_node {
    when node_cpu() < 0.05 and instance_count() == 0 and node_count() > 1
         and node_rank() == node_count() - 1 for 5
    then hibernate()
}
"#;

/// The overload-reaction policy (E15/E16), driven by the SLO burn-rate
/// alerts of [`dosgi_telemetry::SloEngine`] instead of raw p95 polling:
/// while the `std-latency` alert fires, the service scales out (adds a
/// replica behind the VIP); sustained queue pressure sheds the
/// background class; once queues drain, shedding is lifted — un-shed is
/// deliberately queue-governed, not alert-governed, because burn-rate
/// alerts reset only after the bad window ages out, long after the
/// overload itself has passed (`stop_shed` is forwarded as a
/// [`dosgi_policy::PolicyAction::Custom`] the driver interprets). The
/// driver feeds the blackboard `alert_firing` per SLO subject
/// (`set_subject_metric(<slo>, "alert_firing", 0/1)` from
/// `SloEngine::firing`) plus the `queue_depth` / `queue_capacity`
/// globals from the admission layer. No debounce on the scale-out rule:
/// the burn-rate pairs already require two breaching windows, so the
/// alert itself is the debounce.
pub const OVERLOAD_POLICY: &str = r#"
rule slo_burn {
    when alert_firing("std-latency") > 0
    then scale_out(); alert("std-latency error budget burning")
}
rule queue_pressure {
    when queue_depth() > queue_capacity() * 0.8 for 2
    then shed_class("background")
}
rule pressure_cleared {
    when queue_depth() < queue_capacity() * 0.2 for 4
    then stop_shed("background")
}
"#;

/// The pre-E16 overload policy: polls the raw p95 gauge against the SLO
/// every tick and debounces by rule repetition. Kept as the naive
/// baseline the `e16_slo` experiment races burn-rate alerting against —
/// the `for 3` debounce plus the rolling-window p95 lag is exactly the
/// reaction time the alert path beats. Blackboard globals:
/// `p95_latency_us`, `slo_us`, `queue_depth`, `queue_capacity`.
pub const POLLED_OVERLOAD_POLICY: &str = r#"
rule p95_breach {
    when p95_latency_us() > slo_us() for 3
    then scale_out(); alert("sustained p95 SLO breach")
}
rule queue_pressure {
    when queue_depth() > queue_capacity() * 0.8 for 2
    then shed_class("background")
}
rule pressure_cleared {
    when queue_depth() < queue_capacity() * 0.2
         and p95_latency_us() < slo_us() for 4
    then stop_shed("background")
}
"#;

/// The per-node autonomic controller.
#[derive(Debug, Clone)]
pub struct AutonomicModule {
    engine: PolicyEngine,
    blackboard: Blackboard,
    interval: SimDuration,
    last: Option<SimTime>,
}

impl AutonomicModule {
    /// Compiles `script` into a module evaluated every `interval`.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed scripts.
    pub fn new(script: &str, interval: SimDuration) -> Result<Self, ParseError> {
        Ok(AutonomicModule {
            engine: PolicyEngine::compile(script)?,
            blackboard: Blackboard::new(),
            interval,
            last: None,
        })
    }

    /// True when an evaluation is due at `now`.
    pub fn due(&self, now: SimTime) -> bool {
        match self.last {
            None => true,
            Some(at) => now.since(at) >= self.interval,
        }
    }

    /// Refreshes the blackboard from the monitoring module and evaluates
    /// the policy. `quotas` maps instance name → SLA quota; `node_count` is
    /// the current view size and `node_rank` this node's position in it
    /// (0 = lowest id; consolidation policies key off the highest rank).
    pub fn evaluate(
        &mut self,
        now: SimTime,
        monitor: &MonitoringModule,
        quotas: &BTreeMap<String, ResourceQuota>,
        capacity: &NodeCapacity,
        node_count: usize,
        node_rank: usize,
    ) -> Vec<PolicyDecision> {
        self.last = Some(now);
        let subjects: Vec<String> = quotas.keys().cloned().collect();
        for name in &subjects {
            if let Some(w) = monitor.latest(name) {
                self.blackboard
                    .set_subject_metric(name, "cpu_share", w.cpu_share);
                self.blackboard
                    .set_subject_metric(name, "memory", w.memory as f64);
                self.blackboard
                    .set_subject_metric(name, "disk", w.disk as f64);
                self.blackboard
                    .set_subject_metric(name, "call_rate", w.call_rate);
            }
            if let Some(q) = quotas.get(name) {
                self.blackboard
                    .set_subject_metric(name, "quota_cpu", q.cpu_per_sec.as_secs_f64());
                self.blackboard
                    .set_subject_metric(name, "quota_mem", q.memory_bytes as f64);
                self.blackboard
                    .set_subject_metric(name, "quota_disk", q.disk_bytes as f64);
            }
        }
        self.blackboard.set_global_metric(
            "node_cpu",
            capacity.cpu_utilization(monitor.total_cpu_share()),
        );
        self.blackboard.set_global_metric(
            "node_mem",
            capacity.memory_utilization(monitor.total_memory()),
        );
        self.blackboard
            .set_global_metric("instance_count", subjects.len() as f64);
        self.blackboard
            .set_global_metric("node_count", node_count as f64);
        self.blackboard
            .set_global_metric("node_rank", node_rank as f64);
        self.engine.evaluate(&self.blackboard, &subjects)
    }

    /// Removes a migrated/destroyed instance's metrics.
    pub fn forget(&mut self, subject: &str) {
        self.blackboard.forget_subject(subject);
    }

    /// The blackboard (tests and custom embeddings).
    pub fn blackboard_mut(&mut self) -> &mut Blackboard {
        &mut self.blackboard
    }

    /// Evaluation errors from the last pass.
    pub fn last_errors(&self) -> &[String] {
        self.engine.last_errors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosgi_osgi::UsageSnapshot;
    use dosgi_policy::PolicyAction;

    fn monitor_with(name: &str, cpu_ms_per_s: u64, memory: u64) -> MonitoringModule {
        let mut m = MonitoringModule::new();
        m.record(name, SimTime::from_secs(0), UsageSnapshot::default());
        m.record(
            name,
            SimTime::from_secs(1),
            UsageSnapshot {
                cpu: SimDuration::from_millis(cpu_ms_per_s),
                memory,
                disk: 0,
                calls: 10,
            },
        );
        m
    }

    fn quotas(name: &str) -> BTreeMap<String, ResourceQuota> {
        let mut q = BTreeMap::new();
        q.insert(name.to_owned(), ResourceQuota::small()); // 100ms/s, 16MiB
        q
    }

    #[test]
    fn default_policy_migrates_sustained_cpu_hogs() {
        let mut a = AutonomicModule::new(DEFAULT_POLICY, SimDuration::from_secs(1)).unwrap();
        // 400ms/s over a 100ms/s quota: over 1.2x.
        let m = monitor_with("acme", 400, 0);
        let cap = NodeCapacity::standard();
        let q = quotas("acme");
        let mut all = Vec::new();
        for s in 1..=3 {
            all.extend(a.evaluate(SimTime::from_secs(s), &m, &q, &cap, 3, 0));
        }
        let migrates: Vec<_> = all
            .iter()
            .filter(|d| matches!(d.action, PolicyAction::Migrate { .. }))
            .collect();
        assert_eq!(migrates.len(), 1, "for 3 debounces to a single firing");
        assert!(a.last_errors().is_empty(), "{:?}", a.last_errors());
    }

    #[test]
    fn default_policy_stops_memory_hogs_immediately() {
        let mut a = AutonomicModule::new(DEFAULT_POLICY, SimDuration::from_secs(1)).unwrap();
        let m = monitor_with("acme", 0, 64 << 20); // 64MiB over a 16MiB quota
        let d = a.evaluate(
            SimTime::from_secs(1),
            &m,
            &quotas("acme"),
            &NodeCapacity::standard(),
            3,
            0,
        );
        assert!(d
            .iter()
            .any(|d| matches!(&d.action, PolicyAction::Stop { subject } if subject == "acme")));
    }

    #[test]
    fn within_quota_is_quiet() {
        let mut a = AutonomicModule::new(DEFAULT_POLICY, SimDuration::from_secs(1)).unwrap();
        let m = monitor_with("acme", 50, 1 << 20);
        for s in 1..=5 {
            let d = a.evaluate(
                SimTime::from_secs(s),
                &m,
                &quotas("acme"),
                &NodeCapacity::standard(),
                3,
                0,
            );
            assert!(d.is_empty(), "tick {s}: {d:?}");
        }
    }

    #[test]
    fn due_respects_interval() {
        let mut a = AutonomicModule::new(DEFAULT_POLICY, SimDuration::from_secs(5)).unwrap();
        assert!(a.due(SimTime::ZERO));
        a.evaluate(
            SimTime::from_secs(1),
            &MonitoringModule::new(),
            &BTreeMap::new(),
            &NodeCapacity::standard(),
            1,
            0,
        );
        assert!(!a.due(SimTime::from_secs(3)));
        assert!(a.due(SimTime::from_secs(6)));
    }

    #[test]
    fn overload_policy_scales_out_while_alert_fires() {
        let mut a = AutonomicModule::new(OVERLOAD_POLICY, SimDuration::from_secs(1)).unwrap();
        let m = MonitoringModule::new();
        let cap = NodeCapacity::standard();
        let q = BTreeMap::new();
        // Feed the alert state and queue signals straight into the
        // blackboard (the E16 driver does the same from the SLO engine
        // and the admission-layer stats).
        let bb = a.blackboard_mut();
        bb.set_subject_metric("std-latency", "alert_firing", 1.0);
        bb.set_global_metric("queue_depth", 120.0);
        bb.set_global_metric("queue_capacity", 128.0);
        let mut fired = Vec::new();
        for s in 1..=2 {
            fired.extend(a.evaluate(SimTime::from_secs(s), &m, &q, &cap, 3, 0));
        }
        assert!(
            fired.iter().any(|d| d.action == PolicyAction::ScaleOut),
            "{fired:?}"
        );
        assert!(
            fired.iter().any(|d| matches!(
                &d.action,
                PolicyAction::ShedClass { class } if class == "background"
            )),
            "{fired:?}"
        );
        assert!(a.last_errors().is_empty(), "{:?}", a.last_errors());

        // Alert resolved, queues drained: shedding lifts after `for 4`.
        let bb = a.blackboard_mut();
        bb.set_subject_metric("std-latency", "alert_firing", 0.0);
        bb.set_global_metric("queue_depth", 2.0);
        let mut cleared = Vec::new();
        for s in 3..=7 {
            cleared.extend(a.evaluate(SimTime::from_secs(s), &m, &q, &cap, 3, 0));
        }
        assert!(
            cleared.iter().any(|d| matches!(
                &d.action,
                PolicyAction::Custom { name, args, .. } if name == "stop_shed"
                    && args == &["background".to_owned()]
            )),
            "{cleared:?}"
        );
        assert!(a.last_errors().is_empty(), "{:?}", a.last_errors());
    }

    #[test]
    fn polled_overload_policy_scales_out_on_sustained_p95_breach() {
        let mut a =
            AutonomicModule::new(POLLED_OVERLOAD_POLICY, SimDuration::from_secs(1)).unwrap();
        let m = MonitoringModule::new();
        let cap = NodeCapacity::standard();
        let q = BTreeMap::new();
        let bb = a.blackboard_mut();
        bb.set_global_metric("p95_latency_us", 400_000.0);
        bb.set_global_metric("slo_us", 250_000.0);
        bb.set_global_metric("queue_depth", 120.0);
        bb.set_global_metric("queue_capacity", 128.0);
        let mut fired = Vec::new();
        for s in 1..=3 {
            fired.extend(a.evaluate(SimTime::from_secs(s), &m, &q, &cap, 3, 0));
        }
        assert!(
            fired.iter().any(|d| d.action == PolicyAction::ScaleOut),
            "{fired:?}"
        );
        assert!(
            fired.iter().any(|d| matches!(
                &d.action,
                PolicyAction::ShedClass { class } if class == "background"
            )),
            "{fired:?}"
        );
        assert!(a.last_errors().is_empty(), "{:?}", a.last_errors());
    }

    #[test]
    fn consolidation_policy_compiles_and_fires_on_idle() {
        let mut a = AutonomicModule::new(CONSOLIDATION_POLICY, SimDuration::from_secs(1)).unwrap();
        let m = MonitoringModule::new(); // nothing running: node_cpu 0
        let mut fired = Vec::new();
        for s in 1..=5 {
            fired.extend(a.evaluate(
                SimTime::from_secs(s),
                &m,
                &BTreeMap::new(),
                &NodeCapacity::standard(),
                2,
                1, // highest rank in a 2-node view: the consolidator
            ));
        }
        assert!(fired
            .iter()
            .any(|d| matches!(d.action, PolicyAction::HibernateNode)));
    }
}
