//! Node-level events: the observable record experiments assert on.

use dosgi_net::{NodeId, SimDuration, SimTime};
use dosgi_osgi::Version;
use dosgi_policy::PolicyDecision;

/// Something noteworthy that happened on a node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeEvent {
    /// A membership view was installed.
    ViewChanged {
        /// When.
        at: SimTime,
        /// Members now.
        members: Vec<NodeId>,
        /// Who left (crash or graceful departure).
        left: Vec<NodeId>,
    },
    /// An instance was deployed locally.
    Deployed {
        /// When.
        at: SimTime,
        /// Which instance.
        name: String,
    },
    /// This node stopped and released an instance for migration.
    Released {
        /// When.
        at: SimTime,
        /// Which instance.
        name: String,
        /// The destination.
        to: NodeId,
    },
    /// This node adopted an instance.
    Adopted {
        /// When.
        at: SimTime,
        /// Which instance.
        name: String,
        /// Why it arrived here.
        reason: AdoptReason,
    },
    /// The autonomic module executed a policy decision.
    PolicyFired {
        /// When.
        at: SimTime,
        /// The decision.
        decision: PolicyDecision,
    },
    /// The node began draining for a graceful shutdown.
    Draining {
        /// When.
        at: SimTime,
    },
    /// The node finished draining: no local instances remain.
    Drained {
        /// When.
        at: SimTime,
    },
    /// The node hibernated (consolidation/power saving).
    Hibernated {
        /// When.
        at: SimTime,
    },
    /// An adoption attempt hit a transient storage fault and was
    /// re-scheduled with backoff.
    AdoptRetried {
        /// When.
        at: SimTime,
        /// Which instance.
        name: String,
        /// Which attempt just failed (0-based).
        attempt: u32,
        /// Why.
        error: String,
    },
    /// This node gave up re-materializing an instance after exhausting its
    /// retry budget and quarantined it: the registry keeps the record (homed
    /// here) but the instance stays down until the SAN heals, when the node
    /// re-claims and re-adopts it.
    Quarantined {
        /// When.
        at: SimTime,
        /// Which instance.
        name: String,
    },
    /// An instance failed to adopt (error text preserved).
    AdoptFailed {
        /// When.
        at: SimTime,
        /// Which instance.
        name: String,
        /// Why.
        error: String,
    },
    /// A bundle was hot-swapped in place: the old revision quiesced, its
    /// state persisted to the SAN, and the new revision adopted it — while
    /// the instance kept serving its other bundles.
    BundleUpgraded {
        /// When.
        at: SimTime,
        /// The instance hosting the bundle.
        name: String,
        /// The bundle's symbolic name.
        bundle: String,
        /// Version before the swap.
        from: Version,
        /// Version after the swap.
        to: Version,
        /// Modeled unavailability window of the swapped bundle (the rest of
        /// the instance keeps serving throughout).
        blackout: SimDuration,
    },
    /// A bundle upgrade hit a transient storage fault and was re-scheduled
    /// with backoff (the open `upgrade/` span is kept across retries).
    UpgradeRetried {
        /// When.
        at: SimTime,
        /// The instance hosting the bundle.
        name: String,
        /// The bundle's symbolic name.
        bundle: String,
        /// Which attempt just failed (0-based).
        attempt: u32,
        /// Why.
        error: String,
    },
    /// A bundle upgrade failed permanently (incompatible target or retry
    /// budget exhausted); the old revision keeps running.
    UpgradeFailed {
        /// When.
        at: SimTime,
        /// The instance hosting the bundle.
        name: String,
        /// The bundle's symbolic name.
        bundle: String,
        /// Why.
        error: String,
    },
}

/// Why an instance arrived on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdoptReason {
    /// Planned migration (SLA or operator initiated).
    Migration,
    /// Failover after the previous home crashed.
    Failover,
}

impl NodeEvent {
    /// When the event happened.
    pub fn at(&self) -> SimTime {
        match self {
            NodeEvent::ViewChanged { at, .. }
            | NodeEvent::Deployed { at, .. }
            | NodeEvent::Released { at, .. }
            | NodeEvent::Adopted { at, .. }
            | NodeEvent::PolicyFired { at, .. }
            | NodeEvent::Draining { at }
            | NodeEvent::Drained { at }
            | NodeEvent::Hibernated { at }
            | NodeEvent::AdoptRetried { at, .. }
            | NodeEvent::Quarantined { at, .. }
            | NodeEvent::AdoptFailed { at, .. }
            | NodeEvent::BundleUpgraded { at, .. }
            | NodeEvent::UpgradeRetried { at, .. }
            | NodeEvent::UpgradeFailed { at, .. } => *at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_accessor() {
        let e = NodeEvent::Drained {
            at: SimTime::from_millis(5),
        };
        assert_eq!(e.at(), SimTime::from_millis(5));
        let e = NodeEvent::Adopted {
            at: SimTime::from_secs(1),
            name: "x".into(),
            reason: AdoptReason::Failover,
        };
        assert_eq!(e.at(), SimTime::from_secs(1));
    }
}
