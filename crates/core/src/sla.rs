//! Service level agreements and availability tracking.

use dosgi_net::{SimDuration, SimTime};
use dosgi_vosgi::ResourceQuota;
use std::collections::BTreeMap;

/// A customer's service level agreement: resource entitlement plus an
/// availability target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaSpec {
    /// Resource entitlement.
    pub quota: ResourceQuota,
    /// Availability target in `[0, 1]` (e.g. `0.999`).
    pub availability: f64,
}

impl SlaSpec {
    /// Standard quota, three nines.
    pub fn standard() -> Self {
        SlaSpec {
            quota: ResourceQuota::standard(),
            availability: 0.999,
        }
    }
}

impl Default for SlaSpec {
    fn default() -> Self {
        SlaSpec::standard()
    }
}

/// Per-instance availability record derived from periodic probes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AvailabilityRecord {
    /// Time observed up.
    pub up: SimDuration,
    /// Time observed down.
    pub down: SimDuration,
    /// Number of distinct outages (up→down transitions).
    pub outages: u32,
    /// The longest single outage.
    pub longest_outage: SimDuration,
}

impl AvailabilityRecord {
    /// Availability fraction in `[0, 1]`; `1.0` before any observation.
    pub fn availability(&self) -> f64 {
        let total = self.up + self.down;
        if total.is_zero() {
            1.0
        } else {
            self.up.as_secs_f64() / total.as_secs_f64()
        }
    }
}

/// Tracks availability per instance from periodic boolean probes — the
/// downtime instrument behind experiments E5–E9.
#[derive(Debug, Clone, Default)]
pub struct SlaTracker {
    records: BTreeMap<String, AvailabilityRecord>,
    last: BTreeMap<String, (SimTime, bool)>,
    current_outage: BTreeMap<String, SimDuration>,
}

impl SlaTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a probe of `instance` at `now`. The interval since the
    /// previous probe is attributed to the *previous* observed state.
    pub fn probe(&mut self, instance: &str, now: SimTime, available: bool) {
        let rec = self.records.entry(instance.to_owned()).or_default();
        if let Some((then, was_up)) = self.last.get(instance).copied() {
            let span = now.since(then);
            if was_up {
                rec.up += span;
            } else {
                rec.down += span;
                let outage = self.current_outage.entry(instance.to_owned()).or_default();
                *outage += span;
                if *outage > rec.longest_outage {
                    rec.longest_outage = *outage;
                }
            }
            if was_up && !available {
                rec.outages += 1;
                self.current_outage
                    .insert(instance.to_owned(), SimDuration::ZERO);
            }
            if !was_up && available {
                self.current_outage.remove(instance);
            }
        }
        self.last.insert(instance.to_owned(), (now, available));
    }

    /// The record for `instance` (zeroes if never probed).
    pub fn record(&self, instance: &str) -> AvailabilityRecord {
        self.records.get(instance).copied().unwrap_or_default()
    }

    /// True if `instance` meets `spec`'s availability target so far.
    pub fn meets(&self, instance: &str, spec: &SlaSpec) -> bool {
        self.record(instance).availability() >= spec.availability
    }

    /// All tracked instance names, sorted.
    pub fn instances(&self) -> Vec<&str> {
        self.records.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_accumulates_by_previous_state() {
        let mut t = SlaTracker::new();
        t.probe("a", SimTime::from_secs(0), true);
        t.probe("a", SimTime::from_secs(8), true); // 8s up
        t.probe("a", SimTime::from_secs(10), false); // 2s up, now down
        t.probe("a", SimTime::from_secs(11), true); // 1s down
        t.probe("a", SimTime::from_secs(20), true); // 9s up
        let r = t.record("a");
        assert_eq!(r.up, SimDuration::from_secs(19));
        assert_eq!(r.down, SimDuration::from_secs(1));
        assert_eq!(r.outages, 1);
        assert_eq!(r.longest_outage, SimDuration::from_secs(1));
        assert!((r.availability() - 0.95).abs() < 1e-9);
    }

    #[test]
    fn longest_outage_spans_multiple_probes() {
        let mut t = SlaTracker::new();
        t.probe("a", SimTime::from_secs(0), true);
        t.probe("a", SimTime::from_secs(1), false);
        t.probe("a", SimTime::from_secs(2), false);
        t.probe("a", SimTime::from_secs(4), false);
        t.probe("a", SimTime::from_secs(5), true);
        t.probe("a", SimTime::from_secs(6), false);
        t.probe("a", SimTime::from_secs(7), true);
        let r = t.record("a");
        assert_eq!(r.outages, 2);
        assert_eq!(r.longest_outage, SimDuration::from_secs(4));
    }

    #[test]
    fn meets_compares_target() {
        let mut t = SlaTracker::new();
        t.probe("a", SimTime::from_secs(0), true);
        t.probe("a", SimTime::from_secs(999), true);
        t.probe("a", SimTime::from_secs(1000), false);
        t.probe("a", SimTime::from_secs(1001), true);
        let spec = SlaSpec {
            availability: 0.999,
            ..SlaSpec::standard()
        };
        // 1000s up, 1s down: 0.999001 ≥ 0.999.
        assert!(t.meets("a", &spec));
        let strict = SlaSpec {
            availability: 0.9999,
            ..spec
        };
        assert!(!t.meets("a", &strict));
    }

    #[test]
    fn unknown_instance_is_fully_available() {
        let t = SlaTracker::new();
        assert_eq!(t.record("ghost").availability(), 1.0);
        assert!(t.instances().is_empty());
    }
}
