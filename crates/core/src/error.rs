//! Core error type.

use dosgi_net::NodeId;
use dosgi_vosgi::VosgiError;
use std::fmt;

/// Errors from cluster-level operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The node index does not exist or the node is down.
    NodeUnavailable(NodeId),
    /// The operation needs at least one running node, but the cluster has
    /// none (all crashed, draining or hibernated).
    NoRunningNodes,
    /// No instance with that name is known to the cluster.
    UnknownInstance(String),
    /// An instance with that name already exists.
    DuplicateInstance(String),
    /// The instance is not currently placed on a live node.
    NotPlaced(String),
    /// The migration cannot proceed (bad destination, already migrating…).
    BadMigration(String),
    /// The SLA layer throttled this instance; the request was shed.
    Throttled(String),
    /// An instance-manager operation failed.
    Vosgi(VosgiError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NodeUnavailable(n) => write!(f, "node {n} unavailable"),
            CoreError::NoRunningNodes => write!(f, "no running nodes in the cluster"),
            CoreError::UnknownInstance(name) => write!(f, "unknown instance {name:?}"),
            CoreError::DuplicateInstance(name) => write!(f, "instance {name:?} already exists"),
            CoreError::NotPlaced(name) => write!(f, "instance {name:?} is not placed"),
            CoreError::BadMigration(msg) => write!(f, "bad migration: {msg}"),
            CoreError::Throttled(name) => write!(f, "instance {name:?} is throttled"),
            CoreError::Vosgi(e) => write!(f, "instance manager: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Vosgi(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VosgiError> for CoreError {
    fn from(e: VosgiError) -> Self {
        CoreError::Vosgi(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            CoreError::UnknownInstance("x".into()).to_string(),
            "unknown instance \"x\""
        );
        assert_eq!(
            CoreError::NodeUnavailable(NodeId(2)).to_string(),
            "node n2 unavailable"
        );
    }
}
