//! Instance descriptors: everything needed to (re)deploy a customer.

use crate::{ResourceQuota, SecurityPolicy};
use dosgi_osgi::PackageName;
use dosgi_san::Value;
use std::fmt;

/// Identifies a virtual instance within an [`InstanceManager`].
///
/// [`InstanceManager`]: crate::InstanceManager
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vosgi-{}", self.0)
    }
}

/// Identifies the customer who owns an instance (SLAs attach to customers).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CustomerId(pub String);

impl fmt::Display for CustomerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for CustomerId {
    fn from(s: &str) -> Self {
        CustomerId(s.to_owned())
    }
}

/// The complete deployment description of one customer's virtual instance.
///
/// A descriptor is **data** — it serializes to the SAN (via
/// [`to_value`](Self::to_value)) and is what the Migration Module ships
/// between nodes; the destination re-materializes the instance from the
/// descriptor plus the SAN-persisted framework state.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceDescriptor {
    /// The owning customer.
    pub customer: CustomerId,
    /// Unique instance name (also its storage namespace key).
    pub name: String,
    /// Symbolic names of the bundles to deploy, resolved against the node's
    /// [`BundleRepository`](crate::BundleRepository).
    pub bundles: Vec<String>,
    /// Host packages this instance may see through the delegating loader
    /// (the paper's *"explicitly indicated"* export list).
    pub shared_packages: Vec<PackageName>,
    /// Host service interfaces this instance may call.
    pub shared_services: Vec<String>,
    /// Sandbox policy.
    pub policy: SecurityPolicy,
    /// Resource quota from the customer's SLA.
    pub quota: ResourceQuota,
}

impl InstanceDescriptor {
    /// Starts building a descriptor.
    pub fn builder(customer: impl Into<CustomerId>, name: &str) -> InstanceDescriptorBuilder {
        InstanceDescriptorBuilder {
            descriptor: InstanceDescriptor {
                customer: customer.into(),
                name: name.to_owned(),
                bundles: Vec::new(),
                shared_packages: Vec::new(),
                shared_services: Vec::new(),
                policy: SecurityPolicy::deny_all(),
                quota: ResourceQuota::standard(),
            },
        }
    }

    /// The SAN namespace holding this instance's framework state.
    pub fn state_namespace(&self) -> String {
        format!("instance/{}", self.name)
    }

    /// Serializes the descriptor for SAN storage / migration metadata.
    pub fn to_value(&self) -> Value {
        Value::map()
            .with("customer", self.customer.0.as_str())
            .with("name", self.name.as_str())
            .with(
                "bundles",
                Value::List(
                    self.bundles
                        .iter()
                        .map(|b| Value::from(b.as_str()))
                        .collect(),
                ),
            )
            .with(
                "shared_packages",
                Value::List(
                    self.shared_packages
                        .iter()
                        .map(|p| Value::from(p.as_str()))
                        .collect(),
                ),
            )
            .with(
                "shared_services",
                Value::List(
                    self.shared_services
                        .iter()
                        .map(|s| Value::from(s.as_str()))
                        .collect(),
                ),
            )
            .with("quota_cpu_us", self.quota.cpu_per_sec.as_micros())
            .with("quota_mem", self.quota.memory_bytes)
            .with("quota_disk", self.quota.disk_bytes)
    }

    /// Reads a descriptor back from [`to_value`](Self::to_value) form.
    ///
    /// The sandbox policy is intentionally *not* shipped in the value: the
    /// destination node's administrator re-derives it from local business
    /// policy (a descriptor from the network must not be able to grant
    /// itself permissions).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let str_list = |key: &str| -> Result<Vec<String>, String> {
            v.get(key)
                .and_then(Value::as_list)
                .ok_or_else(|| format!("missing {key}"))?
                .iter()
                .map(|x| {
                    x.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| format!("bad {key} entry"))
                })
                .collect()
        };
        let customer = v
            .get("customer")
            .and_then(Value::as_str)
            .ok_or("missing customer")?;
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("missing name")?;
        let shared_packages = str_list("shared_packages")?
            .into_iter()
            .map(|p| PackageName::new(&p))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(InstanceDescriptor {
            customer: CustomerId(customer.to_owned()),
            name: name.to_owned(),
            bundles: str_list("bundles")?,
            shared_packages,
            shared_services: str_list("shared_services")?,
            policy: SecurityPolicy::deny_all(),
            quota: ResourceQuota {
                cpu_per_sec: dosgi_net::SimDuration::from_micros(
                    v.get("quota_cpu_us").and_then(Value::as_int).unwrap_or(0) as u64,
                ),
                memory_bytes: v.get("quota_mem").and_then(Value::as_int).unwrap_or(0) as u64,
                disk_bytes: v.get("quota_disk").and_then(Value::as_int).unwrap_or(0) as u64,
            },
        })
    }
}

/// Builder for [`InstanceDescriptor`].
#[derive(Debug, Clone)]
pub struct InstanceDescriptorBuilder {
    descriptor: InstanceDescriptor,
}

impl InstanceDescriptorBuilder {
    /// Adds a bundle (by symbolic name) to deploy.
    pub fn bundle(mut self, symbolic_name: &str) -> Self {
        self.descriptor.bundles.push(symbolic_name.to_owned());
        self
    }

    /// Exposes a host package to the instance.
    ///
    /// # Panics
    ///
    /// Panics if `package` is not a valid package name.
    pub fn share_package(mut self, package: &str) -> Self {
        self.descriptor
            .shared_packages
            .push(PackageName::new(package).expect("valid package name"));
        self
    }

    /// Exposes a host service interface to the instance.
    pub fn share_service(mut self, interface: &str) -> Self {
        self.descriptor.shared_services.push(interface.to_owned());
        self
    }

    /// Sets the sandbox policy.
    pub fn policy(mut self, policy: SecurityPolicy) -> Self {
        self.descriptor.policy = policy;
        self
    }

    /// Sets the resource quota.
    pub fn quota(mut self, quota: ResourceQuota) -> Self {
        self.descriptor.quota = quota;
        self
    }

    /// Finishes the descriptor.
    pub fn build(self) -> InstanceDescriptor {
        self.descriptor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InstanceDescriptor {
        InstanceDescriptor::builder("acme", "acme-prod")
            .bundle("org.acme.shop")
            .bundle("org.acme.billing")
            .share_package("org.host.log.api")
            .share_service("org.host.log.Logger")
            .quota(ResourceQuota::small())
            .build()
    }

    #[test]
    fn builder_collects_fields() {
        let d = sample();
        assert_eq!(d.customer, CustomerId::from("acme"));
        assert_eq!(d.bundles.len(), 2);
        assert_eq!(d.shared_packages.len(), 1);
        assert_eq!(d.shared_services, vec!["org.host.log.Logger"]);
        assert_eq!(d.state_namespace(), "instance/acme-prod");
    }

    #[test]
    fn value_round_trip_preserves_everything_but_policy() {
        let mut d = sample();
        d.policy = SecurityPolicy::deny_all().grant_file_rw("/data/acme");
        let back = InstanceDescriptor::from_value(&d.to_value()).unwrap();
        assert_eq!(back.customer, d.customer);
        assert_eq!(back.name, d.name);
        assert_eq!(back.bundles, d.bundles);
        assert_eq!(back.shared_packages, d.shared_packages);
        assert_eq!(back.shared_services, d.shared_services);
        assert_eq!(back.quota, d.quota);
        // Policy is never shipped: deny-all on arrival.
        assert!(back.policy.grants().is_empty());
    }

    #[test]
    fn from_value_rejects_garbage() {
        assert!(InstanceDescriptor::from_value(&Value::Null).is_err());
        assert!(InstanceDescriptor::from_value(&Value::map().with("customer", "x")).is_err());
    }

    #[test]
    fn ids_display() {
        assert_eq!(InstanceId(3).to_string(), "vosgi-3");
        assert_eq!(CustomerId::from("acme").to_string(), "acme");
    }
}
