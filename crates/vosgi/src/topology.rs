//! The deployment-topology cost model behind experiment **E1** (Figures
//! 1–4 of the paper).
//!
//! The paper argues qualitatively: one JVM per customer (Fig. 1) is heavy
//! and awkward to manage; co-locating frameworks in one JVM (Fig. 2)
//! removes the JVM multiplier; nesting them in a host OSGi (Fig. 3) makes
//! the manager itself a bundle; sharing host bundles (Fig. 4) removes the
//! last per-customer duplication. This module turns that argument into an
//! explicit, documented cost model so the experiment can plot it.
//!
//! The constants are calibrated to 2008-era Java numbers (a bare HotSpot
//! JVM ≈ 40–60 MiB resident; an embedded Felix ≈ 4–8 MiB; a small bundle a
//! few hundred KiB) — the *shape* of the comparison, not the absolute
//! values, is the claim under test.

use dosgi_net::SimDuration;

/// Per-component memory and management-latency constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FootprintModel {
    /// Resident overhead of one JVM process.
    pub jvm_bytes: u64,
    /// Overhead of one OSGi framework inside a JVM.
    pub framework_bytes: u64,
    /// Overhead of one *virtual* instance nested in a host framework
    /// (cheaper than a full framework: shares the host's infrastructure).
    pub vosgi_bytes: u64,
    /// Resident size of one loaded bundle copy.
    pub bundle_bytes: u64,
    /// Latency of one management operation via an external channel
    /// (RMI/JMX/TCP — Fig. 1's "no direct method of accessing each one").
    pub remote_op: SimDuration,
    /// Latency of one in-process management operation (a map lookup and a
    /// method call — Fig. 2–4).
    pub local_op: SimDuration,
}

impl Default for FootprintModel {
    fn default() -> Self {
        FootprintModel {
            jvm_bytes: 48 << 20,
            framework_bytes: 6 << 20,
            vosgi_bytes: 1 << 20,
            bundle_bytes: 512 << 10,
            remote_op: SimDuration::from_micros(500),
            local_op: SimDuration::from_micros(2),
        }
    }
}

/// The four deployment designs from §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeploymentTopology {
    /// Figure 1: one JVM + framework per customer, external manager.
    JvmPerCustomer,
    /// Figure 2: one JVM, one framework per customer, in-process manager.
    SharedJvm,
    /// Figure 3: host framework + nested virtual instances; manager is a
    /// bundle. Every customer still carries copies of common bundles.
    NestedInstances,
    /// Figure 4: nested virtual instances that *share* common bundles
    /// provided once by the host.
    SharedBundles,
}

impl DeploymentTopology {
    /// All four topologies in paper order.
    pub const ALL: [DeploymentTopology; 4] = [
        DeploymentTopology::JvmPerCustomer,
        DeploymentTopology::SharedJvm,
        DeploymentTopology::NestedInstances,
        DeploymentTopology::SharedBundles,
    ];

    /// The figure each topology corresponds to.
    pub fn figure(self) -> &'static str {
        match self {
            DeploymentTopology::JvmPerCustomer => "Fig.1",
            DeploymentTopology::SharedJvm => "Fig.2",
            DeploymentTopology::NestedInstances => "Fig.3",
            DeploymentTopology::SharedBundles => "Fig.4",
        }
    }

    /// Computes the footprint of deploying `customers` customers, each
    /// needing `bundles_per_customer` bundles of which `shareable` are
    /// common infrastructure (log service, HTTP service, …) that Fig. 4
    /// hoists into the host.
    ///
    /// # Panics
    ///
    /// Panics if `shareable > bundles_per_customer`.
    pub fn footprint(
        self,
        model: &FootprintModel,
        customers: u64,
        bundles_per_customer: u64,
        shareable: u64,
    ) -> TopologyFootprint {
        assert!(
            shareable <= bundles_per_customer,
            "shareable bundles cannot exceed the per-customer total"
        );
        let (jvms, frameworks, vosgi, bundle_copies) = match self {
            DeploymentTopology::JvmPerCustomer => {
                (customers, customers, 0, customers * bundles_per_customer)
            }
            DeploymentTopology::SharedJvm => (1, customers, 0, customers * bundles_per_customer),
            DeploymentTopology::NestedInstances => {
                // Host framework + manager; each customer a vosgi instance
                // with its own copies of every bundle.
                (1, 1, customers, customers * bundles_per_customer)
            }
            DeploymentTopology::SharedBundles => {
                // Shareable bundles exist once, in the host.
                let per_customer = bundles_per_customer - shareable;
                (1, 1, customers, customers * per_customer + shareable)
            }
        };
        TopologyFootprint {
            topology: self,
            memory_bytes: jvms * model.jvm_bytes
                + frameworks * model.framework_bytes
                + vosgi * model.vosgi_bytes
                + bundle_copies * model.bundle_bytes,
            jvm_count: jvms,
            bundle_copies,
            management_op: match self {
                DeploymentTopology::JvmPerCustomer => model.remote_op,
                _ => model.local_op,
            },
        }
    }
}

/// The computed cost of a topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologyFootprint {
    /// Which design.
    pub topology: DeploymentTopology,
    /// Total resident memory.
    pub memory_bytes: u64,
    /// Number of JVM processes.
    pub jvm_count: u64,
    /// Total loaded bundle copies.
    pub bundle_copies: u64,
    /// Latency of one management operation against one instance.
    pub management_op: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL: FootprintModel = FootprintModel {
        jvm_bytes: 100,
        framework_bytes: 10,
        vosgi_bytes: 2,
        bundle_bytes: 1,
        remote_op: SimDuration::from_micros(500),
        local_op: SimDuration::from_micros(2),
    };

    #[test]
    fn fig1_scales_jvms_with_customers() {
        let f = DeploymentTopology::JvmPerCustomer.footprint(&MODEL, 10, 5, 3);
        assert_eq!(f.jvm_count, 10);
        assert_eq!(f.memory_bytes, 10 * 100 + 10 * 10 + 50);
        assert_eq!(f.management_op, SimDuration::from_micros(500));
    }

    #[test]
    fn fig2_amortizes_the_jvm() {
        let f = DeploymentTopology::SharedJvm.footprint(&MODEL, 10, 5, 3);
        assert_eq!(f.jvm_count, 1);
        assert_eq!(f.memory_bytes, 100 + 10 * 10 + 50);
        assert_eq!(f.management_op, SimDuration::from_micros(2));
    }

    #[test]
    fn fig3_amortizes_the_framework() {
        let f = DeploymentTopology::NestedInstances.footprint(&MODEL, 10, 5, 3);
        assert_eq!(f.memory_bytes, 100 + 10 + 10 * 2 + 50);
        assert_eq!(f.bundle_copies, 50);
    }

    #[test]
    fn fig4_deduplicates_shared_bundles() {
        let f = DeploymentTopology::SharedBundles.footprint(&MODEL, 10, 5, 3);
        // 10 customers × 2 private + 3 shared = 23 copies.
        assert_eq!(f.bundle_copies, 23);
        assert_eq!(f.memory_bytes, 100 + 10 + 10 * 2 + 23);
    }

    #[test]
    fn ordering_matches_the_papers_argument() {
        // For any non-trivial population, each successive design is lighter.
        let model = FootprintModel::default();
        let fp: Vec<u64> = DeploymentTopology::ALL
            .iter()
            .map(|t| t.footprint(&model, 20, 8, 4).memory_bytes)
            .collect();
        assert!(fp[0] > fp[1], "Fig.2 beats Fig.1");
        assert!(fp[1] > fp[2], "Fig.3 beats Fig.2");
        assert!(fp[2] > fp[3], "Fig.4 beats Fig.3");
    }

    #[test]
    fn zero_shareable_makes_fig3_and_fig4_equal() {
        let a = DeploymentTopology::NestedInstances.footprint(&MODEL, 5, 4, 0);
        let b = DeploymentTopology::SharedBundles.footprint(&MODEL, 5, 4, 0);
        assert_eq!(a.memory_bytes, b.memory_bytes);
    }

    #[test]
    #[should_panic(expected = "shareable bundles cannot exceed")]
    fn invalid_share_count_panics() {
        let _ = DeploymentTopology::SharedBundles.footprint(&MODEL, 1, 2, 3);
    }

    #[test]
    fn figures_label_correctly() {
        assert_eq!(DeploymentTopology::JvmPerCustomer.figure(), "Fig.1");
        assert_eq!(DeploymentTopology::SharedBundles.figure(), "Fig.4");
    }
}
