//! Per-customer resource quotas — the SLA substrate.

use dosgi_net::SimDuration;
use dosgi_osgi::UsageSnapshot;
use std::fmt;

/// Resource limits agreed in a customer's SLA.
///
/// The Monitoring Module compares observed usage against the quota; the
/// Autonomic Module reacts to [`QuotaViolation`]s (stop, throttle or migrate
/// the instance — §3.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceQuota {
    /// CPU time allowed per second of wall-clock time (i.e. `500ms/s` means
    /// half a core).
    pub cpu_per_sec: SimDuration,
    /// Maximum resident memory, bytes.
    pub memory_bytes: u64,
    /// Maximum persistent storage, bytes.
    pub disk_bytes: u64,
}

impl ResourceQuota {
    /// A roomy default: half a core, 256 MiB memory, 1 GiB disk.
    pub fn standard() -> Self {
        ResourceQuota {
            cpu_per_sec: SimDuration::from_millis(500),
            memory_bytes: 256 << 20,
            disk_bytes: 1 << 30,
        }
    }

    /// An effectively unlimited quota (for system instances).
    pub fn unlimited() -> Self {
        ResourceQuota {
            cpu_per_sec: SimDuration::from_secs(1_000_000),
            memory_bytes: u64::MAX,
            disk_bytes: u64::MAX,
        }
    }

    /// A tight quota for tests and noisy-neighbour experiments: 100ms/s
    /// CPU, 16 MiB memory, 64 MiB disk.
    pub fn small() -> Self {
        ResourceQuota {
            cpu_per_sec: SimDuration::from_millis(100),
            memory_bytes: 16 << 20,
            disk_bytes: 64 << 20,
        }
    }

    /// Checks a usage snapshot against the quota.
    ///
    /// `cpu_used` must be the CPU consumed over the last `window` of
    /// wall-clock (simulated) time; memory/disk are instantaneous gauges
    /// from the snapshot. Returns all violations found (possibly empty).
    pub fn check(
        &self,
        usage: &UsageSnapshot,
        cpu_used: SimDuration,
        window: SimDuration,
    ) -> Vec<QuotaViolation> {
        let mut v = Vec::new();
        if !window.is_zero() {
            // Allowed CPU for this window, scaled from the per-second rate.
            let allowed_micros = self
                .cpu_per_sec
                .as_micros()
                .saturating_mul(window.as_micros())
                / 1_000_000;
            if cpu_used.as_micros() > allowed_micros {
                v.push(QuotaViolation::Cpu {
                    used: cpu_used,
                    allowed: SimDuration::from_micros(allowed_micros),
                    window,
                });
            }
        }
        if usage.memory > self.memory_bytes {
            v.push(QuotaViolation::Memory {
                used: usage.memory,
                allowed: self.memory_bytes,
            });
        }
        if usage.disk > self.disk_bytes {
            v.push(QuotaViolation::Disk {
                used: usage.disk,
                allowed: self.disk_bytes,
            });
        }
        v
    }
}

impl Default for ResourceQuota {
    fn default() -> Self {
        ResourceQuota::standard()
    }
}

/// A detected breach of a [`ResourceQuota`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaViolation {
    /// CPU consumption exceeded the agreed rate over the window.
    Cpu {
        /// CPU consumed in the window.
        used: SimDuration,
        /// CPU allowed in the window.
        allowed: SimDuration,
        /// The measurement window.
        window: SimDuration,
    },
    /// Resident memory exceeded the agreed maximum.
    Memory {
        /// Bytes held.
        used: u64,
        /// Bytes allowed.
        allowed: u64,
    },
    /// Persistent storage exceeded the agreed maximum.
    Disk {
        /// Bytes written.
        used: u64,
        /// Bytes allowed.
        allowed: u64,
    },
}

impl QuotaViolation {
    /// How far over quota, as a ratio (`1.5` = 50 % over).
    pub fn overage(&self) -> f64 {
        match self {
            QuotaViolation::Cpu { used, allowed, .. } => {
                used.as_micros() as f64 / allowed.as_micros().max(1) as f64
            }
            QuotaViolation::Memory { used, allowed } | QuotaViolation::Disk { used, allowed } => {
                *used as f64 / (*allowed).max(1) as f64
            }
        }
    }
}

impl fmt::Display for QuotaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuotaViolation::Cpu {
                used,
                allowed,
                window,
            } => write!(f, "cpu {used} > {allowed} in {window}"),
            QuotaViolation::Memory { used, allowed } => {
                write!(f, "memory {used}B > {allowed}B")
            }
            QuotaViolation::Disk { used, allowed } => write!(f, "disk {used}B > {allowed}B"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(memory: u64, disk: u64) -> UsageSnapshot {
        UsageSnapshot {
            cpu: SimDuration::ZERO,
            memory,
            disk,
            calls: 0,
        }
    }

    #[test]
    fn within_quota_is_clean() {
        let q = ResourceQuota::standard();
        let v = q.check(
            &usage(1 << 20, 1 << 20),
            SimDuration::from_millis(100),
            SimDuration::from_secs(1),
        );
        assert!(v.is_empty());
    }

    #[test]
    fn cpu_violation_scales_with_window() {
        let q = ResourceQuota {
            cpu_per_sec: SimDuration::from_millis(100),
            ..ResourceQuota::standard()
        };
        // 100ms/s over a 2s window allows 200ms; 250ms violates.
        let v = q.check(
            &usage(0, 0),
            SimDuration::from_millis(250),
            SimDuration::from_secs(2),
        );
        assert_eq!(v.len(), 1);
        match v[0] {
            QuotaViolation::Cpu { allowed, .. } => {
                assert_eq!(allowed, SimDuration::from_millis(200));
            }
            ref other => panic!("unexpected {other:?}"),
        }
        assert!(v[0].overage() > 1.2 && v[0].overage() < 1.3);
        // 150ms over 2s is fine.
        assert!(q
            .check(
                &usage(0, 0),
                SimDuration::from_millis(150),
                SimDuration::from_secs(2)
            )
            .is_empty());
    }

    #[test]
    fn memory_and_disk_violations() {
        let q = ResourceQuota::small();
        let v = q.check(
            &usage(32 << 20, 128 << 20),
            SimDuration::ZERO,
            SimDuration::from_secs(1),
        );
        assert_eq!(v.len(), 2);
        assert!(matches!(v[0], QuotaViolation::Memory { .. }));
        assert!(matches!(v[1], QuotaViolation::Disk { .. }));
        assert_eq!(v[0].overage(), 2.0);
    }

    #[test]
    fn zero_window_skips_cpu_check() {
        let q = ResourceQuota::small();
        let v = q.check(&usage(0, 0), SimDuration::from_secs(99), SimDuration::ZERO);
        assert!(v.is_empty());
    }

    #[test]
    fn unlimited_never_violates() {
        let q = ResourceQuota::unlimited();
        let v = q.check(
            &usage(u64::MAX / 2, u64::MAX / 2),
            SimDuration::from_secs(10_000),
            SimDuration::from_secs(1),
        );
        assert!(v.is_empty());
    }

    #[test]
    fn violation_display() {
        let v = QuotaViolation::Memory {
            used: 10,
            allowed: 5,
        };
        assert_eq!(v.to_string(), "memory 10B > 5B");
    }
}
