//! The bundle repository: the node's local "bundle cache".
//!
//! Descriptors name bundles symbolically; the repository resolves names to
//! manifests (and, paired with an
//! [`ActivatorFactory`](dosgi_osgi::ActivatorFactory), to behaviour). In a
//! real deployment this is the provisioning system every node can reach —
//! the reason a migrated instance's bundles can be re-materialized anywhere.

use dosgi_osgi::BundleManifest;
use std::collections::HashMap;
use std::fmt;

/// A name → manifest catalogue.
#[derive(Clone, Default)]
pub struct BundleRepository {
    manifests: HashMap<String, BundleManifest>,
}

impl fmt::Debug for BundleRepository {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BundleRepository")
            .field("bundles", &self.names())
            .finish()
    }
}

impl BundleRepository {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a manifest, keyed by its symbolic name.
    pub fn add(&mut self, manifest: BundleManifest) {
        self.manifests
            .insert(manifest.symbolic_name.as_str().to_owned(), manifest);
    }

    /// Looks up a manifest by symbolic name.
    pub fn manifest(&self, symbolic_name: &str) -> Option<&BundleManifest> {
        self.manifests.get(symbolic_name)
    }

    /// True if the repository knows `symbolic_name`.
    pub fn contains(&self, symbolic_name: &str) -> bool {
        self.manifests.contains_key(symbolic_name)
    }

    /// All known symbolic names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.manifests.keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of catalogued bundles.
    pub fn len(&self) -> usize {
        self.manifests.len()
    }

    /// True if the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.manifests.is_empty()
    }
}

impl FromIterator<BundleManifest> for BundleRepository {
    fn from_iter<T: IntoIterator<Item = BundleManifest>>(iter: T) -> Self {
        let mut repo = BundleRepository::new();
        for m in iter {
            repo.add(m);
        }
        repo
    }
}

impl Extend<BundleManifest> for BundleRepository {
    fn extend<T: IntoIterator<Item = BundleManifest>>(&mut self, iter: T) {
        for m in iter {
            self.add(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosgi_osgi::{ManifestBuilder, Version};

    fn m(name: &str) -> BundleManifest {
        ManifestBuilder::new(name, Version::new(1, 0, 0))
            .build()
            .unwrap()
    }

    #[test]
    fn add_and_lookup() {
        let mut repo = BundleRepository::new();
        assert!(repo.is_empty());
        repo.add(m("a.b"));
        repo.add(m("c.d"));
        assert!(repo.contains("a.b"));
        assert!(!repo.contains("x.y"));
        assert_eq!(repo.manifest("c.d").unwrap().symbolic_name.as_str(), "c.d");
        assert_eq!(repo.names(), vec!["a.b", "c.d"]);
        assert_eq!(repo.len(), 2);
    }

    #[test]
    fn replace_keeps_latest() {
        let mut repo = BundleRepository::new();
        repo.add(m("a.b"));
        let newer = ManifestBuilder::new("a.b", Version::new(2, 0, 0))
            .build()
            .unwrap();
        repo.add(newer);
        assert_eq!(repo.manifest("a.b").unwrap().version, Version::new(2, 0, 0));
        assert_eq!(repo.len(), 1);
    }

    #[test]
    fn collect_and_extend() {
        let mut repo: BundleRepository = [m("a.b")].into_iter().collect();
        repo.extend([m("c.d")]);
        assert_eq!(repo.len(), 2);
    }
}
