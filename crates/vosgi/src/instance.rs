//! A virtual OSGi instance: a customer's nested framework plus its policy
//! and quota.

use crate::{InstanceDescriptor, InstanceId};
use dosgi_osgi::{Framework, UsageSnapshot};
use std::fmt;

/// The coarse life-cycle of a virtual instance (distinct from the
/// per-bundle lifecycle inside it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InstanceState {
    /// Created: bundles installed, nothing started.
    #[default]
    Created,
    /// Running: bundles started, serving requests.
    Running,
    /// Stopped: orderly shut down; state persisted; restartable.
    Stopped,
    /// Destroyed: removed from the node (possibly migrated away).
    Destroyed,
}

impl fmt::Display for InstanceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstanceState::Created => "CREATED",
            InstanceState::Running => "RUNNING",
            InstanceState::Stopped => "STOPPED",
            InstanceState::Destroyed => "DESTROYED",
        };
        f.write_str(s)
    }
}

/// A customer's virtual OSGi framework, as managed by an
/// [`InstanceManager`](crate::InstanceManager).
#[derive(Debug)]
pub struct VirtualInstance {
    /// The manager-local id.
    pub id: InstanceId,
    /// The deployment descriptor.
    pub descriptor: InstanceDescriptor,
    /// Current coarse state.
    pub state: InstanceState,
    pub(crate) framework: Framework,
}

impl VirtualInstance {
    /// Read access to the instance's framework.
    pub fn framework(&self) -> &Framework {
        &self.framework
    }

    /// Mutable access to the instance's framework (tests and the core
    /// simulation drive workloads through this).
    pub fn framework_mut(&mut self) -> &mut Framework {
        &mut self.framework
    }

    /// The instance's aggregate resource usage across all of its bundles —
    /// the per-customer reading the paper's Monitoring Module wants and
    /// cannot get from a stock JVM.
    pub fn usage(&self) -> UsageSnapshot {
        self.framework.ledger().total()
    }

    /// True if the instance is currently serving.
    pub fn is_running(&self) -> bool {
        self.state == InstanceState::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_display() {
        assert_eq!(InstanceState::Created.to_string(), "CREATED");
        assert_eq!(InstanceState::Running.to_string(), "RUNNING");
        assert_eq!(InstanceState::default(), InstanceState::Created);
    }
}
