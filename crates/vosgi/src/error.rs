//! vosgi error type.

use crate::InstanceId;
use dosgi_osgi::{BundleError, LoadError, ServiceError};
use dosgi_san::StoreError;
use std::fmt;

/// Errors from virtual-instance operations.
#[derive(Debug, Clone, PartialEq)]
pub enum VosgiError {
    /// The instance id is unknown.
    NoSuchInstance(InstanceId),
    /// An instance with the same name already exists.
    DuplicateInstance(String),
    /// The operation is illegal in the instance's current state.
    BadState {
        /// The instance.
        instance: InstanceId,
        /// A description of what was attempted.
        operation: &'static str,
    },
    /// The operation needs a SAN but none is attached to the manager.
    NoStore {
        /// What was attempted (`"adopt"`, …).
        operation: &'static str,
    },
    /// A bundle named in the descriptor is not in the repository.
    UnknownBundle(String),
    /// The sandbox denied an access.
    Denied(String),
    /// The instance's quota disallows the operation.
    QuotaExceeded(String),
    /// An underlying framework operation failed.
    Framework(BundleError),
    /// An underlying service operation failed.
    Service(ServiceError),
    /// A class-loading failure.
    Load(LoadError),
    /// The SAN rejected a storage operation.
    Store(StoreError),
}

impl VosgiError {
    /// The underlying [`StoreError`], looking through the wrapping layers
    /// ([`Store`](Self::Store), [`Framework`](Self::Framework),
    /// [`Service`](Self::Service)). Retry/quarantine logic uses this to
    /// classify an adoption or destruction failure as transient.
    pub fn store_error(&self) -> Option<&StoreError> {
        match self {
            VosgiError::Store(e) => Some(e),
            VosgiError::Framework(BundleError::Store(e)) => Some(e),
            VosgiError::Service(ServiceError::Store(e)) => Some(e),
            _ => None,
        }
    }

    /// True when the failure came from the SAN and retrying can help.
    pub fn is_transient_store(&self) -> bool {
        self.store_error().is_some_and(StoreError::is_transient)
    }
}

impl fmt::Display for VosgiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VosgiError::NoSuchInstance(id) => write!(f, "no such instance: {id}"),
            VosgiError::DuplicateInstance(name) => {
                write!(f, "instance {name:?} already exists")
            }
            VosgiError::BadState {
                instance,
                operation,
            } => write!(
                f,
                "cannot {operation} instance {instance} in its current state"
            ),
            VosgiError::NoStore { operation } => {
                write!(f, "cannot {operation}: no SAN store attached")
            }
            VosgiError::UnknownBundle(name) => {
                write!(f, "bundle {name:?} not found in repository")
            }
            VosgiError::Denied(what) => write!(f, "sandbox denied: {what}"),
            VosgiError::QuotaExceeded(what) => write!(f, "quota exceeded: {what}"),
            VosgiError::Framework(e) => write!(f, "framework error: {e}"),
            VosgiError::Service(e) => write!(f, "service error: {e}"),
            VosgiError::Load(e) => write!(f, "load error: {e}"),
            VosgiError::Store(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for VosgiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VosgiError::Framework(e) => Some(e),
            VosgiError::Service(e) => Some(e),
            VosgiError::Load(e) => Some(e),
            VosgiError::Store(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<BundleError> for VosgiError {
    fn from(e: BundleError) -> Self {
        VosgiError::Framework(e)
    }
}

#[doc(hidden)]
impl From<ServiceError> for VosgiError {
    fn from(e: ServiceError) -> Self {
        VosgiError::Service(e)
    }
}

#[doc(hidden)]
impl From<LoadError> for VosgiError {
    fn from(e: LoadError) -> Self {
        VosgiError::Load(e)
    }
}

#[doc(hidden)]
impl From<StoreError> for VosgiError {
    fn from(e: StoreError) -> Self {
        VosgiError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = VosgiError::Denied("write /etc".into());
        assert_eq!(e.to_string(), "sandbox denied: write /etc");
        let e: VosgiError = BundleError::NotFound(dosgi_osgi::BundleId(1)).into();
        assert!(e.to_string().contains("b1"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&VosgiError::NoSuchInstance(InstanceId(1))).is_none());
    }
}
