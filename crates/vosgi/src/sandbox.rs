//! The sandbox: the paper's `SecurityManager` analogue.
//!
//! §2: *"To address isolation at the filesystem and network levels we rely
//! on the SecurityManager provided by the JAVA platform that should be
//! configured by the administrator according to the business policies."*
//!
//! Here the administrator grants each instance an explicit set of
//! [`Permission`]s; every simulated filesystem or network operation is
//! checked against them, deny-by-default.

use dosgi_net::{IpAddr, Port};
use std::fmt;

/// The direction of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Reading (files) / connecting out (sockets).
    Read,
    /// Writing (files) / binding a listener (sockets).
    Write,
}

/// A grantable capability.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Permission {
    /// Access to the file subtree rooted at `prefix`.
    File {
        /// Path prefix, e.g. `/data/customer-a`.
        prefix: String,
        /// Granted access direction.
        access: Access,
    },
    /// Permission to bind a listening socket on `ip:port`.
    ///
    /// The paper notes that when an IP is attributed to a virtual instance
    /// *"we also must ensure that bundles running on that instance could
    /// only bind to that IP address"* — this is that check.
    Bind {
        /// The address the instance may bind.
        ip: IpAddr,
        /// The port, or `None` for any port on that IP.
        port: Option<Port>,
    },
    /// Permission to open outbound connections to `ip` (any port).
    Connect {
        /// The destination address.
        ip: IpAddr,
    },
}

impl fmt::Display for Permission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Permission::File { prefix, access } => {
                write!(f, "file {prefix} ({access:?})")
            }
            Permission::Bind { ip, port } => match port {
                Some(p) => write!(f, "bind {ip}:{p}"),
                None => write!(f, "bind {ip}:*"),
            },
            Permission::Connect { ip } => write!(f, "connect {ip}"),
        }
    }
}

/// An instance's granted permissions: deny-by-default capability set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SecurityPolicy {
    grants: Vec<Permission>,
}

impl SecurityPolicy {
    /// An empty (deny-everything) policy.
    pub fn deny_all() -> Self {
        Self::default()
    }

    /// Builder-style grant.
    pub fn grant(mut self, p: Permission) -> Self {
        self.grants.push(p);
        self
    }

    /// Grants read+write on a file subtree.
    pub fn grant_file_rw(self, prefix: &str) -> Self {
        self.grant(Permission::File {
            prefix: prefix.to_owned(),
            access: Access::Read,
        })
        .grant(Permission::File {
            prefix: prefix.to_owned(),
            access: Access::Write,
        })
    }

    /// True if the policy allows `access` on file `path`.
    pub fn allows_file(&self, path: &str, access: Access) -> bool {
        self.grants.iter().any(|g| match g {
            Permission::File {
                prefix,
                access: granted,
            } => *granted == access && path_within(path, prefix),
            _ => false,
        })
    }

    /// True if the policy allows binding `ip:port`.
    pub fn allows_bind(&self, ip: IpAddr, port: Port) -> bool {
        self.grants.iter().any(|g| match g {
            Permission::Bind { ip: gip, port: gp } => {
                *gip == ip && gp.map(|p| p == port).unwrap_or(true)
            }
            _ => false,
        })
    }

    /// True if the policy allows connecting to `ip`.
    pub fn allows_connect(&self, ip: IpAddr) -> bool {
        self.grants
            .iter()
            .any(|g| matches!(g, Permission::Connect { ip: gip } if *gip == ip))
    }

    /// The granted permissions.
    pub fn grants(&self) -> &[Permission] {
        &self.grants
    }
}

/// Path-prefix containment with component boundaries: `/a/b` contains
/// `/a/b/c` and `/a/b` itself, but not `/a/bc`.
fn path_within(path: &str, prefix: &str) -> bool {
    if !path.starts_with(prefix) {
        return false;
    }
    let rest = &path[prefix.len()..];
    rest.is_empty() || rest.starts_with('/') || prefix.ends_with('/')
}

#[cfg(test)]
mod tests {
    use super::*;

    const IP: IpAddr = IpAddr::new(10, 0, 0, 5);

    #[test]
    fn deny_by_default() {
        let p = SecurityPolicy::deny_all();
        assert!(!p.allows_file("/anything", Access::Read));
        assert!(!p.allows_bind(IP, Port(80)));
        assert!(!p.allows_connect(IP));
    }

    #[test]
    fn file_prefix_respects_component_boundaries() {
        let p = SecurityPolicy::deny_all().grant_file_rw("/data/cust-a");
        assert!(p.allows_file("/data/cust-a", Access::Read));
        assert!(p.allows_file("/data/cust-a/x/y", Access::Write));
        assert!(!p.allows_file("/data/cust-ab", Access::Read));
        assert!(!p.allows_file("/data", Access::Read));
        assert!(!p.allows_file("/other", Access::Write));
    }

    #[test]
    fn read_grant_does_not_imply_write() {
        let p = SecurityPolicy::deny_all().grant(Permission::File {
            prefix: "/logs".into(),
            access: Access::Read,
        });
        assert!(p.allows_file("/logs/app.log", Access::Read));
        assert!(!p.allows_file("/logs/app.log", Access::Write));
    }

    #[test]
    fn bind_permissions() {
        let p = SecurityPolicy::deny_all().grant(Permission::Bind {
            ip: IP,
            port: Some(Port(8080)),
        });
        assert!(p.allows_bind(IP, Port(8080)));
        assert!(!p.allows_bind(IP, Port(8081)));
        assert!(!p.allows_bind(IpAddr::new(10, 0, 0, 6), Port(8080)));

        let any_port = SecurityPolicy::deny_all().grant(Permission::Bind { ip: IP, port: None });
        assert!(any_port.allows_bind(IP, Port(1)));
        assert!(any_port.allows_bind(IP, Port(65000)));
    }

    #[test]
    fn connect_permissions() {
        let p = SecurityPolicy::deny_all().grant(Permission::Connect { ip: IP });
        assert!(p.allows_connect(IP));
        assert!(!p.allows_connect(IpAddr::new(1, 2, 3, 4)));
    }

    #[test]
    fn display() {
        assert_eq!(
            Permission::Bind {
                ip: IP,
                port: Some(Port(80))
            }
            .to_string(),
            "bind 10.0.0.5:80"
        );
        assert_eq!(
            Permission::Bind { ip: IP, port: None }.to_string(),
            "bind 10.0.0.5:*"
        );
    }
}
