//! # dosgi-vosgi — virtual OSGi instances
//!
//! Section 2 of the paper develops the design space for running *multiple
//! customers* on shared hardware:
//!
//! 1. **Figure 1** — one OSGi framework per customer, each in its own JVM,
//!    coordinated by an external Instance Manager. Strong isolation, heavy
//!    per-customer overhead, indirect management (RMI/JMX).
//! 2. **Figure 2** — all frameworks inside one JVM; cheap management via a
//!    plain map, lower overhead.
//! 3. **Figure 3** — the Instance Manager itself becomes an OSGi bundle and
//!    the customer frameworks nest *inside* a host framework.
//! 4. **Figure 4** — nested instances become **virtual OSGi instances**
//!    that can *use services and packages of the underlying framework*,
//!    through a topmost delegating classloader that consults the host only
//!    for **explicitly exported** packages/services.
//!
//! This crate implements designs 3–4 (and models 1–2 for the comparison
//! experiment **E1**):
//!
//! * [`InstanceManager`] — owns the host [`Framework`] and the virtual
//!   instances, controls their life-cycle;
//! * [`InstanceDescriptor`] — a customer's deployment: bundles, the
//!   explicit host exports, the sandbox policy, the resource quota;
//! * the **delegating loader** ([`InstanceManager::load_class`]) — normal
//!   instance-local lookup first, then the host, *only* for packages on the
//!   explicit export list (`LoadError::NotExported` otherwise — the paper's
//!   leak-prevention property);
//! * shared services ([`InstanceManager::call_service`]) — same rule at
//!   the service level;
//! * [`SecurityPolicy`] — the `SecurityManager` analogue: capability checks
//!   for filesystem and network access per instance;
//! * [`ResourceQuota`] — per-customer CPU/memory/disk limits that the
//!   monitoring layer evaluates (the SLA substrate).
//!
//! [`Framework`]: dosgi_osgi::Framework

mod descriptor;
mod error;
mod instance;
mod manager;
mod quota;
mod repository;
mod sandbox;
mod topology;

pub use descriptor::{CustomerId, InstanceDescriptor, InstanceDescriptorBuilder, InstanceId};
pub use error::VosgiError;
pub use instance::{InstanceState, VirtualInstance};
pub use manager::InstanceManager;
pub use quota::{QuotaViolation, ResourceQuota};
pub use repository::BundleRepository;
pub use sandbox::{Access, Permission, SecurityPolicy};
pub use topology::{DeploymentTopology, FootprintModel, TopologyFootprint};
