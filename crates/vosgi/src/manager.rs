//! The Instance Manager: life-cycle control and the explicit-export
//! delegation paths (Figures 3–4 of the paper).

use crate::{
    Access, BundleRepository, InstanceDescriptor, InstanceId, InstanceState, QuotaViolation,
    VirtualInstance, VosgiError,
};
use dosgi_net::{IpAddr, Port, SimDuration};
use dosgi_osgi::{
    ActivatorFactory, BundleId, ClassRef, Framework, FrameworkConfig, LoadError, LoadPath,
    ServiceError, SymbolName, UpgradeReport, UsageSnapshot,
};
use dosgi_san::{SharedStore, Value};
use dosgi_telemetry::Telemetry;
use std::collections::BTreeMap;
use std::fmt;

/// Owns the host framework and every virtual instance on a node.
///
/// Architecturally this is the bundle labelled *Instance Manager* in
/// Figures 3–4: it lives "inside" the host OSGi environment (it registers a
/// marker service there) and exposes create/start/stop/destroy plus the two
/// delegation paths — class loading and service calls — that make nested
/// instances *virtual* rather than merely co-located.
pub struct InstanceManager {
    host: Framework,
    instances: BTreeMap<InstanceId, VirtualInstance>,
    next: u64,
    repo: BundleRepository,
    factory: ActivatorFactory,
    store: Option<SharedStore>,
    telemetry: Telemetry,
}

impl fmt::Debug for InstanceManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InstanceManager")
            .field("host", &self.host.name())
            .field("instances", &self.instances.len())
            .finish_non_exhaustive()
    }
}

impl InstanceManager {
    /// Creates a manager around `host`, using `repo` to resolve bundle
    /// names and `factory` to re-create activators.
    pub fn new(host: Framework, repo: BundleRepository, factory: ActivatorFactory) -> Self {
        InstanceManager {
            host,
            instances: BTreeMap::new(),
            next: 1,
            repo,
            factory,
            store: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle. Instance lifecycle transitions are
    /// counted as `vosgi.lifecycle.*`; the handle is also propagated to
    /// the host framework and every instance framework created or
    /// adopted afterwards (`osgi.lifecycle.*`).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.host.set_telemetry(telemetry.clone());
        for inst in self.instances.values_mut() {
            inst.framework.set_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    /// Attaches the SAN; every instance framework created afterwards
    /// persists its state under `instance/<name>`, which is what migration
    /// relies on.
    pub fn attach_store(&mut self, store: SharedStore) {
        self.store = Some(store);
    }

    /// Retries deferred (write-behind) persistence on the host framework
    /// and every instance framework: snapshots and data areas left dirty by
    /// transient SAN failures are re-flushed. Returns how many frameworks
    /// are *still* dirty — zero means every durable copy is current. Cheap
    /// when nothing is dirty; callers run it periodically.
    pub fn flush_persist_all(&mut self) -> usize {
        let mut still_dirty = 0;
        if self.host.flush_persist().is_err() {
            still_dirty += 1;
        }
        for inst in self.instances.values_mut() {
            if inst.framework.flush_persist().is_err() {
                still_dirty += 1;
            }
        }
        still_dirty
    }

    /// Read access to the host framework.
    pub fn host(&self) -> &Framework {
        &self.host
    }

    /// Mutable access to the host framework.
    pub fn host_mut(&mut self) -> &mut Framework {
        &mut self.host
    }

    /// The node's bundle repository.
    pub fn repository(&self) -> &BundleRepository {
        &self.repo
    }

    /// Mutable access to the repository (provisioning new bundles).
    pub fn repository_mut(&mut self) -> &mut BundleRepository {
        &mut self.repo
    }

    /// The activator factory.
    pub fn factory(&self) -> &ActivatorFactory {
        &self.factory
    }

    /// Mutable access to the factory.
    pub fn factory_mut(&mut self) -> &mut ActivatorFactory {
        &mut self.factory
    }

    // ------------------------------------------------------------------
    // Instance life-cycle
    // ------------------------------------------------------------------

    /// Creates a fresh virtual instance from `descriptor`: a nested
    /// framework with the descriptor's bundles installed (not started).
    ///
    /// # Errors
    ///
    /// [`VosgiError::DuplicateInstance`] if the name is taken,
    /// [`VosgiError::UnknownBundle`] if a bundle is not in the repository,
    /// [`VosgiError::Store`] when the initial snapshot cannot be written
    /// (creation is atomic: no instance materializes), or a wrapped
    /// framework error.
    pub fn create_instance(
        &mut self,
        descriptor: InstanceDescriptor,
    ) -> Result<InstanceId, VosgiError> {
        self.check_name_free(&descriptor.name)?;
        let mut fw =
            Framework::with_config(FrameworkConfig::new(&format!("vosgi/{}", descriptor.name)));
        fw.set_telemetry(self.telemetry.clone());
        if let Some(store) = &self.store {
            fw.attach_store(store.clone(), &descriptor.state_namespace())?;
        }
        for name in &descriptor.bundles {
            let manifest = self
                .repo
                .manifest(name)
                .ok_or_else(|| VosgiError::UnknownBundle(name.clone()))?
                .clone();
            let activator = self.factory.create(&manifest);
            fw.install(manifest, activator)?;
        }
        self.telemetry.incr("vosgi.lifecycle.created");
        Ok(self.insert(descriptor, fw, InstanceState::Created))
    }

    /// Re-materializes an instance from its SAN-persisted framework state —
    /// the arrival half of a migration or a failover redeployment. Bundles
    /// that were running when the state was persisted come back running.
    ///
    /// # Errors
    ///
    /// [`VosgiError::DuplicateInstance`], a corrupt-state framework error if
    /// no snapshot exists, [`VosgiError::NoStore`] when no SAN is attached,
    /// or a transient storage error (check
    /// [`is_transient_store`](VosgiError::is_transient_store)) when the SAN
    /// rejects the snapshot read — the caller's retry loop handles those.
    pub fn adopt_instance(
        &mut self,
        descriptor: InstanceDescriptor,
    ) -> Result<InstanceId, VosgiError> {
        self.check_name_free(&descriptor.name)?;
        let store = self
            .store
            .clone()
            .ok_or(VosgiError::NoStore { operation: "adopt" })?;
        let mut fw = Framework::restore(
            FrameworkConfig::new(&format!("vosgi/{}", descriptor.name)),
            store,
            &descriptor.state_namespace(),
            &self.factory,
        )?;
        fw.set_telemetry(self.telemetry.clone());
        let running = fw.bundles().any(|b| b.state.is_active());
        let state = if running {
            InstanceState::Running
        } else {
            InstanceState::Stopped
        };
        self.telemetry.incr("vosgi.lifecycle.adopted");
        Ok(self.insert(descriptor, fw, state))
    }

    fn check_name_free(&self, name: &str) -> Result<(), VosgiError> {
        if self
            .instances
            .values()
            .any(|i| i.descriptor.name == name && i.state != InstanceState::Destroyed)
        {
            return Err(VosgiError::DuplicateInstance(name.to_owned()));
        }
        Ok(())
    }

    fn insert(
        &mut self,
        descriptor: InstanceDescriptor,
        framework: Framework,
        state: InstanceState,
    ) -> InstanceId {
        let id = InstanceId(self.next);
        self.next += 1;
        self.instances.insert(
            id,
            VirtualInstance {
                id,
                descriptor,
                state,
                framework,
            },
        );
        id
    }

    /// Starts every bundle of the instance (ascending start-level order).
    ///
    /// # Errors
    ///
    /// [`VosgiError::NoSuchInstance`]; individual activator failures are
    /// reported as framework events, not errors, so one bad bundle does not
    /// block a customer's remaining services.
    pub fn start_instance(&mut self, id: InstanceId) -> Result<(), VosgiError> {
        let inst = self.instance_mut_impl(id)?;
        let mut order: Vec<(u32, BundleId)> = inst
            .framework
            .bundles()
            .map(|b| (b.manifest.start_level, b.id))
            .collect();
        order.sort();
        inst.framework.resolve_all();
        for (_, bid) in order {
            if let Err(e) = inst.framework.start(bid) {
                // Recorded for the monitoring layer; other bundles continue.
                let _ = e;
            }
        }
        inst.state = InstanceState::Running;
        self.telemetry.incr("vosgi.lifecycle.started");
        Ok(())
    }

    /// Orderly shutdown of the instance (state persisted; restartable or
    /// adoptable elsewhere).
    ///
    /// # Errors
    ///
    /// [`VosgiError::NoSuchInstance`].
    pub fn stop_instance(&mut self, id: InstanceId) -> Result<(), VosgiError> {
        let inst = self.instance_mut_impl(id)?;
        inst.framework.shutdown();
        inst.state = InstanceState::Stopped;
        self.telemetry.incr("vosgi.lifecycle.stopped");
        Ok(())
    }

    /// Removes the instance from this node. With `wipe_state`, its SAN
    /// namespace is deleted too (terminal destruction); without, the state
    /// stays for adoption by another node (the migration departure path).
    ///
    /// # Errors
    ///
    /// [`VosgiError::NoSuchInstance`]. Without `wipe_state` (the departure
    /// path) a [`VosgiError::Store`] means deferred persistence could not be
    /// flushed — the instance **stays on the node** so the caller can retry,
    /// because the SAN copy is about to become the only copy. With
    /// `wipe_state`, a storage error means the instance is gone from this
    /// node but the durable wipe is outstanding.
    pub fn destroy_instance(&mut self, id: InstanceId, wipe_state: bool) -> Result<(), VosgiError> {
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(VosgiError::NoSuchInstance(id))?;
        if inst.state == InstanceState::Running {
            inst.framework.shutdown();
            inst.state = InstanceState::Stopped;
        }
        if !wipe_state {
            inst.framework.flush_persist()?;
        }
        let mut inst = self
            .instances
            .remove(&id)
            .expect("looked up the id just above");
        inst.state = InstanceState::Destroyed;
        if wipe_state {
            if let Some(store) = &self.store {
                store.delete_namespace(&inst.descriptor.state_namespace())?;
            }
        }
        self.telemetry.incr("vosgi.lifecycle.destroyed");
        Ok(())
    }

    /// Installs (and starts) an additional bundle from the repository into
    /// a *running* instance — the paper's plugin-style extension: "adding
    /// new functionality to an existing system could be achieved by adding
    /// a new bundle … without disrupting the production environment".
    ///
    /// # Errors
    ///
    /// [`VosgiError::NoSuchInstance`], [`VosgiError::UnknownBundle`], or a
    /// wrapped framework error.
    pub fn install_bundle(
        &mut self,
        id: InstanceId,
        symbolic_name: &str,
    ) -> Result<BundleId, VosgiError> {
        let manifest = self
            .repo
            .manifest(symbolic_name)
            .ok_or_else(|| VosgiError::UnknownBundle(symbolic_name.to_owned()))?
            .clone();
        let activator = self.factory.create(&manifest);
        let inst = self.instance_mut_impl(id)?;
        let bid = inst.framework.install(manifest, activator)?;
        if inst.state == InstanceState::Running {
            inst.framework.start(bid)?;
        }
        Ok(bid)
    }

    /// Replaces a bundle of a running instance with a new manifest at
    /// run-time (the OSGi `update` operation): the bundle restarts, its
    /// dependents re-wire, every *other* bundle keeps serving.
    ///
    /// # Errors
    ///
    /// [`VosgiError::NoSuchInstance`], [`VosgiError::UnknownBundle`] when
    /// the instance has no bundle of that name, or a wrapped framework
    /// error (e.g. the new manifest does not resolve).
    pub fn update_bundle(
        &mut self,
        id: InstanceId,
        symbolic_name: &str,
        manifest: dosgi_osgi::BundleManifest,
    ) -> Result<(), VosgiError> {
        // The new revision brings a new activator (built from the new
        // manifest), exactly as a real update loads the new bundle's
        // activator class.
        let activator = self.factory.create(&manifest);
        let inst = self.instance_mut_impl(id)?;
        let bid = inst
            .framework
            .find_bundle(symbolic_name)
            .ok_or_else(|| VosgiError::UnknownBundle(symbolic_name.to_owned()))?;
        inst.framework
            .update_with_activator(bid, manifest, activator)?;
        Ok(())
    }

    /// Hot-swaps a bundle of a running instance **with state handoff**
    /// ([`Framework::upgrade_bundle`]): the old revision quiesces, its
    /// persisted state flushes to the SAN, the new revision adopts it —
    /// all while the instance's other bundles keep serving. Unlike
    /// [`update_bundle`](Self::update_bundle), an incompatible target
    /// (different symbolic name or major version than the state's owner)
    /// is rejected before the old revision stops.
    ///
    /// # Errors
    ///
    /// [`VosgiError::NoSuchInstance`], [`VosgiError::UnknownBundle`] when
    /// the instance has no bundle of that name, or a wrapped framework
    /// error — [`is_transient_store`](VosgiError::is_transient_store)
    /// distinguishes a retryable SAN fault during the persist phase (the
    /// old revision was rolled back and still serves) from a permanent
    /// rejection.
    pub fn upgrade_bundle(
        &mut self,
        id: InstanceId,
        symbolic_name: &str,
        manifest: dosgi_osgi::BundleManifest,
    ) -> Result<UpgradeReport, VosgiError> {
        let activator = self.factory.create(&manifest);
        let inst = self.instance_mut_impl(id)?;
        let bid = inst
            .framework
            .find_bundle(symbolic_name)
            .ok_or_else(|| VosgiError::UnknownBundle(symbolic_name.to_owned()))?;
        let report = inst.framework.upgrade_bundle(bid, manifest, activator)?;
        self.telemetry.incr("vosgi.lifecycle.upgraded");
        Ok(report)
    }

    // ------------------------------------------------------------------
    // Delegation paths (the "virtual" in virtual OSGi)
    // ------------------------------------------------------------------

    /// Loads a class for `bundle` inside instance `id`.
    ///
    /// Lookup order is the paper's: *"the virtual instance undergoes the
    /// normal lookup process and if this fails it checks the custom
    /// classloader"*, which forwards to the host **only** for explicitly
    /// exported packages.
    ///
    /// # Errors
    ///
    /// [`LoadError::NotExported`] (wrapped) when the class exists only in a
    /// host package that is not on the instance's export list — the
    /// leak-prevention property; otherwise the usual [`LoadError`]s.
    pub fn load_class(
        &mut self,
        id: InstanceId,
        bundle: BundleId,
        symbol: &SymbolName,
    ) -> Result<ClassRef, VosgiError> {
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(VosgiError::NoSuchInstance(id))?;
        match inst.framework.load_class(bundle, symbol) {
            Ok(r) => Ok(r),
            Err(LoadError::NotFound(_)) => {
                if !inst
                    .descriptor
                    .shared_packages
                    .iter()
                    .any(|p| p == symbol.package())
                {
                    return Err(LoadError::NotExported(symbol.package().clone()).into());
                }
                // Delegated to the host: find a host exporter of the package.
                let exporter = self
                    .host
                    .bundles()
                    .filter(|b| b.state.is_resolved())
                    .find_map(|b| {
                        b.manifest
                            .exports
                            .iter()
                            .find(|e| &e.name == symbol.package())
                            .map(|e| (b.id, e))
                    });
                match exporter {
                    Some((host_bundle, export)) => {
                        if export.symbols.iter().any(|s| s == symbol.simple()) {
                            Ok(ClassRef {
                                symbol: symbol.clone(),
                                defined_by: Some(host_bundle),
                                via: LoadPath::HostDelegation,
                            })
                        } else {
                            Err(LoadError::NoSuchSymbol {
                                package: symbol.package().clone(),
                                simple: symbol.simple().to_owned(),
                            }
                            .into())
                        }
                    }
                    None => Err(LoadError::NotFound(symbol.clone()).into()),
                }
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Calls `interface`'s best provider as seen from instance `id`:
    /// instance-local services first, then host services **iff** the
    /// interface is on the instance's shared-service list.
    ///
    /// # Errors
    ///
    /// [`VosgiError::Denied`] when the service exists on the host but is not
    /// exported to this instance; [`ServiceError::NoSuchService`] (wrapped)
    /// when nobody offers it.
    pub fn call_service(
        &mut self,
        id: InstanceId,
        interface: &str,
        method: &str,
        arg: &Value,
    ) -> Result<Value, VosgiError> {
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(VosgiError::NoSuchInstance(id))?;
        if let Some(sid) = inst.framework.best_service(interface) {
            return Ok(inst.framework.call_service(sid, method, arg)?);
        }
        let shared = inst
            .descriptor
            .shared_services
            .iter()
            .any(|s| s == interface);
        match self.host.best_service(interface) {
            Some(sid) if shared => Ok(self.host.call_service(sid, method, arg)?),
            Some(_) => Err(VosgiError::Denied(format!(
                "service {interface} exists on the host but is not exported to {}",
                inst.descriptor.name
            ))),
            None => Err(ServiceError::NoSuchService(interface.to_owned()).into()),
        }
    }

    // ------------------------------------------------------------------
    // Sandboxed I/O (the SecurityManager analogue)
    // ------------------------------------------------------------------

    /// A simulated file write by instance `id`.
    ///
    /// # Errors
    ///
    /// [`VosgiError::Denied`] unless the instance's policy grants write
    /// access to the path, [`VosgiError::QuotaExceeded`] when it would
    /// exceed the disk quota.
    pub fn fs_write(&mut self, id: InstanceId, path: &str, bytes: u64) -> Result<(), VosgiError> {
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(VosgiError::NoSuchInstance(id))?;
        if !inst.descriptor.policy.allows_file(path, Access::Write) {
            return Err(VosgiError::Denied(format!("write {path}")));
        }
        let usage = inst.usage();
        if usage.disk + bytes > inst.descriptor.quota.disk_bytes {
            return Err(VosgiError::QuotaExceeded(format!(
                "disk: {} + {bytes} > {}",
                usage.disk, inst.descriptor.quota.disk_bytes
            )));
        }
        inst.framework
            .ledger_mut()
            .charge_disk(INSTANCE_ACCOUNT, bytes);
        Ok(())
    }

    /// A simulated file read by instance `id`.
    ///
    /// # Errors
    ///
    /// [`VosgiError::Denied`] unless the policy grants read access.
    pub fn fs_read(&self, id: InstanceId, path: &str) -> Result<(), VosgiError> {
        let inst = self
            .instances
            .get(&id)
            .ok_or(VosgiError::NoSuchInstance(id))?;
        if !inst.descriptor.policy.allows_file(path, Access::Read) {
            return Err(VosgiError::Denied(format!("read {path}")));
        }
        Ok(())
    }

    /// A simulated socket bind by instance `id`.
    ///
    /// # Errors
    ///
    /// [`VosgiError::Denied`] unless the policy grants the bind.
    pub fn net_bind(&self, id: InstanceId, ip: IpAddr, port: Port) -> Result<(), VosgiError> {
        let inst = self
            .instances
            .get(&id)
            .ok_or(VosgiError::NoSuchInstance(id))?;
        if !inst.descriptor.policy.allows_bind(ip, port) {
            return Err(VosgiError::Denied(format!("bind {ip}:{port}")));
        }
        Ok(())
    }

    /// A simulated outbound connection by instance `id`.
    ///
    /// # Errors
    ///
    /// [`VosgiError::Denied`] unless the policy grants the connect.
    pub fn net_connect(&self, id: InstanceId, ip: IpAddr) -> Result<(), VosgiError> {
        let inst = self
            .instances
            .get(&id)
            .ok_or(VosgiError::NoSuchInstance(id))?;
        if !inst.descriptor.policy.allows_connect(ip) {
            return Err(VosgiError::Denied(format!("connect {ip}")));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Introspection / monitoring hooks
    // ------------------------------------------------------------------

    /// Looks up an instance.
    pub fn instance(&self, id: InstanceId) -> Option<&VirtualInstance> {
        self.instances.get(&id)
    }

    /// Mutable instance access.
    pub fn instance_mut(&mut self, id: InstanceId) -> Option<&mut VirtualInstance> {
        self.instances.get_mut(&id)
    }

    fn instance_mut_impl(&mut self, id: InstanceId) -> Result<&mut VirtualInstance, VosgiError> {
        self.instances
            .get_mut(&id)
            .ok_or(VosgiError::NoSuchInstance(id))
    }

    /// Iterates over instances in id order.
    pub fn instances(&self) -> impl Iterator<Item = &VirtualInstance> {
        self.instances.values()
    }

    /// Finds an instance by name.
    pub fn find_by_name(&self, name: &str) -> Option<InstanceId> {
        self.instances
            .values()
            .find(|i| i.descriptor.name == name)
            .map(|i| i.id)
    }

    /// Number of (non-destroyed) instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when no instances exist.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// An instance's aggregate usage.
    ///
    /// # Errors
    ///
    /// [`VosgiError::NoSuchInstance`].
    pub fn usage(&self, id: InstanceId) -> Result<UsageSnapshot, VosgiError> {
        self.instances
            .get(&id)
            .map(|i| i.usage())
            .ok_or(VosgiError::NoSuchInstance(id))
    }

    /// Evaluates an instance's quota against CPU consumed over a window.
    ///
    /// # Errors
    ///
    /// [`VosgiError::NoSuchInstance`].
    pub fn check_quota(
        &self,
        id: InstanceId,
        cpu_in_window: SimDuration,
        window: SimDuration,
    ) -> Result<Vec<QuotaViolation>, VosgiError> {
        let inst = self
            .instances
            .get(&id)
            .ok_or(VosgiError::NoSuchInstance(id))?;
        Ok(inst
            .descriptor
            .quota
            .check(&inst.usage(), cpu_in_window, window))
    }
}

/// The pseudo bundle id charged for instance-level (non-bundle) I/O.
pub(crate) const INSTANCE_ACCOUNT: BundleId = BundleId(0);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstanceDescriptor, ResourceQuota, SecurityPolicy};
    use dosgi_osgi::{CallContext, FnActivator, ManifestBuilder, Version};
    use std::collections::BTreeMap as Props;

    const LOGGER_IFACE: &str = "org.host.log.Logger";

    /// Builds a host framework exporting a log package + service, the way
    /// the paper runs the log/HTTP/JMX services in the underlying
    /// environment.
    fn host() -> Framework {
        let mut fw = Framework::new("host");
        let m = ManifestBuilder::new("org.host.log", Version::new(1, 0, 0))
            .export_package("org.host.log.api", Version::new(1, 0, 0), ["Logger"])
            .build()
            .unwrap();
        let id = fw
            .install(
                m,
                Some(Box::new(FnActivator::on_start(|ctx| {
                    ctx.register_service(
                        &[LOGGER_IFACE],
                        Props::new(),
                        Box::new(
                            |ctx: &mut CallContext<'_>, method: &str, arg: &Value| match method {
                                "log" => {
                                    ctx.charge_cpu(SimDuration::from_micros(5));
                                    Ok(arg.clone())
                                }
                                m => Err(ServiceError::Failed(format!("no {m}"))),
                            },
                        ),
                    );
                    Ok(())
                }))),
            )
            .unwrap();
        fw.start(id).unwrap();
        fw
    }

    fn repo_and_factory() -> (BundleRepository, ActivatorFactory) {
        let mut repo = BundleRepository::new();
        repo.add(
            ManifestBuilder::new("org.cust.app", Version::new(1, 0, 0))
                .private_package("org.cust.app.impl", ["Main"])
                .build()
                .unwrap(),
        );
        let mut factory = ActivatorFactory::new();
        factory.register("org.cust.app", |_| {
            Box::new(FnActivator::on_start(|ctx| {
                ctx.register_service(
                    &["org.cust.app.Api"],
                    Props::new(),
                    Box::new(
                        |_: &mut CallContext<'_>, method: &str, _: &Value| match method {
                            "ping" => Ok(Value::from("pong")),
                            m => Err(ServiceError::Failed(format!("no {m}"))),
                        },
                    ),
                );
                Ok(())
            }))
        });
        (repo, factory)
    }

    fn manager() -> InstanceManager {
        let (repo, factory) = repo_and_factory();
        InstanceManager::new(host(), repo, factory)
    }

    fn descriptor(name: &str) -> InstanceDescriptor {
        InstanceDescriptor::builder("acme", name)
            .bundle("org.cust.app")
            .share_package("org.host.log.api")
            .share_service(LOGGER_IFACE)
            .build()
    }

    #[test]
    fn create_start_stop_destroy_cycle() {
        let mut mgr = manager();
        let id = mgr.create_instance(descriptor("a")).unwrap();
        assert_eq!(mgr.instance(id).unwrap().state, InstanceState::Created);
        mgr.start_instance(id).unwrap();
        assert!(mgr.instance(id).unwrap().is_running());
        // The customer bundle's own service works.
        let out = mgr
            .call_service(id, "org.cust.app.Api", "ping", &Value::Null)
            .unwrap();
        assert_eq!(out, Value::from("pong"));
        mgr.stop_instance(id).unwrap();
        assert_eq!(mgr.instance(id).unwrap().state, InstanceState::Stopped);
        mgr.destroy_instance(id, true).unwrap();
        assert!(mgr.instance(id).is_none());
        assert!(mgr.is_empty());
    }

    #[test]
    fn duplicate_names_and_unknown_bundles_rejected() {
        let mut mgr = manager();
        mgr.create_instance(descriptor("a")).unwrap();
        assert!(matches!(
            mgr.create_instance(descriptor("a")),
            Err(VosgiError::DuplicateInstance(_))
        ));
        let bad = InstanceDescriptor::builder("x", "b")
            .bundle("no.such.bundle")
            .build();
        assert!(matches!(
            mgr.create_instance(bad),
            Err(VosgiError::UnknownBundle(_))
        ));
    }

    #[test]
    fn shared_service_is_reachable_and_charged_to_the_host() {
        let mut mgr = manager();
        let id = mgr.create_instance(descriptor("a")).unwrap();
        mgr.start_instance(id).unwrap();
        let out = mgr
            .call_service(id, LOGGER_IFACE, "log", &Value::from("hello"))
            .unwrap();
        assert_eq!(out, Value::from("hello"));
        // The CPU charge landed on the host's ledger, not the instance's.
        assert!(mgr.host().ledger().total().cpu > SimDuration::ZERO);
        assert_eq!(mgr.usage(id).unwrap().cpu, SimDuration::ZERO);
    }

    #[test]
    fn unshared_host_service_is_denied_not_missing() {
        let mut mgr = manager();
        // Descriptor without the service share.
        let d = InstanceDescriptor::builder("acme", "a")
            .bundle("org.cust.app")
            .build();
        let id = mgr.create_instance(d).unwrap();
        mgr.start_instance(id).unwrap();
        let err = mgr
            .call_service(id, LOGGER_IFACE, "log", &Value::Null)
            .unwrap_err();
        assert!(matches!(err, VosgiError::Denied(_)), "got {err:?}");
        // A service nobody offers is NoSuchService, not Denied.
        let err = mgr
            .call_service(id, "ghost.Service", "x", &Value::Null)
            .unwrap_err();
        assert!(matches!(
            err,
            VosgiError::Service(ServiceError::NoSuchService(_))
        ));
    }

    #[test]
    fn class_delegation_respects_the_explicit_export_list() {
        let mut mgr = manager();
        let id = mgr.create_instance(descriptor("a")).unwrap();
        mgr.start_instance(id).unwrap();
        let bundle = mgr
            .instance(id)
            .unwrap()
            .framework()
            .find_bundle("org.cust.app")
            .unwrap();

        // Own class resolves locally.
        let own = SymbolName::parse("org.cust.app.impl.Main").unwrap();
        let r = mgr.load_class(id, bundle, &own).unwrap();
        assert_eq!(r.via, LoadPath::Own);

        // Shared host package delegates.
        let shared = SymbolName::parse("org.host.log.api.Logger").unwrap();
        let r = mgr.load_class(id, bundle, &shared).unwrap();
        assert_eq!(r.via, LoadPath::HostDelegation);

        // Shared package, missing symbol: precise error.
        let missing = SymbolName::parse("org.host.log.api.Nope").unwrap();
        assert!(matches!(
            mgr.load_class(id, bundle, &missing),
            Err(VosgiError::Load(LoadError::NoSuchSymbol { .. }))
        ));

        // A host package NOT on the export list must not leak.
        let d2 = InstanceDescriptor::builder("evil", "b")
            .bundle("org.cust.app")
            .build();
        let id2 = mgr.create_instance(d2).unwrap();
        mgr.start_instance(id2).unwrap();
        let bundle2 = mgr
            .instance(id2)
            .unwrap()
            .framework()
            .find_bundle("org.cust.app")
            .unwrap();
        assert!(matches!(
            mgr.load_class(id2, bundle2, &shared),
            Err(VosgiError::Load(LoadError::NotExported(_)))
        ));
    }

    #[test]
    fn adopt_rematerializes_a_running_instance() {
        let store = SharedStore::new();
        let mut mgr = manager();
        mgr.attach_store(store.clone());
        let id = mgr.create_instance(descriptor("a")).unwrap();
        mgr.start_instance(id).unwrap();
        // Departure: orderly stop, state stays in the SAN.
        mgr.stop_instance(id).unwrap();
        mgr.destroy_instance(id, false).unwrap();

        // Arrival on "another node".
        let (repo, factory) = repo_and_factory();
        let mut mgr2 = InstanceManager::new(host(), repo, factory);
        mgr2.attach_store(store);
        let id2 = mgr2.adopt_instance(descriptor("a")).unwrap();
        assert!(mgr2.instance(id2).unwrap().is_running());
        let out = mgr2
            .call_service(id2, "org.cust.app.Api", "ping", &Value::Null)
            .unwrap();
        assert_eq!(out, Value::from("pong"));
    }

    #[test]
    fn adopt_requires_a_store_and_a_snapshot() {
        let mut mgr = manager();
        assert!(matches!(
            mgr.adopt_instance(descriptor("a")),
            Err(VosgiError::NoStore { operation: "adopt" })
        ));
        mgr.attach_store(SharedStore::new());
        assert!(matches!(
            mgr.adopt_instance(descriptor("a")),
            Err(VosgiError::Framework(_))
        ));
    }

    #[test]
    fn sandbox_gates_fs_and_net() {
        let mut mgr = manager();
        let d = InstanceDescriptor::builder("acme", "a")
            .bundle("org.cust.app")
            .policy(
                SecurityPolicy::deny_all()
                    .grant_file_rw("/data/acme")
                    .grant(crate::Permission::Bind {
                        ip: IpAddr::new(10, 0, 0, 9),
                        port: Some(Port(8080)),
                    })
                    .grant(crate::Permission::Connect {
                        ip: IpAddr::new(10, 0, 0, 1),
                    }),
            )
            .build();
        let id = mgr.create_instance(d).unwrap();
        mgr.fs_write(id, "/data/acme/file", 100).unwrap();
        mgr.fs_read(id, "/data/acme/file").unwrap();
        assert!(matches!(
            mgr.fs_write(id, "/etc/passwd", 1),
            Err(VosgiError::Denied(_))
        ));
        assert!(matches!(
            mgr.fs_read(id, "/data/other"),
            Err(VosgiError::Denied(_))
        ));
        mgr.net_bind(id, IpAddr::new(10, 0, 0, 9), Port(8080))
            .unwrap();
        assert!(matches!(
            mgr.net_bind(id, IpAddr::new(10, 0, 0, 9), Port(80)),
            Err(VosgiError::Denied(_))
        ));
        mgr.net_connect(id, IpAddr::new(10, 0, 0, 1)).unwrap();
        assert!(matches!(
            mgr.net_connect(id, IpAddr::new(8, 8, 8, 8)),
            Err(VosgiError::Denied(_))
        ));
    }

    #[test]
    fn disk_quota_blocks_runaway_writes() {
        let mut mgr = manager();
        let d = InstanceDescriptor::builder("acme", "a")
            .bundle("org.cust.app")
            .policy(SecurityPolicy::deny_all().grant_file_rw("/data"))
            .quota(ResourceQuota {
                disk_bytes: 1000,
                ..ResourceQuota::standard()
            })
            .build();
        let id = mgr.create_instance(d).unwrap();
        mgr.fs_write(id, "/data/x", 600).unwrap();
        let err = mgr.fs_write(id, "/data/y", 600).unwrap_err();
        assert!(matches!(err, VosgiError::QuotaExceeded(_)));
        assert_eq!(mgr.usage(id).unwrap().disk, 600);
        // Quota check reports the memory/disk gauges too.
        let v = mgr
            .check_quota(id, SimDuration::ZERO, SimDuration::from_secs(1))
            .unwrap();
        assert!(v.is_empty());
    }

    #[test]
    fn bundles_install_and_update_at_runtime() {
        let mut mgr = manager();
        // Extend the repo with a second customer bundle + activator.
        mgr.repository_mut().add(
            ManifestBuilder::new("org.cust.extra", Version::new(1, 0, 0))
                .build()
                .unwrap(),
        );
        mgr.factory_mut().register("org.cust.extra", |_| {
            Box::new(FnActivator::on_start(|ctx| {
                ctx.register_service(
                    &["org.cust.extra.Api"],
                    Props::new(),
                    Box::new(|_: &mut CallContext<'_>, _: &str, _: &Value| Ok(Value::Int(42))),
                );
                Ok(())
            }))
        });
        let id = mgr.create_instance(descriptor("a")).unwrap();
        mgr.start_instance(id).unwrap();

        // Hot-install: the new bundle's service appears while the old one
        // keeps serving.
        mgr.install_bundle(id, "org.cust.extra").unwrap();
        assert_eq!(
            mgr.call_service(id, "org.cust.extra.Api", "x", &Value::Null)
                .unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            mgr.call_service(id, "org.cust.app.Api", "ping", &Value::Null)
                .unwrap(),
            Value::from("pong")
        );
        assert!(matches!(
            mgr.install_bundle(id, "no.such"),
            Err(VosgiError::UnknownBundle(_))
        ));

        // Hot-update: bump the app bundle's version in place.
        let v2 = ManifestBuilder::new("org.cust.app", Version::new(2, 0, 0))
            .private_package("org.cust.app.impl", ["Main"])
            .build()
            .unwrap();
        mgr.update_bundle(id, "org.cust.app", v2).unwrap();
        let fw = mgr.instance(id).unwrap().framework();
        let bid = fw.find_bundle("org.cust.app").unwrap();
        assert_eq!(
            fw.bundle(bid).unwrap().manifest.version,
            Version::new(2, 0, 0)
        );
        // The activator re-registered the service on restart.
        assert_eq!(
            mgr.call_service(id, "org.cust.app.Api", "ping", &Value::Null)
                .unwrap(),
            Value::from("pong")
        );
        assert!(matches!(
            mgr.update_bundle(
                id,
                "ghost",
                ManifestBuilder::new("g", Version::ZERO).build().unwrap()
            ),
            Err(VosgiError::UnknownBundle(_))
        ));
    }

    #[test]
    fn bundles_upgrade_in_place_with_state_handoff() {
        let store = SharedStore::new();
        let mut mgr = manager();
        mgr.attach_store(store.clone());
        let id = mgr.create_instance(descriptor("a")).unwrap();
        mgr.start_instance(id).unwrap();
        // Seed data-area state the upgraded revision must inherit.
        {
            let fw = mgr.instance_mut(id).unwrap().framework_mut();
            let bid = fw.find_bundle("org.cust.app").unwrap();
            fw.bundle_store_put(bid, "n", Value::Int(7)).unwrap();
        }
        let v11 = ManifestBuilder::new("org.cust.app", Version::new(1, 1, 0))
            .private_package("org.cust.app.impl", ["Main"])
            .build()
            .unwrap();
        let report = mgr.upgrade_bundle(id, "org.cust.app", v11).unwrap();
        assert_eq!(report.from, Version::new(1, 0, 0));
        assert_eq!(report.to, Version::new(1, 1, 0));
        // The new revision serves and sees the handed-off state.
        assert_eq!(
            mgr.call_service(id, "org.cust.app.Api", "ping", &Value::Null)
                .unwrap(),
            Value::from("pong")
        );
        {
            let fw = mgr.instance_mut(id).unwrap().framework_mut();
            let bid = fw.find_bundle("org.cust.app").unwrap();
            assert_eq!(fw.bundle_store_get(bid, "n").unwrap(), Some(Value::Int(7)));
        }
        // An incompatible major is rejected without disturbing service.
        let v2 = ManifestBuilder::new("org.cust.app", Version::new(2, 0, 0))
            .private_package("org.cust.app.impl", ["Main"])
            .build()
            .unwrap();
        let err = mgr.upgrade_bundle(id, "org.cust.app", v2).unwrap_err();
        assert!(!err.is_transient_store(), "rejection is permanent: {err}");
        assert_eq!(
            mgr.call_service(id, "org.cust.app.Api", "ping", &Value::Null)
                .unwrap(),
            Value::from("pong")
        );
        assert!(matches!(
            mgr.upgrade_bundle(
                id,
                "ghost",
                ManifestBuilder::new("g", Version::ZERO).build().unwrap()
            ),
            Err(VosgiError::UnknownBundle(_))
        ));
    }

    #[test]
    fn upgrade_during_san_fault_is_transient_and_retryable() {
        use dosgi_san::FaultPlan;
        let store = SharedStore::new();
        let mut mgr = manager();
        mgr.attach_store(store.clone());
        let id = mgr.create_instance(descriptor("a")).unwrap();
        mgr.start_instance(id).unwrap();
        {
            let fw = mgr.instance_mut(id).unwrap().framework_mut();
            let bid = fw.find_bundle("org.cust.app").unwrap();
            fw.bundle_store_put(bid, "n", Value::Int(3)).unwrap();
        }
        store.set_fault_plan(FaultPlan::flaky(1.0, 11));
        let v11 = ManifestBuilder::new("org.cust.app", Version::new(1, 1, 0))
            .private_package("org.cust.app.impl", ["Main"])
            .build()
            .unwrap();
        let err = mgr
            .upgrade_bundle(id, "org.cust.app", v11.clone())
            .unwrap_err();
        assert!(err.is_transient_store(), "SAN fault is retryable: {err}");
        // Rolled back: v1 still serves.
        assert_eq!(
            mgr.call_service(id, "org.cust.app.Api", "ping", &Value::Null)
                .unwrap(),
            Value::from("pong")
        );
        store.faults().clear();
        let report = mgr.upgrade_bundle(id, "org.cust.app", v11).unwrap();
        assert_eq!(report.to, Version::new(1, 1, 0));
    }

    #[test]
    fn usage_isolated_per_instance() {
        let mut mgr = manager();
        let a = mgr.create_instance(descriptor("a")).unwrap();
        let b = mgr.create_instance(descriptor("b")).unwrap();
        mgr.start_instance(a).unwrap();
        mgr.start_instance(b).unwrap();
        for _ in 0..3 {
            mgr.call_service(a, "org.cust.app.Api", "ping", &Value::Null)
                .unwrap();
        }
        assert_eq!(mgr.usage(a).unwrap().calls, 3);
        assert_eq!(mgr.usage(b).unwrap().calls, 0);
        assert_eq!(mgr.find_by_name("b"), Some(b));
        assert_eq!(mgr.len(), 2);
    }

    #[test]
    fn adopt_during_brownout_is_classified_transient() {
        use dosgi_net::SimTime;
        use dosgi_san::FaultPlan;

        let store = SharedStore::new();
        let mut mgr = manager();
        mgr.attach_store(store.clone());
        let id = mgr.create_instance(descriptor("a")).unwrap();
        mgr.start_instance(id).unwrap();
        mgr.stop_instance(id).unwrap();
        mgr.destroy_instance(id, false).unwrap();

        store.set_fault_plan(FaultPlan::none().with_brownout(SimTime::ZERO, SimTime::from_secs(5)));
        let err = mgr.adopt_instance(descriptor("a")).unwrap_err();
        assert!(err.is_transient_store(), "got {err:?}");
        // A genuinely missing snapshot is NOT transient: retrying is futile.
        store.set_now(SimTime::from_secs(5));
        let err = mgr.adopt_instance(descriptor("ghost")).unwrap_err();
        assert!(!err.is_transient_store(), "got {err:?}");
        // After the brown-out, the same adoption succeeds (the orderly stop
        // kept autostart, so the instance comes back running).
        let id2 = mgr.adopt_instance(descriptor("a")).unwrap();
        assert!(mgr.instance(id2).unwrap().is_running());
    }

    #[test]
    fn destroy_wipe_failure_still_removes_the_instance() {
        use dosgi_net::SimTime;
        use dosgi_san::FaultPlan;

        let store = SharedStore::new();
        let mut mgr = manager();
        mgr.attach_store(store.clone());
        let id = mgr.create_instance(descriptor("a")).unwrap();
        store.set_fault_plan(FaultPlan::none().with_brownout(SimTime::ZERO, SimTime::from_secs(5)));
        let err = mgr.destroy_instance(id, true).unwrap_err();
        assert!(err.is_transient_store(), "got {err:?}");
        assert!(mgr.instance(id).is_none(), "gone from the node regardless");
        // Durable state survives until a successful wipe — adoptable.
        store.set_now(SimTime::from_secs(5));
        assert!(mgr.adopt_instance(descriptor("a")).is_ok());
    }
}
