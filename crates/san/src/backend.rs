//! The storage backend contract behind [`SharedStore`](crate::SharedStore).
//!
//! The SAN's *semantics* — versioning, tombstones, namespace layout — are
//! the product; the data structure holding the bytes is interchangeable.
//! [`StoreBackend`] is that seam: `SharedStore` stays the single
//! fault-injecting, telemetry-emitting, stats-accounting front door, and a
//! backend only has to answer raw reads and writes. Every backend must pass
//! the identical golden-fixture conformance suite
//! ([`crate::conformance`]), the storeless-oracle property test, and the
//! chaos sweep with fingerprints byte-equal to every other backend — see
//! DESIGN.md §6e for how to add one.
//!
//! # Versioning contract
//!
//! Every key carries a monotonically increasing version counter that
//! **survives deletion**: a delete leaves a *tombstone* remembering the
//! last version, and a later re-insert continues counting from it. This is
//! load-bearing for the PR 4 change-detection machinery — without
//! tombstones, `delete` followed by an identical re-`put` would hand the
//! key the same version a stale reader already cached, and the reader
//! would skip state it must re-fetch.
//!
//! * [`StoreBackend::insert`] returns `counter + 1` where `counter` is the
//!   live version, the tombstone version, or 0 for a never-written key.
//! * [`StoreBackend::remove`] / [`StoreBackend::remove_namespace`] keep
//!   the counter in a tombstone; live reads (`get`, `read_namespace`,
//!   `list_keys`, `list_namespaces`) never see tombstones.
//!
//! Change detection itself (skip a byte-identical rewrite) lives in
//! `SharedStore`, *above* the trait, so its semantics cannot diverge
//! between backends; [`StoreBackend::identical_live`] is only the
//! allocation-free probe it uses.

use crate::store::Versioned;
use crate::Value;

/// The per-key version-counter state a backend reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyVersion {
    /// Never written.
    Absent,
    /// Currently live at this version.
    Live(u64),
    /// Deleted; the counter a re-insert must continue from.
    Tombstone(u64),
}

impl KeyVersion {
    /// The version a reader observes: live versions only (a tombstoned key
    /// reads as absent, i.e. 0 — the value a `cas` with `expected == 0`
    /// matches against).
    pub fn live(self) -> u64 {
        match self {
            KeyVersion::Live(v) => v,
            KeyVersion::Absent | KeyVersion::Tombstone(_) => 0,
        }
    }

    /// The counter the next insert bumps from (includes tombstones).
    pub fn counter(self) -> u64 {
        match self {
            KeyVersion::Absent => 0,
            KeyVersion::Live(v) | KeyVersion::Tombstone(v) => v,
        }
    }
}

/// Maintenance counters a backend exposes for benches and experiments.
///
/// The map backend reports only `live_bytes`; the log backend fills in the
/// segment/compaction story. These are *diagnostic* — they are not part of
/// the conformance surface and may legitimately differ across backends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Encoded bytes of live values currently stored.
    pub live_bytes: u64,
    /// Log only: bytes in segments owed to superseded/deleted records.
    pub dead_bytes: u64,
    /// Log only: segments currently on "disk" (sealed + active).
    pub segments: u64,
    /// Log only: segments sealed over the backend's lifetime.
    pub sealed_segments: u64,
    /// Log only: compaction passes run.
    pub compactions: u64,
    /// Log only: multi-entry batches committed as one group append.
    pub group_commits: u64,
}

/// A raw storage engine behind [`SharedStore`](crate::SharedStore).
///
/// Implementations are **infallible and unsynchronized**: fault injection,
/// locking, stats, telemetry, and change detection all live in the wrapper.
/// A backend's only obligations are the versioning contract above and
/// deterministic iteration order (sorted by key / namespace) everywhere.
pub trait StoreBackend: std::fmt::Debug + Send {
    /// A short stable name (`"map"`, `"log"`) used by fixtures, the chaos
    /// sweep, and backend selection.
    fn name(&self) -> &'static str;

    /// The live value and version under `namespace/key`, if any.
    fn get(&self, namespace: &str, key: &str) -> Option<Versioned>;

    /// The key's version-counter state (live, tombstoned, or absent).
    fn key_version(&self, namespace: &str, key: &str) -> KeyVersion;

    /// If the *live* value under `namespace/key` encodes byte-identically
    /// to `value`, returns its version — the change-detection probe.
    /// Backends should answer without cloning the stored value.
    fn identical_live(&self, namespace: &str, key: &str, value: &Value) -> Option<u64>;

    /// Unconditionally writes `value`, bumping the key's version counter
    /// (tombstones included). Returns the new version.
    fn insert(&mut self, namespace: &str, key: &str, value: Value) -> u64;

    /// Writes a batch into one namespace as a single group commit. Entry
    /// semantics are exactly `insert` applied in order (duplicate keys bump
    /// twice). The wrapper has already applied change detection and torn-
    /// write truncation; the batch is to be persisted in full.
    fn insert_many(&mut self, namespace: &str, entries: &[(&str, &Value)]);

    /// Deletes a live key, leaving a version tombstone. Returns `false`
    /// (and changes nothing) if the key is not live.
    fn remove(&mut self, namespace: &str, key: &str) -> bool;

    /// Deletes every live key in the namespace, tombstoning each. Returns
    /// how many live keys were removed.
    fn remove_namespace(&mut self, namespace: &str) -> usize;

    /// All live `(key, versioned-value)` pairs in a namespace, key-sorted.
    fn read_namespace(&self, namespace: &str) -> Vec<(String, Versioned)>;

    /// Live keys in a namespace, sorted.
    fn list_keys(&self, namespace: &str) -> Vec<String>;

    /// Namespaces holding at least one live key, sorted.
    fn list_namespaces(&self) -> Vec<String>;

    /// Total encoded bytes of live values in a namespace.
    fn namespace_bytes(&self, namespace: &str) -> u64;

    /// Diagnostic maintenance counters (see [`BackendStats`]).
    fn backend_stats(&self) -> BackendStats;
}

/// Which backend a [`SharedStore`](crate::SharedStore) runs on. The
/// cluster driver, chaos harness, and benches select backends through
/// this; `Default` is the map backend the repo grew up on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// In-memory ordered map (the original backend).
    #[default]
    Map,
    /// Log-structured: append-only segments + in-memory index, with
    /// background compaction and group-commit batching.
    Log,
}

impl BackendKind {
    /// Every registered backend — the set the conformance suite, the
    /// equivalence property test, and the chaos sweep run against.
    pub fn all() -> [BackendKind; 2] {
        [BackendKind::Map, BackendKind::Log]
    }

    /// The backend's stable name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Map => "map",
            BackendKind::Log => "log",
        }
    }

    /// Parses a stable name (as accepted by `CHAOS_BACKEND=`).
    pub fn from_name(name: &str) -> Option<BackendKind> {
        match name {
            "map" => Some(BackendKind::Map),
            "log" => Some(BackendKind::Log),
            _ => None,
        }
    }

    /// Builds a fresh backend of this kind with default configuration.
    pub fn build(self) -> Box<dyn StoreBackend> {
        match self {
            BackendKind::Map => Box::new(MapBackend::new()),
            BackendKind::Log => Box::new(crate::log::LogBackend::new()),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One key's storage slot: a live value or a version tombstone.
#[derive(Debug, Clone)]
struct Slot {
    version: u64,
    value: Option<Value>,
}

/// The original in-memory backend: namespaces of ordered maps. Tombstones
/// are slots whose value is `None`.
#[derive(Debug, Default)]
pub struct MapBackend {
    namespaces: std::collections::BTreeMap<String, std::collections::BTreeMap<String, Slot>>,
}

impl MapBackend {
    /// Creates an empty map backend.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&self, namespace: &str, key: &str) -> Option<&Slot> {
        self.namespaces.get(namespace).and_then(|ns| ns.get(key))
    }
}

impl StoreBackend for MapBackend {
    fn name(&self) -> &'static str {
        "map"
    }

    fn get(&self, namespace: &str, key: &str) -> Option<Versioned> {
        self.slot(namespace, key).and_then(|s| {
            s.value.as_ref().map(|v| Versioned {
                version: s.version,
                value: v.clone(),
            })
        })
    }

    fn key_version(&self, namespace: &str, key: &str) -> KeyVersion {
        match self.slot(namespace, key) {
            None => KeyVersion::Absent,
            Some(Slot { version, value }) => match value {
                Some(_) => KeyVersion::Live(*version),
                None => KeyVersion::Tombstone(*version),
            },
        }
    }

    fn identical_live(&self, namespace: &str, key: &str, value: &Value) -> Option<u64> {
        self.slot(namespace, key).and_then(|s| {
            s.value
                .as_ref()
                .filter(|stored| crate::codec::codec_eq(stored, value))
                .map(|_| s.version)
        })
    }

    fn insert(&mut self, namespace: &str, key: &str, value: Value) -> u64 {
        let ns = self.namespaces.entry(namespace.to_owned()).or_default();
        let slot = ns.entry(key.to_owned()).or_insert(Slot {
            version: 0,
            value: None,
        });
        slot.version += 1;
        slot.value = Some(value);
        slot.version
    }

    fn insert_many(&mut self, namespace: &str, entries: &[(&str, &Value)]) {
        for (key, value) in entries {
            self.insert(namespace, key, (*value).clone());
        }
    }

    fn remove(&mut self, namespace: &str, key: &str) -> bool {
        match self
            .namespaces
            .get_mut(namespace)
            .and_then(|ns| ns.get_mut(key))
        {
            Some(slot) if slot.value.is_some() => {
                slot.value = None;
                true
            }
            _ => false,
        }
    }

    fn remove_namespace(&mut self, namespace: &str) -> usize {
        let Some(ns) = self.namespaces.get_mut(namespace) else {
            return 0;
        };
        let mut removed = 0;
        for slot in ns.values_mut() {
            if slot.value.take().is_some() {
                removed += 1;
            }
        }
        removed
    }

    fn read_namespace(&self, namespace: &str) -> Vec<(String, Versioned)> {
        self.namespaces
            .get(namespace)
            .map(|ns| {
                ns.iter()
                    .filter_map(|(k, s)| {
                        s.value.as_ref().map(|v| {
                            (
                                k.clone(),
                                Versioned {
                                    version: s.version,
                                    value: v.clone(),
                                },
                            )
                        })
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    fn list_keys(&self, namespace: &str) -> Vec<String> {
        self.namespaces
            .get(namespace)
            .map(|ns| {
                ns.iter()
                    .filter(|(_, s)| s.value.is_some())
                    .map(|(k, _)| k.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    fn list_namespaces(&self) -> Vec<String> {
        self.namespaces
            .iter()
            .filter(|(_, ns)| ns.values().any(|s| s.value.is_some()))
            .map(|(k, _)| k.clone())
            .collect()
    }

    fn namespace_bytes(&self, namespace: &str) -> u64 {
        self.namespaces
            .get(namespace)
            .map(|ns| {
                ns.values()
                    .filter_map(|s| s.value.as_ref())
                    .map(|v| v.encoded_len() as u64)
                    .sum()
            })
            .unwrap_or(0)
    }

    fn backend_stats(&self) -> BackendStats {
        BackendStats {
            live_bytes: self
                .namespaces
                .values()
                .flat_map(|ns| ns.values())
                .filter_map(|s| s.value.as_ref())
                .map(|v| v.encoded_len() as u64)
                .sum(),
            ..BackendStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_survive_deletion_as_tombstones() {
        let mut b = MapBackend::new();
        assert_eq!(b.insert("ns", "k", Value::Int(1)), 1);
        assert!(b.remove("ns", "k"));
        assert_eq!(b.key_version("ns", "k"), KeyVersion::Tombstone(1));
        // Re-insert continues the counter: the stale-reader fix.
        assert_eq!(b.insert("ns", "k", Value::Int(1)), 2);
        assert_eq!(b.key_version("ns", "k"), KeyVersion::Live(2));
    }

    #[test]
    fn tombstoned_keys_are_invisible_to_live_reads() {
        let mut b = MapBackend::new();
        b.insert("ns", "a", Value::Int(1));
        b.insert("ns", "b", Value::Int(2));
        b.remove("ns", "a");
        assert_eq!(b.get("ns", "a"), None);
        assert_eq!(b.list_keys("ns"), vec!["b"]);
        assert_eq!(b.read_namespace("ns").len(), 1);
        b.remove("ns", "b");
        assert!(b.list_namespaces().is_empty());
        assert_eq!(b.namespace_bytes("ns"), 0);
    }

    #[test]
    fn remove_namespace_tombstones_every_live_key() {
        let mut b = MapBackend::new();
        b.insert("ns", "a", Value::Int(1));
        b.insert("ns", "b", Value::Int(2));
        b.remove("ns", "a"); // already a tombstone: not counted again
        assert_eq!(b.remove_namespace("ns"), 1);
        assert_eq!(b.key_version("ns", "a"), KeyVersion::Tombstone(1));
        assert_eq!(b.key_version("ns", "b"), KeyVersion::Tombstone(1));
        assert_eq!(b.remove_namespace("ns"), 0);
        // Counters still climb after the namespace wipe.
        assert_eq!(b.insert("ns", "b", Value::Int(9)), 2);
    }

    #[test]
    fn kind_round_trips_names() {
        for kind in BackendKind::all() {
            assert_eq!(BackendKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(BackendKind::from_name("tape"), None);
    }
}
