//! Storage fault injection: the SAN stops being a perfect component.
//!
//! The paper assumes "an underlying SAN or distributed filesystem" that is
//! always readable cluster-wide (§3.2). Real storage tiers brown out, drop
//! requests and tear multi-block writes when a writer dies mid-batch. This
//! module makes those behaviours injectable — **deterministically**, from a
//! 64-bit seed on the simulated clock — so every persistence path in the
//! stack can be exercised against the one component the whole design
//! depends on.
//!
//! Three fault families, composable in one [`FaultPlan`]:
//!
//! * **Transient I/O errors** — every data-plane operation independently
//!   fails with probability `io_error_rate`
//!   ([`StoreError::Io`](crate::StoreError::Io)); retryable.
//! * **Brown-outs** — timed unavailability windows during which every
//!   data-plane operation fails
//!   ([`StoreError::Unavailable`](crate::StoreError::Unavailable)); the
//!   storage-tier analogue of a network partition.
//! * **Torn writes** — a multi-key batch ([`SharedStore::put_many`]
//!   [`crate::SharedStore::put_many`]) persists only a prefix and reports
//!   [`StoreError::TornWrite`](crate::StoreError::TornWrite), modeling a
//!   writer crashing mid-batch. Recovery is an idempotent full-batch
//!   rewrite.
//!
//! The plan composes with — and is orthogonal to — the [`SanProfile`]
//! (crate::SanProfile) latency model: profiles say how *slow* the SAN is,
//! plans say how *broken* it is.
//!
//! Fault decisions consume a dedicated RNG stream in operation order; since
//! the simulation is single-threaded and deterministic, the same seed
//! always yields the same faults at the same operations.

use crate::StoreError;
use dosgi_net::{SimDuration, SimTime};
use dosgi_testkit::{mix_seed, TestRng};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A seeded, declarative description of how the SAN misbehaves.
///
/// The inert default ([`FaultPlan::none`]) injects nothing; a store without
/// a plan attached behaves exactly like the pre-fault-layer store.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault RNG stream.
    pub seed: u64,
    /// Probability in `[0, 1]` that any data-plane operation fails with a
    /// transient [`StoreError::Io`](crate::StoreError::Io).
    pub io_error_rate: f64,
    /// Probability in `[0, 1]` that a [`put_many`](crate::SharedStore::put_many)
    /// batch tears: a strict prefix is persisted, the rest is lost.
    pub torn_write_rate: f64,
    /// Half-open `[from, until)` windows during which every data-plane
    /// operation fails with [`StoreError::Unavailable`](crate::StoreError::Unavailable).
    pub brownouts: Vec<(SimTime, SimTime)>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The inert plan: no faults, ever.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            io_error_rate: 0.0,
            torn_write_rate: 0.0,
            brownouts: Vec::new(),
        }
    }

    /// A plan that fails each operation independently with probability
    /// `io_error_rate`.
    pub fn flaky(io_error_rate: f64, seed: u64) -> Self {
        FaultPlan {
            seed,
            io_error_rate,
            ..FaultPlan::none()
        }
    }

    /// Adds an unavailability window `[from, until)`.
    pub fn with_brownout(mut self, from: SimTime, until: SimTime) -> Self {
        self.brownouts.push((from, until));
        self
    }

    /// Sets the torn-write probability for multi-key batches.
    pub fn with_torn_writes(mut self, rate: f64) -> Self {
        self.torn_write_rate = rate;
        self
    }

    /// True when `at` falls inside a brown-out window.
    pub fn browned_out(&self, at: SimTime) -> bool {
        self.brownouts
            .iter()
            .any(|&(from, until)| at >= from && at < until)
    }

    /// True when the plan can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.io_error_rate <= 0.0 && self.torn_write_rate <= 0.0 && self.brownouts.is_empty()
    }
}

#[derive(Debug)]
struct InjectorState {
    plan: Option<FaultPlan>,
    rng: TestRng,
    now: SimTime,
}

impl Default for InjectorState {
    fn default() -> Self {
        InjectorState {
            plan: None,
            rng: TestRng::new(0),
            now: SimTime::ZERO,
        }
    }
}

/// The shared fault decision point.
///
/// A [`SharedStore`](crate::SharedStore) owns one; a
/// [`Journal`](crate::Journal) can adopt the same injector so store and
/// journal faults come from one plan and one RNG stream. Clones share
/// state (`Arc` semantics), mirroring the store itself.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    state: Arc<Mutex<InjectorState>>,
}

impl FaultInjector {
    /// Creates an inert injector (no plan attached).
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, InjectorState> {
        // Plain owned data; adopt a poisoned lock like the store does.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Installs `plan`, (re)seeding the fault RNG stream from it.
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut s = self.lock();
        s.rng = TestRng::new(plan.seed);
        s.plan = Some(plan);
    }

    /// Removes any plan: the injector becomes inert again.
    pub fn clear(&self) {
        self.lock().plan = None;
    }

    /// The currently installed plan, if any.
    pub fn plan(&self) -> Option<FaultPlan> {
        self.lock().plan.clone()
    }

    /// Advances the injector's clock; brown-out windows are evaluated
    /// against this instant. The simulation driver calls this every tick.
    pub fn set_now(&self, now: SimTime) {
        self.lock().now = now;
    }

    /// The injector's current clock reading.
    pub fn now(&self) -> SimTime {
        self.lock().now
    }

    /// False while the current instant is inside a brown-out window.
    pub fn is_available(&self) -> bool {
        let s = self.lock();
        match &s.plan {
            Some(plan) => !plan.browned_out(s.now),
            None => true,
        }
    }

    /// One data-plane fault decision: `Err(Unavailable)` during a
    /// brown-out, `Err(Io)` with probability `io_error_rate`, `Ok` otherwise.
    pub(crate) fn roll(&self, op: &'static str) -> Result<(), StoreError> {
        let mut guard = self.lock();
        let s = &mut *guard;
        let Some(plan) = &s.plan else { return Ok(()) };
        if plan.browned_out(s.now) {
            return Err(StoreError::Unavailable);
        }
        if plan.io_error_rate > 0.0 && s.rng.chance(plan.io_error_rate) {
            return Err(StoreError::Io { op });
        }
        Ok(())
    }

    /// Torn-write decision for a batch of `len` entries: `Some(written)`
    /// with `written < len` when the batch tears.
    pub(crate) fn torn_len(&self, len: usize) -> Option<usize> {
        if len == 0 {
            return None;
        }
        let mut guard = self.lock();
        let s = &mut *guard;
        let plan = s.plan.as_ref()?;
        if plan.torn_write_rate > 0.0 && s.rng.chance(plan.torn_write_rate) {
            Some(s.rng.u64_below(len as u64) as usize)
        } else {
            None
        }
    }
}

/// Bounded exponential backoff with deterministic jitter, on the simulated
/// clock.
///
/// `delay(attempt) = min(cap, base · 2^attempt) · (1 + jitter)` with
/// `jitter ∈ [0, ½)` derived by mixing `jitter_seed` with the attempt
/// number — no wall clock, no global RNG, so retry timing replays exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts before the operation is declared unrecoverable (≥ 1).
    pub max_attempts: u32,
    /// First-retry delay.
    pub base: SimDuration,
    /// Upper bound on the un-jittered delay.
    pub cap: SimDuration,
    /// Seed for the deterministic jitter.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// The default policy for persistence paths: 5 attempts, 20 ms base,
    /// capped at 2 s.
    pub fn persistence() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base: SimDuration::from_millis(20),
            cap: SimDuration::from_secs(2),
            jitter_seed: 0x5AD_FA01,
        }
    }

    /// The backoff before retry number `attempt` (0-based: the delay after
    /// the first failure is `backoff(0)`).
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let exp = attempt.min(20); // 2^20 · base already dwarfs any cap
        let raw = SimDuration::from_micros(
            self.base
                .as_micros()
                .saturating_mul(1u64 << exp)
                .min(self.cap.as_micros()),
        );
        // Jitter in [0, raw/2), in 1/1024 steps.
        let frac = mix_seed(self.jitter_seed, attempt as u64) % 1024;
        raw + (raw / 2 * frac) / 1024
    }

    /// True when `attempt` failures exhaust the policy.
    pub fn exhausted(&self, attempts: u32) -> bool {
        attempts >= self.max_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_injector_never_fails() {
        let f = FaultInjector::new();
        for _ in 0..1000 {
            assert_eq!(f.roll("op"), Ok(()));
        }
        assert_eq!(f.torn_len(5), None);
        assert!(f.is_available());
    }

    #[test]
    fn io_errors_follow_the_seed_deterministically() {
        let run = || {
            let f = FaultInjector::new();
            f.set_plan(FaultPlan::flaky(0.3, 42));
            (0..200).map(|_| f.roll("op").is_err()).collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same fault sequence");
        let hits = a.iter().filter(|e| **e).count();
        assert!((30..90).contains(&hits), "~30% of 200, got {hits}");
    }

    #[test]
    fn brownout_windows_gate_on_the_injector_clock() {
        let f = FaultInjector::new();
        f.set_plan(FaultPlan::none().with_brownout(SimTime::from_secs(1), SimTime::from_secs(2)));
        assert!(f.is_available());
        assert_eq!(f.roll("op"), Ok(()));
        f.set_now(SimTime::from_millis(1500));
        assert!(!f.is_available());
        assert_eq!(f.roll("op"), Err(StoreError::Unavailable));
        f.set_now(SimTime::from_secs(2)); // half-open: end instant is healed
        assert!(f.is_available());
        assert_eq!(f.roll("op"), Ok(()));
    }

    #[test]
    fn torn_len_is_a_strict_prefix() {
        let f = FaultInjector::new();
        f.set_plan(FaultPlan::none().with_torn_writes(1.0));
        for _ in 0..100 {
            let torn = f.torn_len(4).expect("rate 1.0 always tears");
            assert!(torn < 4);
        }
        assert_eq!(f.torn_len(0), None, "empty batches cannot tear");
    }

    #[test]
    fn clearing_the_plan_heals_everything() {
        let f = FaultInjector::new();
        f.set_plan(FaultPlan::flaky(1.0, 1));
        assert!(f.roll("op").is_err());
        f.clear();
        assert_eq!(f.roll("op"), Ok(()));
        assert_eq!(f.plan(), None);
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let p = RetryPolicy::persistence();
        let d0 = p.backoff(0);
        let d1 = p.backoff(1);
        let d3 = p.backoff(3);
        assert!(d0 >= p.base && d0 < p.base * 2, "{d0:?}");
        assert!(d1 > d0);
        assert!(d3 > d1);
        // Far attempts hit the cap (plus at most 50% jitter).
        let d20 = p.backoff(20);
        assert!(d20 >= p.cap && d20 <= p.cap + p.cap / 2, "{d20:?}");
        // Deterministic: same policy, same attempt, same delay.
        assert_eq!(p.backoff(2), p.backoff(2));
        assert!(!p.exhausted(4));
        assert!(p.exhausted(5));
    }

    #[test]
    fn plan_predicates() {
        assert!(FaultPlan::none().is_inert());
        assert!(!FaultPlan::flaky(0.1, 0).is_inert());
        let p = FaultPlan::none().with_brownout(SimTime::ZERO, SimTime::from_secs(1));
        assert!(!p.is_inert());
        assert!(p.browned_out(SimTime::from_millis(500)));
        assert!(!p.browned_out(SimTime::from_secs(1)));
    }
}
