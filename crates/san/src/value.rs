//! Self-describing values stored in the SAN.

use std::collections::BTreeMap;
use std::fmt;

/// A dynamically typed value tree, the unit of storage in
/// [`SharedStore`](crate::SharedStore).
///
/// The OSGi layer serializes framework state, bundle storage areas and
/// migration metadata into `Value`s; the [binary codec](Value::encode) gives
/// the harness realistic byte-size accounting for state-transfer costs.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// Absence of a value.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// An ordered list.
    List(Vec<Value>),
    /// A string-keyed map with deterministic iteration order.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Shorthand for an empty map.
    pub fn map() -> Value {
        Value::Map(BTreeMap::new())
    }

    /// Inserts `key → value` into a map value, returning `self` for
    /// chaining.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a [`Value::Map`].
    pub fn with(mut self, key: &str, value: impl Into<Value>) -> Value {
        match &mut self {
            Value::Map(m) => {
                m.insert(key.to_owned(), value.into());
            }
            other => panic!("Value::with on non-map {other:?}"),
        }
        self
    }

    /// Gets a map entry.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float; integers are widened.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a byte slice, if it is bytes.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a list slice, if it is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// The value as a map, if it is one.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Encodes the value with the compact binary codec.
    pub fn encode(&self) -> Vec<u8> {
        crate::codec::encode(self)
    }

    /// Encodes the value by appending to `out` (exactly pre-reserved) —
    /// see [`codec::encode_into`](crate::codec::encode_into).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        crate::codec::encode_into(self, out)
    }

    /// Decodes a value previously produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformation encountered.
    pub fn decode(bytes: &[u8]) -> Result<Value, String> {
        crate::codec::decode(bytes)
    }

    /// The encoded size in bytes, used for state-transfer accounting.
    /// Streaming — computes the size without materializing the encoding,
    /// so stats paths can call it on every store operation.
    pub fn encoded_len(&self) -> usize {
        crate::codec::encoded_len(self)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}
impl FromIterator<Value> for Value {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Value::List(iter.into_iter().collect())
    }
}
impl FromIterator<(String, Value)> for Value {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        Value::Map(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_builder_and_accessors() {
        let v = Value::map()
            .with("name", "logsvc")
            .with("active", true)
            .with("level", 4i64)
            .with("load", 0.5f64);
        assert_eq!(v.get("name").and_then(Value::as_str), Some("logsvc"));
        assert_eq!(v.get("active").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("level").and_then(Value::as_int), Some(4));
        assert_eq!(v.get("load").and_then(Value::as_float), Some(0.5));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn int_widens_to_float() {
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "Value::with on non-map")]
    fn with_on_non_map_panics() {
        let _ = Value::Int(1).with("x", 2i64);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(vec![1u8, 2]), Value::Bytes(vec![1, 2]));
        let l: Value = vec![Value::Int(1)].into();
        assert_eq!(l.as_list().unwrap().len(), 1);
    }

    #[test]
    fn collect_into_map_and_list() {
        let m: Value = [("a".to_owned(), Value::Int(1))].into_iter().collect();
        assert_eq!(m.get("a"), Some(&Value::Int(1)));
        let l: Value = [Value::Int(1), Value::Int(2)].into_iter().collect();
        assert_eq!(l.as_list().unwrap().len(), 2);
    }

    #[test]
    fn display_is_compact() {
        let v = Value::map()
            .with("a", 1i64)
            .with("b", Value::List(vec![Value::Bool(true)]));
        assert_eq!(v.to_string(), "{a: 1, b: [true]}");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Bytes(vec![0; 3]).to_string(), "<3 bytes>");
    }

    #[test]
    fn default_is_null() {
        assert!(Value::default().is_null());
    }
}
