//! SAN latency profile.

use dosgi_net::SimDuration;

/// Latency costs the simulation charges for SAN operations.
///
/// The store itself ([`SharedStore`](crate::SharedStore)) is an in-process
/// data structure; time costs are applied by the *callers* (the node
/// simulation in `dosgi-core`) using this profile, so unit tests of the
/// store stay instantaneous while cluster experiments account for real I/O
/// proportions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SanProfile {
    /// Cost of one read operation.
    pub read: SimDuration,
    /// Fixed cost of one write operation (seek + commit).
    pub write: SimDuration,
    /// Additional cost per KiB transferred, applied to both directions.
    pub per_kib: SimDuration,
}

impl SanProfile {
    /// A fibre-channel-class SAN: 250µs reads, 400µs writes, 10µs/KiB.
    pub fn fast() -> Self {
        SanProfile {
            read: SimDuration::from_micros(250),
            write: SimDuration::from_micros(400),
            per_kib: SimDuration::from_micros(10),
        }
    }

    /// An NFS-class distributed filesystem: 2ms reads, 5ms writes, 50µs/KiB.
    pub fn nfs() -> Self {
        SanProfile {
            read: SimDuration::from_millis(2),
            write: SimDuration::from_millis(5),
            per_kib: SimDuration::from_micros(50),
        }
    }

    /// Zero-cost storage for unit tests.
    pub fn instant() -> Self {
        SanProfile {
            read: SimDuration::ZERO,
            write: SimDuration::ZERO,
            per_kib: SimDuration::ZERO,
        }
    }

    /// The time charged for reading `bytes` bytes.
    pub fn read_cost(&self, bytes: u64) -> SimDuration {
        self.read + self.transfer_cost(bytes)
    }

    /// The time charged for writing `bytes` bytes.
    pub fn write_cost(&self, bytes: u64) -> SimDuration {
        self.write + self.transfer_cost(bytes)
    }

    fn transfer_cost(&self, bytes: u64) -> SimDuration {
        // Round up to whole KiB so small writes still pay a transfer cost.
        let kib = bytes.div_ceil(1024);
        self.per_kib * kib
    }
}

impl Default for SanProfile {
    fn default() -> Self {
        SanProfile::fast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_with_size() {
        let p = SanProfile::fast();
        assert_eq!(p.read_cost(0), SimDuration::from_micros(250));
        assert_eq!(p.read_cost(1), SimDuration::from_micros(260));
        assert_eq!(p.read_cost(1024), SimDuration::from_micros(260));
        assert_eq!(p.read_cost(1025), SimDuration::from_micros(270));
        assert!(p.write_cost(4096) > p.read_cost(4096));
    }

    #[test]
    fn instant_is_free() {
        let p = SanProfile::instant();
        assert!(p.read_cost(1 << 20).is_zero());
        assert!(p.write_cost(1 << 20).is_zero());
    }

    #[test]
    fn nfs_is_slower_than_fast() {
        assert!(SanProfile::nfs().write_cost(1024) > SanProfile::fast().write_cost(1024));
        assert_eq!(SanProfile::default(), SanProfile::fast());
    }
}
