//! An append-only operation journal.
//!
//! The journal is the substrate for the **E9** replication extension (the
//! paper's "future work": replicating running context on other nodes for
//! near-zero-downtime failover). A hot standby tails the journal of its
//! primary's namespaces and replays entries into its own warm state.

use crate::fault::FaultInjector;
use crate::{SharedStore, StoreError, Value};
use dosgi_net::SimTime;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// The kind of mutation recorded in a [`JournalEntry`].
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// A key was written.
    Put {
        /// Namespace written to.
        namespace: String,
        /// Key written.
        key: String,
        /// New value.
        value: Value,
    },
    /// A key was deleted.
    Delete {
        /// Namespace deleted from.
        namespace: String,
        /// Deleted key.
        key: String,
    },
    /// A checkpoint marker: everything up to `seq` is captured in the named
    /// snapshot key.
    Checkpoint {
        /// The snapshot's identifying label.
        label: String,
    },
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Dense, monotonically increasing sequence number (starting at 1).
    pub seq: u64,
    /// Simulated time of the append.
    pub at: SimTime,
    /// The recorded mutation.
    pub op: JournalOp,
}

#[derive(Debug, Default)]
struct Inner {
    entries: Vec<JournalEntry>,
}

/// A shared append-only journal. Clones share the same log.
///
/// The journal lives on the same storage tier as the [`SharedStore`]
/// (crate::SharedStore), so appends are subject to the same fault plan once
/// [`attach_faults`](Journal::attach_faults) has wired it to a store's
/// injector. Reads (`read_after`, `head`) stay infallible: the replication
/// protocol treats them as local tailing of an already-fetched log.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    inner: Arc<Mutex<Inner>>,
    faults: FaultInjector,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the shared log, explicitly adopting a poisoned lock: the
    /// journal holds plain owned data, and every critical section leaves it
    /// structurally valid even if a caller's panic poisons the mutex.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Shares a store's fault injector, so journal appends honor the same
    /// [`FaultPlan`](crate::FaultPlan) (and draw from the same seeded
    /// stream) as the store they sit next to.
    pub fn attach_faults(&mut self, faults: &FaultInjector) {
        self.faults = faults.clone();
    }

    /// Appends an operation, returning its sequence number.
    ///
    /// # Errors
    ///
    /// Fault-injected [`StoreError::Unavailable`] / [`StoreError::Io`] when
    /// a fault plan is attached; never fails otherwise.
    pub fn append(&self, at: SimTime, op: JournalOp) -> Result<u64, StoreError> {
        self.faults.roll("journal.append")?;
        let mut inner = self.lock();
        let seq = inner.entries.len() as u64 + 1;
        inner.entries.push(JournalEntry { seq, at, op });
        Ok(seq)
    }

    /// Entries with `seq > after`, in order. `after = 0` reads everything.
    pub fn read_after(&self, after: u64) -> Vec<JournalEntry> {
        let inner = self.lock();
        inner
            .entries
            .iter()
            .filter(|e| e.seq > after)
            .cloned()
            .collect()
    }

    /// The highest sequence number appended so far (0 when empty).
    pub fn head(&self) -> u64 {
        self.lock().entries.len() as u64
    }

    /// Drops entries with `seq <= upto` (after a checkpoint), returning how
    /// many were pruned. Sequence numbers of retained entries are preserved.
    pub fn prune(&self, upto: u64) -> usize {
        let mut inner = self.lock();
        let before = inner.entries.len();
        inner.entries.retain(|e| e.seq > upto);
        before - inner.entries.len()
    }

    /// Serializes the whole journal as length-framed binary records: each
    /// entry is a 4-byte little-endian length followed by the [`Value`]
    /// encoding of the record map. The framing makes a torn tail (a writer
    /// crashing mid-record) detectable: [`decode_tolerant`](Self::decode_tolerant)
    /// stops cleanly at the first incomplete frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for entry in self.read_after(0) {
            let op = match &entry.op {
                JournalOp::Put {
                    namespace,
                    key,
                    value,
                } => Value::map()
                    .with("type", "put")
                    .with("ns", namespace.as_str())
                    .with("key", key.as_str())
                    .with("value", value.clone()),
                JournalOp::Delete { namespace, key } => Value::map()
                    .with("type", "delete")
                    .with("ns", namespace.as_str())
                    .with("key", key.as_str()),
                JournalOp::Checkpoint { label } => Value::map()
                    .with("type", "checkpoint")
                    .with("label", label.as_str()),
            };
            let record = Value::map()
                .with("seq", entry.seq as i64)
                .with("at_us", entry.at.as_micros() as i64)
                .with("op", op);
            // Length first (streamed, no temporary), then the record
            // encoded straight into the output buffer.
            let len = crate::codec::encoded_len(&record) as u32;
            out.extend_from_slice(&len.to_le_bytes());
            crate::codec::encode_into(&record, &mut out);
        }
        out
    }

    /// Decodes an encoded journal, tolerating a truncated tail: decoding
    /// stops cleanly at the first incomplete or malformed frame (the torn
    /// final record of a crashed writer) and returns every complete entry
    /// before it. The inverse of [`encode`](Self::encode) on a clean input.
    pub fn decode_tolerant(bytes: &[u8]) -> Journal {
        let journal = Journal::new();
        let mut pos = 0usize;
        while pos + 4 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let Some(frame) = bytes.get(pos + 4..pos + 4 + len) else {
                break; // torn tail: length landed, payload did not
            };
            let Ok(record) = crate::codec::decode(frame) else {
                break; // corrupt tail frame
            };
            let Some(entry) = decode_entry(&record) else {
                break;
            };
            // Re-append preserves seq density; a journal encodes from seq 1.
            let mut inner = journal.lock();
            inner.entries.push(entry);
            drop(inner);
            pos += 4 + len;
        }
        journal
    }

    /// Replays every `Put`/`Delete` entry into `store`, in order.
    /// `Checkpoint` markers are skipped; a `Delete` of an already-absent
    /// key is ignored (replay is idempotent over partial prior state).
    /// Returns how many entries mutated the store.
    ///
    /// # Errors
    ///
    /// Propagates transient store faults ([`StoreError::Unavailable`],
    /// [`StoreError::Io`]) — the caller retries replay from scratch, which
    /// is safe because replay is deterministic and convergent.
    pub fn replay_into(&self, store: &SharedStore) -> Result<usize, StoreError> {
        let mut applied = 0;
        for entry in self.read_after(0) {
            match entry.op {
                JournalOp::Put {
                    namespace,
                    key,
                    value,
                } => {
                    store.put(&namespace, &key, value)?;
                    applied += 1;
                }
                JournalOp::Delete { namespace, key } => match store.delete(&namespace, &key) {
                    Ok(()) => applied += 1,
                    Err(StoreError::NotFound { .. }) => {}
                    Err(e) => return Err(e),
                },
                JournalOp::Checkpoint { .. } => {}
            }
        }
        Ok(applied)
    }
}

/// Decodes one framed record map back into a [`JournalEntry`]; `None` on
/// any structural mismatch (treated as a torn/corrupt tail by the caller).
fn decode_entry(record: &Value) -> Option<JournalEntry> {
    let Value::Map(m) = record else { return None };
    let seq = match m.get("seq")? {
        Value::Int(i) if *i >= 1 => *i as u64,
        _ => return None,
    };
    let at = match m.get("at_us")? {
        Value::Int(i) if *i >= 0 => SimTime::from_micros(*i as u64),
        _ => return None,
    };
    let Value::Map(op) = m.get("op")? else {
        return None;
    };
    let Value::Str(kind) = op.get("type")? else {
        return None;
    };
    let str_field = |name: &str| match op.get(name) {
        Some(Value::Str(s)) => Some(s.clone()),
        _ => None,
    };
    let decoded = match kind.as_str() {
        "put" => JournalOp::Put {
            namespace: str_field("ns")?,
            key: str_field("key")?,
            value: op.get("value")?.clone(),
        },
        "delete" => JournalOp::Delete {
            namespace: str_field("ns")?,
            key: str_field("key")?,
        },
        "checkpoint" => JournalOp::Checkpoint {
            label: str_field("label")?,
        },
        _ => return None,
    };
    Some(JournalEntry {
        seq,
        at,
        op: decoded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(ns: &str, key: &str, v: i64) -> JournalOp {
        JournalOp::Put {
            namespace: ns.into(),
            key: key.into(),
            value: Value::Int(v),
        }
    }

    #[test]
    fn sequence_numbers_are_dense_and_monotonic() {
        let j = Journal::new();
        assert_eq!(j.append(SimTime::ZERO, put("a", "k", 1)), Ok(1));
        assert_eq!(j.append(SimTime::from_millis(1), put("a", "k", 2)), Ok(2));
        assert_eq!(j.head(), 2);
    }

    #[test]
    fn read_after_filters() {
        let j = Journal::new();
        for i in 0..5 {
            j.append(SimTime::ZERO, put("a", "k", i)).unwrap();
        }
        assert_eq!(j.read_after(0).len(), 5);
        let tail = j.read_after(3);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 4);
    }

    #[test]
    fn clones_share_the_log() {
        let j = Journal::new();
        let j2 = j.clone();
        j.append(SimTime::ZERO, put("a", "k", 1)).unwrap();
        assert_eq!(j2.head(), 1);
    }

    #[test]
    fn prune_preserves_remaining_seqs() {
        let j = Journal::new();
        for i in 0..5 {
            j.append(SimTime::ZERO, put("a", "k", i)).unwrap();
        }
        assert_eq!(j.prune(3), 3);
        let rest = j.read_after(0);
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].seq, 4);
        assert_eq!(rest[1].seq, 5);
        // head still reports the number of *stored* entries, which callers
        // must not confuse with the next seq after pruning; appends continue
        // from the stored length, so prune is only safe after a checkpoint
        // boundary in the replication protocol tests.
    }

    #[test]
    fn checkpoint_markers_are_recorded() {
        let j = Journal::new();
        j.append(
            SimTime::ZERO,
            JournalOp::Checkpoint {
                label: "snap-1".into(),
            },
        )
        .unwrap();
        match &j.read_after(0)[0].op {
            JournalOp::Checkpoint { label } => assert_eq!(label, "snap-1"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn encode_decode_round_trips_every_op_kind() {
        let j = Journal::new();
        j.append(SimTime::from_millis(1), put("fw/n0", "bundle", 1))
            .unwrap();
        j.append(
            SimTime::from_millis(2),
            JournalOp::Delete {
                namespace: "fw/n0".into(),
                key: "bundle".into(),
            },
        )
        .unwrap();
        j.append(
            SimTime::from_millis(3),
            JournalOp::Checkpoint {
                label: "snap".into(),
            },
        )
        .unwrap();
        let decoded = Journal::decode_tolerant(&j.encode());
        assert_eq!(decoded.read_after(0), j.read_after(0));
    }

    #[test]
    fn decode_tolerant_stops_at_a_torn_tail() {
        let j = Journal::new();
        for i in 0..5 {
            j.append(SimTime::ZERO, put("a", "k", i)).unwrap();
        }
        let bytes = j.encode();
        // Any strict prefix decodes to a whole-record prefix of the log.
        for cut in 0..bytes.len() {
            let decoded = Journal::decode_tolerant(&bytes[..cut]);
            let n = decoded.head();
            assert!(n <= 5);
            assert_eq!(decoded.read_after(0), j.read_after(0)[..n as usize]);
        }
        assert_eq!(Journal::decode_tolerant(&bytes).head(), 5);
    }

    #[test]
    fn replay_applies_puts_and_deletes_in_order() {
        let j = Journal::new();
        j.append(SimTime::ZERO, put("a", "k", 1)).unwrap();
        j.append(SimTime::ZERO, put("a", "k", 2)).unwrap();
        j.append(
            SimTime::ZERO,
            JournalOp::Delete {
                namespace: "a".into(),
                key: "nope".into(), // absent: ignored
            },
        )
        .unwrap();
        j.append(
            SimTime::ZERO,
            JournalOp::Checkpoint {
                label: "c".into(), // skipped
            },
        )
        .unwrap();
        let store = SharedStore::new();
        assert_eq!(j.replay_into(&store), Ok(2));
        assert_eq!(store.get("a", "k"), Ok(Some(Value::Int(2))));
    }

    #[test]
    fn attached_faults_gate_appends() {
        use crate::{FaultPlan, SharedStore};

        let store = SharedStore::new();
        let mut j = Journal::new();
        j.attach_faults(store.faults());
        assert!(j.append(SimTime::ZERO, put("a", "k", 1)).is_ok());
        store.set_fault_plan(FaultPlan::none().with_brownout(SimTime::ZERO, SimTime::from_secs(1)));
        assert_eq!(
            j.append(SimTime::ZERO, put("a", "k", 2)),
            Err(StoreError::Unavailable)
        );
        store.clear_faults();
        assert_eq!(j.append(SimTime::ZERO, put("a", "k", 2)), Ok(2));
    }
}
