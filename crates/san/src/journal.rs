//! An append-only operation journal.
//!
//! The journal is the substrate for the **E9** replication extension (the
//! paper's "future work": replicating running context on other nodes for
//! near-zero-downtime failover). A hot standby tails the journal of its
//! primary's namespaces and replays entries into its own warm state.

use crate::fault::FaultInjector;
use crate::{StoreError, Value};
use dosgi_net::SimTime;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// The kind of mutation recorded in a [`JournalEntry`].
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// A key was written.
    Put {
        /// Namespace written to.
        namespace: String,
        /// Key written.
        key: String,
        /// New value.
        value: Value,
    },
    /// A key was deleted.
    Delete {
        /// Namespace deleted from.
        namespace: String,
        /// Deleted key.
        key: String,
    },
    /// A checkpoint marker: everything up to `seq` is captured in the named
    /// snapshot key.
    Checkpoint {
        /// The snapshot's identifying label.
        label: String,
    },
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Dense, monotonically increasing sequence number (starting at 1).
    pub seq: u64,
    /// Simulated time of the append.
    pub at: SimTime,
    /// The recorded mutation.
    pub op: JournalOp,
}

#[derive(Debug, Default)]
struct Inner {
    entries: Vec<JournalEntry>,
}

/// A shared append-only journal. Clones share the same log.
///
/// The journal lives on the same storage tier as the [`SharedStore`]
/// (crate::SharedStore), so appends are subject to the same fault plan once
/// [`attach_faults`](Journal::attach_faults) has wired it to a store's
/// injector. Reads (`read_after`, `head`) stay infallible: the replication
/// protocol treats them as local tailing of an already-fetched log.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    inner: Arc<Mutex<Inner>>,
    faults: FaultInjector,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the shared log, explicitly adopting a poisoned lock: the
    /// journal holds plain owned data, and every critical section leaves it
    /// structurally valid even if a caller's panic poisons the mutex.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Shares a store's fault injector, so journal appends honor the same
    /// [`FaultPlan`](crate::FaultPlan) (and draw from the same seeded
    /// stream) as the store they sit next to.
    pub fn attach_faults(&mut self, faults: &FaultInjector) {
        self.faults = faults.clone();
    }

    /// Appends an operation, returning its sequence number.
    ///
    /// # Errors
    ///
    /// Fault-injected [`StoreError::Unavailable`] / [`StoreError::Io`] when
    /// a fault plan is attached; never fails otherwise.
    pub fn append(&self, at: SimTime, op: JournalOp) -> Result<u64, StoreError> {
        self.faults.roll("journal.append")?;
        let mut inner = self.lock();
        let seq = inner.entries.len() as u64 + 1;
        inner.entries.push(JournalEntry { seq, at, op });
        Ok(seq)
    }

    /// Entries with `seq > after`, in order. `after = 0` reads everything.
    pub fn read_after(&self, after: u64) -> Vec<JournalEntry> {
        let inner = self.lock();
        inner
            .entries
            .iter()
            .filter(|e| e.seq > after)
            .cloned()
            .collect()
    }

    /// The highest sequence number appended so far (0 when empty).
    pub fn head(&self) -> u64 {
        self.lock().entries.len() as u64
    }

    /// Drops entries with `seq <= upto` (after a checkpoint), returning how
    /// many were pruned. Sequence numbers of retained entries are preserved.
    pub fn prune(&self, upto: u64) -> usize {
        let mut inner = self.lock();
        let before = inner.entries.len();
        inner.entries.retain(|e| e.seq > upto);
        before - inner.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(ns: &str, key: &str, v: i64) -> JournalOp {
        JournalOp::Put {
            namespace: ns.into(),
            key: key.into(),
            value: Value::Int(v),
        }
    }

    #[test]
    fn sequence_numbers_are_dense_and_monotonic() {
        let j = Journal::new();
        assert_eq!(j.append(SimTime::ZERO, put("a", "k", 1)), Ok(1));
        assert_eq!(j.append(SimTime::from_millis(1), put("a", "k", 2)), Ok(2));
        assert_eq!(j.head(), 2);
    }

    #[test]
    fn read_after_filters() {
        let j = Journal::new();
        for i in 0..5 {
            j.append(SimTime::ZERO, put("a", "k", i)).unwrap();
        }
        assert_eq!(j.read_after(0).len(), 5);
        let tail = j.read_after(3);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 4);
    }

    #[test]
    fn clones_share_the_log() {
        let j = Journal::new();
        let j2 = j.clone();
        j.append(SimTime::ZERO, put("a", "k", 1)).unwrap();
        assert_eq!(j2.head(), 1);
    }

    #[test]
    fn prune_preserves_remaining_seqs() {
        let j = Journal::new();
        for i in 0..5 {
            j.append(SimTime::ZERO, put("a", "k", i)).unwrap();
        }
        assert_eq!(j.prune(3), 3);
        let rest = j.read_after(0);
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].seq, 4);
        assert_eq!(rest[1].seq, 5);
        // head still reports the number of *stored* entries, which callers
        // must not confuse with the next seq after pruning; appends continue
        // from the stored length, so prune is only safe after a checkpoint
        // boundary in the replication protocol tests.
    }

    #[test]
    fn checkpoint_markers_are_recorded() {
        let j = Journal::new();
        j.append(
            SimTime::ZERO,
            JournalOp::Checkpoint {
                label: "snap-1".into(),
            },
        )
        .unwrap();
        match &j.read_after(0)[0].op {
            JournalOp::Checkpoint { label } => assert_eq!(label, "snap-1"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn attached_faults_gate_appends() {
        use crate::{FaultPlan, SharedStore};

        let store = SharedStore::new();
        let mut j = Journal::new();
        j.attach_faults(store.faults());
        assert!(j.append(SimTime::ZERO, put("a", "k", 1)).is_ok());
        store.set_fault_plan(FaultPlan::none().with_brownout(SimTime::ZERO, SimTime::from_secs(1)));
        assert_eq!(
            j.append(SimTime::ZERO, put("a", "k", 2)),
            Err(StoreError::Unavailable)
        );
        store.clear_faults();
        assert_eq!(j.append(SimTime::ZERO, put("a", "k", 2)), Ok(2));
    }
}
