//! The cluster-wide shared object store.

use crate::backend::{BackendKind, BackendStats, StoreBackend};
use crate::fault::{FaultInjector, FaultPlan};
use crate::{StoreError, Value};
use dosgi_net::SimTime;
use dosgi_telemetry::Telemetry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A stored value together with its monotonically increasing version.
#[derive(Debug, Clone, PartialEq)]
pub struct Versioned {
    /// Version counter: 1 on first write, +1 per update. The counter
    /// survives deletion (see [`crate::backend`]): a deleted key leaves a
    /// tombstone, and a re-created key continues counting from it, so a
    /// version number can never be observed twice for different states.
    pub version: u64,
    /// The value.
    pub value: Value,
}

/// I/O counters for experiment reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful read operations.
    pub reads: u64,
    /// Successful write operations (put, cas, delete).
    pub writes: u64,
    /// Total encoded bytes written.
    pub bytes_written: u64,
    /// Total encoded bytes read.
    pub bytes_read: u64,
    /// Operations rejected by the fault layer (brown-out, injected I/O
    /// error, torn batch).
    pub faults: u64,
    /// Writes skipped because the new value was byte-identical to the
    /// stored one (no version bump, no bytes moved).
    pub writes_skipped: u64,
    /// Encoded bytes those skipped writes would have moved — the traffic
    /// change detection saved.
    pub bytes_skipped: u64,
}

#[derive(Debug)]
struct Inner {
    backend: Box<dyn StoreBackend>,
    stats: StoreStats,
    telemetry: Telemetry,
}

/// The simulated SAN: a shared, durable, versioned key-value store.
///
/// Clones share the same underlying storage (`Arc` semantics), modeling the
/// paper's assumption that every node sees the same storage tier. Node
/// crashes in the simulation never touch this store — that is precisely the
/// property migration relies on.
///
/// Keys live inside string *namespaces* (e.g. `"framework/n3"`,
/// `"instance/42/data"`), which map onto the per-framework and per-bundle
/// storage areas of the OSGi specification.
///
/// # Backends
///
/// `SharedStore` is a thin fault-injecting, telemetry-emitting,
/// stats-accounting wrapper over a [`StoreBackend`]: the in-memory map
/// ([`SharedStore::new`], the default) or the log-structured store
/// ([`SharedStore::new_log`]). Every backend is held to the same contract
/// by the golden-fixture conformance suite in [`crate::conformance`] —
/// observable behaviour (results, versions, stats, fault interleaving)
/// must be byte-identical across backends.
///
/// # Fallibility
///
/// Every **data-plane** operation (`put`, `get`, `cas`, `delete`,
/// `read_namespace`, `delete_namespace`, `put_many`) consults the attached
/// [`FaultInjector`] first and returns `Err` during brown-outs or injected
/// I/O errors — see [`crate::fault`]. With no [`FaultPlan`] attached (the
/// default) these operations never fail for fault reasons. **Control-plane**
/// introspection (`list_keys`, `list_namespaces`, `namespace_bytes`,
/// `stats`, `peek`) is deliberately infallible: it models the simulation
/// harness's omniscient view, not a real client.
#[derive(Debug, Clone)]
pub struct SharedStore {
    inner: Arc<Mutex<Inner>>,
    faults: FaultInjector,
}

impl Default for SharedStore {
    fn default() -> Self {
        Self::with_kind(BackendKind::Map)
    }
}

impl SharedStore {
    /// Creates an empty store on the default (map) backend with an inert
    /// fault injector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store on the log-structured backend.
    pub fn new_log() -> Self {
        Self::with_kind(BackendKind::Log)
    }

    /// Creates an empty store on the named backend kind.
    pub fn with_kind(kind: BackendKind) -> Self {
        Self::with_backend(kind.build())
    }

    /// Wraps an explicit backend (e.g. a [`crate::LogBackend`] with a
    /// custom [`crate::LogConfig`] geometry).
    pub fn with_backend(backend: Box<dyn StoreBackend>) -> Self {
        SharedStore {
            inner: Arc::new(Mutex::new(Inner {
                backend,
                stats: StoreStats::default(),
                telemetry: Telemetry::default(),
            })),
            faults: FaultInjector::default(),
        }
    }

    /// The active backend's stable name (`"map"`, `"log"`).
    pub fn backend_name(&self) -> &'static str {
        self.lock().backend.name()
    }

    /// The active backend's maintenance counters (segments, compactions,
    /// live/dead bytes — diagnostic, not part of the conformance surface).
    pub fn backend_stats(&self) -> BackendStats {
        self.lock().backend.backend_stats()
    }

    /// Locks the shared state, explicitly adopting a poisoned lock: the
    /// store holds plain owned data, and every critical section leaves it
    /// structurally valid even if a caller's panic poisons the mutex.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn fault(&self, op: &'static str) -> Result<(), StoreError> {
        let telemetry = self.lock().telemetry.clone();
        telemetry.incr("san.ops");
        self.faults.roll(op).inspect_err(|e| {
            self.lock().stats.faults += 1;
            telemetry.incr("san.faults");
            telemetry.incr(&format!("san.faults.{}", e.kind()));
        })
    }

    /// Attaches a telemetry handle (`san.*` metrics), shared by every
    /// clone of this store. Telemetry never affects fault injection: the
    /// injector's RNG stream is consumed identically with telemetry on
    /// or off.
    pub fn set_telemetry(&self, telemetry: Telemetry) {
        self.lock().telemetry = telemetry;
    }

    // ------------------------------------------------------------------
    // Fault layer wiring
    // ------------------------------------------------------------------

    /// The store's fault injector (share it with a
    /// [`Journal`](crate::Journal) so both draw from one plan and stream).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Installs a fault plan. See [`crate::fault`].
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.faults.set_plan(plan);
    }

    /// Removes any fault plan; the store becomes infallible again.
    pub fn clear_faults(&self) {
        self.faults.clear();
    }

    /// Advances the fault clock (brown-out windows gate on it). The cluster
    /// driver calls this every simulation step.
    pub fn set_now(&self, now: SimTime) {
        self.faults.set_now(now);
    }

    /// False while the store is inside an injected brown-out window.
    pub fn is_available(&self) -> bool {
        self.faults.is_available()
    }

    // ------------------------------------------------------------------
    // Data plane (fallible)
    // ------------------------------------------------------------------

    /// Writes `value` under `namespace/key`, returning the new version.
    ///
    /// # Errors
    ///
    /// Fault-injected [`StoreError::Unavailable`] / [`StoreError::Io`].
    /// Change detection: if the new value encodes byte-identically to the
    /// stored one the write is skipped entirely — no version bump, no byte
    /// accounting, only `writes_skipped`/`san.writes.skipped_identical`.
    /// The fault roll still happens first, so the injector's RNG stream is
    /// identical whether or not the value changed.
    pub fn put(&self, namespace: &str, key: &str, value: Value) -> Result<u64, StoreError> {
        self.fault("put")?;
        let mut inner = self.lock();
        if let Some(version) = inner.backend.identical_live(namespace, key, &value) {
            inner.stats.writes_skipped += 1;
            inner.stats.bytes_skipped += value.encoded_len() as u64;
            let telemetry = inner.telemetry.clone();
            drop(inner);
            telemetry.incr("san.writes.skipped_identical");
            return Ok(version);
        }
        inner.stats.writes += 1;
        inner.stats.bytes_written += value.encoded_len() as u64;
        Ok(inner.backend.insert(namespace, key, value))
    }

    /// Atomically-intended multi-key write: all of `entries` into
    /// `namespace`, committed to the backend as one group. Under a
    /// torn-write fault only a strict prefix lands and
    /// [`StoreError::TornWrite`] reports how much; rewriting the full batch
    /// is the idempotent recovery.
    ///
    /// # Errors
    ///
    /// Fault-injected [`StoreError::Unavailable`] / [`StoreError::Io`] /
    /// [`StoreError::TornWrite`].
    pub fn put_many(
        &self,
        namespace: &str,
        entries: &[(String, Value)],
    ) -> Result<usize, StoreError> {
        self.fault("put_many")?;
        let torn = self.faults.torn_len(entries.len());
        let persisted = torn.unwrap_or(entries.len());
        let mut inner = self.lock();
        let mut bytes = 0u64;
        let mut skipped = 0u64;
        let mut bytes_skipped = 0u64;
        // Per-entry change detection, same contract as `put`: an identical
        // entry costs nothing and keeps its version. `pending` carries the
        // batch-so-far state so a duplicate key compares against the value
        // queued just before it, not the pre-batch one.
        let mut batch: Vec<(&str, &Value)> = Vec::with_capacity(persisted);
        let mut pending: HashMap<&str, &Value> = HashMap::new();
        for (key, value) in &entries[..persisted] {
            // One size computation per entry (streamed, allocation-free)
            // serves change-detection stats and write accounting alike —
            // the value is never encoded just to be measured.
            let len = value.encoded_len() as u64;
            let identical = match pending.get(key.as_str()) {
                Some(queued) => crate::codec::codec_eq(queued, value),
                None => inner
                    .backend
                    .identical_live(namespace, key, value)
                    .is_some(),
            };
            if identical {
                skipped += 1;
                bytes_skipped += len;
                continue;
            }
            bytes += len;
            batch.push((key.as_str(), value));
            pending.insert(key.as_str(), value);
        }
        if !batch.is_empty() {
            inner.backend.insert_many(namespace, &batch);
        }
        inner.stats.writes += persisted as u64 - skipped;
        inner.stats.writes_skipped += skipped;
        inner.stats.bytes_skipped += bytes_skipped;
        inner.stats.bytes_written += bytes;
        let telemetry = inner.telemetry.clone();
        match torn {
            Some(written) => {
                inner.stats.faults += 1;
                drop(inner);
                if skipped > 0 {
                    telemetry.add("san.writes.skipped_identical", skipped);
                }
                telemetry.incr("san.faults");
                telemetry.incr("san.faults.torn_write");
                Err(StoreError::TornWrite { written })
            }
            None => {
                drop(inner);
                if skipped > 0 {
                    telemetry.add("san.writes.skipped_identical", skipped);
                }
                Ok(persisted)
            }
        }
    }

    /// Reads the value under `namespace/key` (`Ok(None)` for a miss).
    ///
    /// # Errors
    ///
    /// Fault-injected [`StoreError::Unavailable`] / [`StoreError::Io`].
    pub fn get(&self, namespace: &str, key: &str) -> Result<Option<Value>, StoreError> {
        Ok(self.get_versioned(namespace, key)?.map(|v| v.value))
    }

    /// Reads the value and its version.
    ///
    /// # Errors
    ///
    /// Fault-injected [`StoreError::Unavailable`] / [`StoreError::Io`].
    pub fn get_versioned(
        &self,
        namespace: &str,
        key: &str,
    ) -> Result<Option<Versioned>, StoreError> {
        self.fault("get")?;
        let mut inner = self.lock();
        let v = inner.backend.get(namespace, key);
        if let Some(v) = &v {
            inner.stats.reads += 1;
            inner.stats.bytes_read += v.value.encoded_len() as u64;
        }
        Ok(v)
    }

    /// Compare-and-swap: writes `value` only if the current *live* version
    /// equals `expected` (use 0 for "key must not exist" — a deleted key
    /// counts as not existing). Returns the new version, which continues
    /// the key's monotonic counter: recreating a deleted key yields a
    /// version strictly greater than any the key ever had, never
    /// `expected + 1` re-used from before the delete.
    ///
    /// # Errors
    ///
    /// [`StoreError::CasConflict`] if the version does not match, plus
    /// fault-injected errors.
    pub fn cas(
        &self,
        namespace: &str,
        key: &str,
        expected: u64,
        value: Value,
    ) -> Result<u64, StoreError> {
        self.fault("cas")?;
        let mut inner = self.lock();
        let found = inner.backend.key_version(namespace, key).live();
        if found != expected {
            return Err(StoreError::CasConflict { expected, found });
        }
        let len = value.encoded_len() as u64;
        let version = inner.backend.insert(namespace, key, value);
        inner.stats.writes += 1;
        inner.stats.bytes_written += len;
        Ok(version)
    }

    /// Deletes `namespace/key`. The key's version counter survives as a
    /// tombstone: a later re-put of even an identical value gets a fresh
    /// version, so stale readers can never mistake the recreated key for
    /// the one they cached.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] if the key is absent, plus fault-injected
    /// errors.
    pub fn delete(&self, namespace: &str, key: &str) -> Result<(), StoreError> {
        self.fault("delete")?;
        let mut inner = self.lock();
        if inner.backend.remove(namespace, key) {
            inner.stats.writes += 1;
            Ok(())
        } else {
            Err(StoreError::NotFound {
                namespace: namespace.to_owned(),
                key: key.to_owned(),
            })
        }
    }

    /// Deletes an entire namespace, returning how many keys it held. Every
    /// deleted key leaves a version tombstone (see [`delete`](Self::delete)).
    ///
    /// # Errors
    ///
    /// Fault-injected [`StoreError::Unavailable`] / [`StoreError::Io`].
    pub fn delete_namespace(&self, namespace: &str) -> Result<usize, StoreError> {
        self.fault("delete_namespace")?;
        let mut inner = self.lock();
        let n = inner.backend.remove_namespace(namespace);
        if n > 0 {
            inner.stats.writes += 1;
        }
        Ok(n)
    }

    /// Reads a whole namespace as `(key, value)` pairs, sorted by key.
    ///
    /// # Errors
    ///
    /// Fault-injected [`StoreError::Unavailable`] / [`StoreError::Io`].
    pub fn read_namespace(&self, namespace: &str) -> Result<Vec<(String, Value)>, StoreError> {
        self.fault("read_namespace")?;
        let mut inner = self.lock();
        let pairs: Vec<(String, Value)> = inner
            .backend
            .read_namespace(namespace)
            .into_iter()
            .map(|(k, v)| (k, v.value))
            .collect();
        for (_, v) in &pairs {
            inner.stats.reads += 1;
            inner.stats.bytes_read += v.encoded_len() as u64;
        }
        Ok(pairs)
    }

    // ------------------------------------------------------------------
    // Control plane (infallible introspection)
    // ------------------------------------------------------------------

    /// Fault-free diagnostic read: the simulation harness's omniscient view
    /// of `namespace/key`, bypassing the fault layer and the I/O counters.
    /// Invariant checkers use this to inspect durable state *during* a
    /// brown-out; production paths must use [`get`](Self::get).
    pub fn peek(&self, namespace: &str, key: &str) -> Option<Value> {
        self.lock().backend.get(namespace, key).map(|v| v.value)
    }

    /// Like [`peek`](Self::peek) but with the version — the conformance
    /// suite's window onto the version vector.
    pub fn peek_versioned(&self, namespace: &str, key: &str) -> Option<Versioned> {
        self.lock().backend.get(namespace, key)
    }

    /// Keys in a namespace, sorted.
    pub fn list_keys(&self, namespace: &str) -> Vec<String> {
        self.lock().backend.list_keys(namespace)
    }

    /// All namespaces with at least one key, sorted.
    pub fn list_namespaces(&self) -> Vec<String> {
        self.lock().backend.list_namespaces()
    }

    /// A full omniscient dump of the live store — every namespace's
    /// key-sorted `(key, version, value)` rows — bypassing faults and
    /// stats. This is the byte surface the golden fixtures and the
    /// cross-backend equivalence tests compare.
    pub fn dump(&self) -> Vec<(String, Vec<(String, Versioned)>)> {
        let inner = self.lock();
        inner
            .backend
            .list_namespaces()
            .into_iter()
            .map(|ns| {
                let rows = inner.backend.read_namespace(&ns);
                (ns, rows)
            })
            .collect()
    }

    /// Total encoded size of a namespace in bytes (no stats impact) —
    /// the "how much state would a migration move" metric.
    pub fn namespace_bytes(&self, namespace: &str) -> u64 {
        self.lock().backend.namespace_bytes(namespace)
    }

    /// Total encoded size across every namespace equal to `prefix` or
    /// under `prefix/…` — an instance's full footprint (framework snapshot
    /// plus all bundle data areas).
    pub fn namespace_bytes_prefixed(&self, prefix: &str) -> u64 {
        let inner = self.lock();
        let sub = format!("{prefix}/");
        inner
            .backend
            .list_namespaces()
            .into_iter()
            .filter(|name| *name == prefix || name.starts_with(&sub))
            .map(|name| inner.backend.namespace_bytes(&name))
            .sum()
    }

    /// Current I/O counters.
    pub fn stats(&self) -> StoreStats {
        self.lock().stats
    }

    /// Resets the I/O counters (between experiment phases).
    pub fn reset_stats(&self) {
        self.lock().stats = StoreStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every store-level unit test runs against every registered backend:
    /// the wrapper's contract is backend-independent by construction.
    fn each_backend(test: impl Fn(SharedStore)) {
        for kind in BackendKind::all() {
            test(SharedStore::with_kind(kind));
        }
    }

    #[test]
    fn put_get_round_trip_and_versions() {
        each_backend(|s| {
            assert_eq!(s.put("ns", "k", Value::Int(1)), Ok(1));
            assert_eq!(s.put("ns", "k", Value::Int(2)), Ok(2));
            assert_eq!(s.get("ns", "k"), Ok(Some(Value::Int(2))));
            assert_eq!(s.get_versioned("ns", "k").unwrap().unwrap().version, 2);
            assert_eq!(s.get("ns", "missing"), Ok(None));
        });
    }

    #[test]
    fn clones_share_storage() {
        each_backend(|s| {
            let s2 = s.clone();
            s.put("ns", "k", Value::Int(1)).unwrap();
            assert_eq!(s2.get("ns", "k"), Ok(Some(Value::Int(1))));
        });
    }

    #[test]
    fn cas_succeeds_only_on_matching_version() {
        each_backend(|s| {
            // Create-if-absent.
            assert_eq!(s.cas("ns", "k", 0, Value::Int(1)), Ok(1));
            assert_eq!(
                s.cas("ns", "k", 0, Value::Int(9)),
                Err(StoreError::CasConflict {
                    expected: 0,
                    found: 1
                })
            );
            assert_eq!(s.cas("ns", "k", 1, Value::Int(2)), Ok(2));
            assert_eq!(s.get("ns", "k"), Ok(Some(Value::Int(2))));
        });
    }

    #[test]
    fn delete_and_not_found() {
        each_backend(|s| {
            s.put("ns", "k", Value::Int(1)).unwrap();
            s.delete("ns", "k").unwrap();
            assert_eq!(s.get("ns", "k"), Ok(None));
            assert!(matches!(
                s.delete("ns", "k"),
                Err(StoreError::NotFound { .. })
            ));
        });
    }

    /// Regression for the stale-reader hazard: a delete followed by a
    /// re-put of the *identical* value must bump the version. Before the
    /// tombstone fix the recreated key reused its old version, so a PR 4
    /// change-detecting reader holding the old `(value, version)` pair
    /// would skip a re-read across the delete window and never observe
    /// that the key had been deleted and recreated.
    #[test]
    fn delete_then_identical_reput_always_bumps_the_version() {
        each_backend(|s| {
            let v = Value::Str("same".into());
            assert_eq!(s.put("ns", "k", v.clone()), Ok(1));
            s.delete("ns", "k").unwrap();
            let recreated = s.put("ns", "k", v.clone()).unwrap();
            assert!(
                recreated > 1,
                "recreated key must not reuse version 1 (got {recreated})"
            );
            assert_eq!(recreated, 2, "counter continues past the tombstone");
            // And change detection still works on the recreated key.
            assert_eq!(s.put("ns", "k", v.clone()), Ok(2));
            assert_eq!(s.stats().writes_skipped, 1);
        });
    }

    /// Same hazard through the namespace-wide delete: `delete_namespace`
    /// must tombstone every key it removes.
    #[test]
    fn delete_namespace_then_reput_always_bumps_versions() {
        each_backend(|s| {
            s.put("ns", "a", Value::Int(1)).unwrap();
            s.put("ns", "a", Value::Int(2)).unwrap();
            s.put("ns", "b", Value::Int(3)).unwrap();
            assert_eq!(s.delete_namespace("ns"), Ok(2));
            assert_eq!(s.put("ns", "a", Value::Int(2)), Ok(3), "a was at 2");
            assert_eq!(s.put("ns", "b", Value::Int(3)), Ok(2), "b was at 1");
        });
    }

    /// A deleted key counts as absent for `cas(expected = 0)`, but the
    /// granted version continues the monotonic counter.
    #[test]
    fn cas_create_after_delete_continues_the_counter() {
        each_backend(|s| {
            s.put("ns", "k", Value::Int(1)).unwrap();
            s.put("ns", "k", Value::Int(2)).unwrap();
            s.delete("ns", "k").unwrap();
            assert_eq!(
                s.cas("ns", "k", 2, Value::Int(9)),
                Err(StoreError::CasConflict {
                    expected: 2,
                    found: 0
                }),
                "a tombstoned key reads as absent to cas"
            );
            assert_eq!(s.cas("ns", "k", 0, Value::Int(9)), Ok(3));
        });
    }

    #[test]
    fn namespace_operations() {
        each_backend(|s| {
            s.put("a", "k1", Value::Int(1)).unwrap();
            s.put("a", "k2", Value::Int(2)).unwrap();
            s.put("b", "k3", Value::Int(3)).unwrap();
            assert_eq!(s.list_keys("a"), vec!["k1", "k2"]);
            assert_eq!(s.list_namespaces(), vec!["a", "b"]);
            let all = s.read_namespace("a").unwrap();
            assert_eq!(all.len(), 2);
            assert_eq!(all[0], ("k1".to_owned(), Value::Int(1)));
            assert_eq!(s.delete_namespace("a"), Ok(2));
            assert_eq!(s.list_namespaces(), vec!["b"]);
            assert_eq!(s.delete_namespace("a"), Ok(0));
        });
    }

    #[test]
    fn stats_account_bytes() {
        each_backend(|s| {
            let v = Value::Str("hello".into());
            let len = v.encoded_len() as u64;
            s.put("ns", "k", v).unwrap();
            let _ = s.get("ns", "k").unwrap();
            let st = s.stats();
            assert_eq!(st.writes, 1);
            assert_eq!(st.reads, 1);
            assert_eq!(st.bytes_written, len);
            assert_eq!(st.bytes_read, len);
            assert_eq!(st.faults, 0);
            s.reset_stats();
            assert_eq!(s.stats(), StoreStats::default());
        });
    }

    #[test]
    fn namespace_bytes_reports_encoded_size() {
        each_backend(|s| {
            let v1 = Value::Str("abc".into());
            let v2 = Value::Int(7);
            let expect = (v1.encoded_len() + v2.encoded_len()) as u64;
            s.put("ns", "k1", v1).unwrap();
            s.put("ns", "k2", v2).unwrap();
            assert_eq!(s.namespace_bytes("ns"), expect);
            assert_eq!(s.namespace_bytes("other"), 0);
        });
    }

    #[test]
    fn prefixed_bytes_cover_sub_namespaces_only() {
        each_backend(|s| {
            s.put("inst/a", "k", Value::Int(1)).unwrap();
            s.put("inst/a/data/x", "k", Value::Int(2)).unwrap();
            s.put("inst/ab", "k", Value::Int(3)).unwrap(); // sibling, NOT under inst/a
            let expect = Value::Int(1).encoded_len() as u64 + Value::Int(2).encoded_len() as u64;
            assert_eq!(s.namespace_bytes_prefixed("inst/a"), expect);
            assert!(s.namespace_bytes_prefixed("inst/ab") > 0);
            assert_eq!(s.namespace_bytes_prefixed("nope"), 0);
        });
    }

    #[test]
    fn misses_do_not_count_as_reads() {
        each_backend(|s| {
            let _ = s.get("ns", "missing").unwrap();
            assert_eq!(s.stats().reads, 0);
        });
    }

    #[test]
    fn identical_put_skips_version_bump_and_bytes() {
        each_backend(|s| {
            let v = Value::Str("same".into());
            assert_eq!(s.put("ns", "k", v.clone()), Ok(1));
            let before = s.stats();
            // Identical rewrite: same version back, nothing counted as a write.
            assert_eq!(s.put("ns", "k", v.clone()), Ok(1));
            let after = s.stats();
            assert_eq!(after.writes, before.writes);
            assert_eq!(after.bytes_written, before.bytes_written);
            assert_eq!(after.writes_skipped, before.writes_skipped + 1);
            assert_eq!(s.get_versioned("ns", "k").unwrap().unwrap().version, 1);
            // A different value still bumps.
            assert_eq!(s.put("ns", "k", Value::Str("new".into())), Ok(2));
            assert_eq!(s.stats().writes, before.writes + 1);
        });
    }

    #[test]
    fn identical_put_uses_codec_equality_for_floats() {
        each_backend(|s| {
            s.put("ns", "f", Value::Float(0.0)).unwrap();
            // -0.0 == 0.0 under PartialEq but encodes differently: must write.
            assert_eq!(s.put("ns", "f", Value::Float(-0.0)), Ok(2));
            // Bit-identical NaN is a skip even though NaN != NaN.
            s.put("ns", "n", Value::Float(f64::NAN)).unwrap();
            assert_eq!(s.put("ns", "n", Value::Float(f64::NAN)), Ok(1));
            assert_eq!(s.stats().writes_skipped, 1);
        });
    }

    #[test]
    fn put_many_skips_identical_entries_only() {
        each_backend(|s| {
            s.put("ns", "a", Value::Int(1)).unwrap();
            s.put("ns", "b", Value::Int(2)).unwrap();
            s.reset_stats();
            let entries = vec![
                ("a".to_owned(), Value::Int(1)),  // identical → skipped
                ("b".to_owned(), Value::Int(22)), // changed → written
                ("c".to_owned(), Value::Int(3)),  // new → written
            ];
            assert_eq!(s.put_many("ns", &entries), Ok(3));
            let st = s.stats();
            assert_eq!(st.writes, 2);
            assert_eq!(st.writes_skipped, 1);
            assert_eq!(
                st.bytes_written,
                (Value::Int(22).encoded_len() + Value::Int(3).encoded_len()) as u64
            );
            assert_eq!(s.get_versioned("ns", "a").unwrap().unwrap().version, 1);
            assert_eq!(s.get_versioned("ns", "b").unwrap().unwrap().version, 2);
        });
    }

    #[test]
    fn put_many_duplicate_keys_compare_against_the_batch() {
        each_backend(|s| {
            // Second occurrence identical to the first: skipped (it compares
            // against the value queued within the batch, not pre-batch state).
            let entries = vec![
                ("k".to_owned(), Value::Int(1)),
                ("k".to_owned(), Value::Int(1)),
            ];
            assert_eq!(s.put_many("ns", &entries), Ok(2));
            let st = s.stats();
            assert_eq!(st.writes, 1);
            assert_eq!(st.writes_skipped, 1);
            assert_eq!(s.get_versioned("ns", "k").unwrap().unwrap().version, 1);
            // Differing duplicate bumps twice.
            let entries = vec![
                ("j".to_owned(), Value::Int(1)),
                ("j".to_owned(), Value::Int(2)),
            ];
            assert_eq!(s.put_many("ns", &entries), Ok(2));
            assert_eq!(s.get_versioned("ns", "j").unwrap().unwrap().version, 2);
        });
    }

    #[test]
    fn put_many_writes_all_entries_when_healthy() {
        each_backend(|s| {
            let entries = vec![
                ("a".to_owned(), Value::Int(1)),
                ("b".to_owned(), Value::Int(2)),
            ];
            assert_eq!(s.put_many("ns", &entries), Ok(2));
            assert_eq!(s.get("ns", "a"), Ok(Some(Value::Int(1))));
            assert_eq!(s.get("ns", "b"), Ok(Some(Value::Int(2))));
            assert_eq!(s.stats().writes, 2);
        });
    }

    #[test]
    fn torn_put_many_persists_exactly_the_reported_prefix() {
        each_backend(|s| {
            s.set_fault_plan(FaultPlan::none().with_torn_writes(1.0));
            let entries: Vec<(String, Value)> =
                (0..6).map(|i| (format!("k{i}"), Value::Int(i))).collect();
            let Err(StoreError::TornWrite { written }) = s.put_many("ns", &entries) else {
                panic!("rate-1.0 torn plan must tear");
            };
            assert!(written < entries.len());
            assert_eq!(s.list_keys("ns").len(), written);
            // Recovery: rewriting the whole batch is idempotent and complete.
            s.clear_faults();
            assert_eq!(s.put_many("ns", &entries), Ok(6));
            assert_eq!(s.list_keys("ns").len(), 6);
        });
    }

    #[test]
    fn brownout_blocks_data_plane_but_not_peek() {
        each_backend(|s| {
            s.put("ns", "k", Value::Int(7)).unwrap();
            s.set_fault_plan(
                FaultPlan::none().with_brownout(SimTime::ZERO, SimTime::from_secs(10)),
            );
            assert!(!s.is_available());
            assert_eq!(s.get("ns", "k"), Err(StoreError::Unavailable));
            assert_eq!(
                s.put("ns", "k", Value::Int(8)),
                Err(StoreError::Unavailable)
            );
            assert_eq!(s.read_namespace("ns"), Err(StoreError::Unavailable));
            assert_eq!(s.delete_namespace("ns"), Err(StoreError::Unavailable));
            // The omniscient observer still sees the durable value.
            assert_eq!(s.peek("ns", "k"), Some(Value::Int(7)));
            assert!(s.stats().faults >= 4);
            // Time moves past the window: the store heals.
            s.set_now(SimTime::from_secs(10));
            assert!(s.is_available());
            assert_eq!(s.get("ns", "k"), Ok(Some(Value::Int(7))));
        });
    }

    #[test]
    fn flaky_store_fails_deterministically_per_seed() {
        let run = |kind, seed| {
            let s = SharedStore::with_kind(kind);
            s.set_fault_plan(FaultPlan::flaky(0.5, seed));
            (0..64)
                .map(|i| s.put("ns", &format!("k{i}"), Value::Int(i)).is_err())
                .collect::<Vec<_>>()
        };
        for kind in BackendKind::all() {
            assert_eq!(run(kind, 7), run(kind, 7));
            assert_ne!(
                run(kind, 7),
                run(kind, 8),
                "different seeds, different fault pattern"
            );
        }
        // And the fault pattern is backend-independent: the injector's RNG
        // stream is consumed by the wrapper, above the backend seam.
        assert_eq!(run(BackendKind::Map, 7), run(BackendKind::Log, 7));
    }

    #[test]
    fn dump_covers_every_live_namespace_with_versions() {
        each_backend(|s| {
            s.put("b", "k", Value::Int(1)).unwrap();
            s.put("a", "k", Value::Int(2)).unwrap();
            s.put("a", "k", Value::Int(3)).unwrap();
            s.delete("b", "k").unwrap();
            let dump = s.dump();
            assert_eq!(dump.len(), 1, "namespace b is all tombstones");
            assert_eq!(dump[0].0, "a");
            assert_eq!(dump[0].1[0].1.version, 2);
            assert_eq!(s.peek_versioned("a", "k").unwrap().version, 2);
        });
    }
}
