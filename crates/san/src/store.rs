//! The cluster-wide shared object store.

use crate::{StoreError, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A stored value together with its monotonically increasing version.
#[derive(Debug, Clone, PartialEq)]
pub struct Versioned {
    /// Version counter: 1 on first write, +1 per update.
    pub version: u64,
    /// The value.
    pub value: Value,
}

/// I/O counters for experiment reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful read operations.
    pub reads: u64,
    /// Successful write operations (put, cas, delete).
    pub writes: u64,
    /// Total encoded bytes written.
    pub bytes_written: u64,
    /// Total encoded bytes read.
    pub bytes_read: u64,
}

#[derive(Debug, Default)]
struct Inner {
    namespaces: HashMap<String, BTreeMap<String, Versioned>>,
    stats: StoreStats,
}

/// The simulated SAN: a shared, durable, versioned key-value store.
///
/// Clones share the same underlying storage (`Arc` semantics), modeling the
/// paper's assumption that every node sees the same storage tier. Node
/// crashes in the simulation never touch this store — that is precisely the
/// property migration relies on.
///
/// Keys live inside string *namespaces* (e.g. `"framework/n3"`,
/// `"instance/42/data"`), which map onto the per-framework and per-bundle
/// storage areas of the OSGi specification.
#[derive(Debug, Clone, Default)]
pub struct SharedStore {
    inner: Arc<Mutex<Inner>>,
}

impl SharedStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the shared state, explicitly adopting a poisoned lock: the
    /// store holds plain owned data, and every critical section leaves it
    /// structurally valid even if a caller's panic poisons the mutex.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Writes `value` under `namespace/key`, returning the new version.
    pub fn put(&self, namespace: &str, key: &str, value: Value) -> u64 {
        let mut inner = self.lock();
        inner.stats.writes += 1;
        inner.stats.bytes_written += value.encoded_len() as u64;
        let ns = inner.namespaces.entry(namespace.to_owned()).or_default();
        let version = ns.get(key).map(|v| v.version).unwrap_or(0) + 1;
        ns.insert(key.to_owned(), Versioned { version, value });
        version
    }

    /// Reads the value under `namespace/key`.
    pub fn get(&self, namespace: &str, key: &str) -> Option<Value> {
        self.get_versioned(namespace, key).map(|v| v.value)
    }

    /// Reads the value and its version.
    pub fn get_versioned(&self, namespace: &str, key: &str) -> Option<Versioned> {
        let mut inner = self.lock();
        let v = inner
            .namespaces
            .get(namespace)
            .and_then(|ns| ns.get(key))
            .cloned();
        if let Some(v) = &v {
            inner.stats.reads += 1;
            inner.stats.bytes_read += v.value.encoded_len() as u64;
        }
        v
    }

    /// Compare-and-swap: writes `value` only if the current version equals
    /// `expected` (use 0 for "key must not exist"). Returns the new version.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::CasConflict`] if the version does not match.
    pub fn cas(
        &self,
        namespace: &str,
        key: &str,
        expected: u64,
        value: Value,
    ) -> Result<u64, StoreError> {
        let mut inner = self.lock();
        let ns = inner.namespaces.entry(namespace.to_owned()).or_default();
        let found = ns.get(key).map(|v| v.version).unwrap_or(0);
        if found != expected {
            return Err(StoreError::CasConflict { expected, found });
        }
        let version = found + 1;
        let len = value.encoded_len() as u64;
        ns.insert(key.to_owned(), Versioned { version, value });
        inner.stats.writes += 1;
        inner.stats.bytes_written += len;
        Ok(version)
    }

    /// Deletes `namespace/key`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] if the key is absent.
    pub fn delete(&self, namespace: &str, key: &str) -> Result<(), StoreError> {
        let mut inner = self.lock();
        let removed = inner
            .namespaces
            .get_mut(namespace)
            .and_then(|ns| ns.remove(key));
        match removed {
            Some(_) => {
                inner.stats.writes += 1;
                Ok(())
            }
            None => Err(StoreError::NotFound {
                namespace: namespace.to_owned(),
                key: key.to_owned(),
            }),
        }
    }

    /// Deletes an entire namespace, returning how many keys it held.
    pub fn delete_namespace(&self, namespace: &str) -> usize {
        let mut inner = self.lock();
        let n = inner
            .namespaces
            .remove(namespace)
            .map(|ns| ns.len())
            .unwrap_or(0);
        if n > 0 {
            inner.stats.writes += 1;
        }
        n
    }

    /// Keys in a namespace, sorted.
    pub fn list_keys(&self, namespace: &str) -> Vec<String> {
        self.lock()
            .namespaces
            .get(namespace)
            .map(|ns| ns.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// All namespaces with at least one key, sorted.
    pub fn list_namespaces(&self) -> Vec<String> {
        let inner = self.lock();
        let mut v: Vec<String> = inner
            .namespaces
            .iter()
            .filter(|(_, ns)| !ns.is_empty())
            .map(|(k, _)| k.clone())
            .collect();
        v.sort();
        v
    }

    /// Reads a whole namespace as `(key, value)` pairs, sorted by key.
    pub fn read_namespace(&self, namespace: &str) -> Vec<(String, Value)> {
        let mut inner = self.lock();
        let pairs: Vec<(String, Value)> = inner
            .namespaces
            .get(namespace)
            .map(|ns| {
                ns.iter()
                    .map(|(k, v)| (k.clone(), v.value.clone()))
                    .collect()
            })
            .unwrap_or_default();
        for (_, v) in &pairs {
            inner.stats.reads += 1;
            inner.stats.bytes_read += v.encoded_len() as u64;
        }
        pairs
    }

    /// Total encoded size of a namespace in bytes (no stats impact) —
    /// the "how much state would a migration move" metric.
    pub fn namespace_bytes(&self, namespace: &str) -> u64 {
        self.lock()
            .namespaces
            .get(namespace)
            .map(|ns| ns.values().map(|v| v.value.encoded_len() as u64).sum())
            .unwrap_or(0)
    }

    /// Total encoded size across every namespace equal to `prefix` or
    /// under `prefix/…` — an instance's full footprint (framework snapshot
    /// plus all bundle data areas).
    pub fn namespace_bytes_prefixed(&self, prefix: &str) -> u64 {
        let inner = self.lock();
        let sub = format!("{prefix}/");
        inner
            .namespaces
            .iter()
            .filter(|(name, _)| *name == prefix || name.starts_with(&sub))
            .map(|(_, ns)| ns.values().map(|v| v.value.encoded_len() as u64).sum::<u64>())
            .sum()
    }

    /// Current I/O counters.
    pub fn stats(&self) -> StoreStats {
        self.lock().stats
    }

    /// Resets the I/O counters (between experiment phases).
    pub fn reset_stats(&self) {
        self.lock().stats = StoreStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip_and_versions() {
        let s = SharedStore::new();
        assert_eq!(s.put("ns", "k", Value::Int(1)), 1);
        assert_eq!(s.put("ns", "k", Value::Int(2)), 2);
        assert_eq!(s.get("ns", "k"), Some(Value::Int(2)));
        assert_eq!(s.get_versioned("ns", "k").unwrap().version, 2);
        assert_eq!(s.get("ns", "missing"), None);
    }

    #[test]
    fn clones_share_storage() {
        let s = SharedStore::new();
        let s2 = s.clone();
        s.put("ns", "k", Value::Int(1));
        assert_eq!(s2.get("ns", "k"), Some(Value::Int(1)));
    }

    #[test]
    fn cas_succeeds_only_on_matching_version() {
        let s = SharedStore::new();
        // Create-if-absent.
        assert_eq!(s.cas("ns", "k", 0, Value::Int(1)), Ok(1));
        assert_eq!(
            s.cas("ns", "k", 0, Value::Int(9)),
            Err(StoreError::CasConflict {
                expected: 0,
                found: 1
            })
        );
        assert_eq!(s.cas("ns", "k", 1, Value::Int(2)), Ok(2));
        assert_eq!(s.get("ns", "k"), Some(Value::Int(2)));
    }

    #[test]
    fn delete_and_not_found() {
        let s = SharedStore::new();
        s.put("ns", "k", Value::Int(1));
        s.delete("ns", "k").unwrap();
        assert_eq!(s.get("ns", "k"), None);
        assert!(matches!(
            s.delete("ns", "k"),
            Err(StoreError::NotFound { .. })
        ));
    }

    #[test]
    fn namespace_operations() {
        let s = SharedStore::new();
        s.put("a", "k1", Value::Int(1));
        s.put("a", "k2", Value::Int(2));
        s.put("b", "k3", Value::Int(3));
        assert_eq!(s.list_keys("a"), vec!["k1", "k2"]);
        assert_eq!(s.list_namespaces(), vec!["a", "b"]);
        let all = s.read_namespace("a");
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], ("k1".to_owned(), Value::Int(1)));
        assert_eq!(s.delete_namespace("a"), 2);
        assert_eq!(s.list_namespaces(), vec!["b"]);
        assert_eq!(s.delete_namespace("a"), 0);
    }

    #[test]
    fn stats_account_bytes() {
        let s = SharedStore::new();
        let v = Value::Str("hello".into());
        let len = v.encoded_len() as u64;
        s.put("ns", "k", v);
        let _ = s.get("ns", "k");
        let st = s.stats();
        assert_eq!(st.writes, 1);
        assert_eq!(st.reads, 1);
        assert_eq!(st.bytes_written, len);
        assert_eq!(st.bytes_read, len);
        s.reset_stats();
        assert_eq!(s.stats(), StoreStats::default());
    }

    #[test]
    fn namespace_bytes_reports_encoded_size() {
        let s = SharedStore::new();
        let v1 = Value::Str("abc".into());
        let v2 = Value::Int(7);
        let expect = (v1.encoded_len() + v2.encoded_len()) as u64;
        s.put("ns", "k1", v1);
        s.put("ns", "k2", v2);
        assert_eq!(s.namespace_bytes("ns"), expect);
        assert_eq!(s.namespace_bytes("other"), 0);
    }

    #[test]
    fn prefixed_bytes_cover_sub_namespaces_only() {
        let s = SharedStore::new();
        s.put("inst/a", "k", Value::Int(1));
        s.put("inst/a/data/x", "k", Value::Int(2));
        s.put("inst/ab", "k", Value::Int(3)); // sibling, NOT under inst/a
        let expect = Value::Int(1).encoded_len() as u64 + Value::Int(2).encoded_len() as u64;
        assert_eq!(s.namespace_bytes_prefixed("inst/a"), expect);
        assert!(s.namespace_bytes_prefixed("inst/ab") > 0);
        assert_eq!(s.namespace_bytes_prefixed("nope"), 0);
    }

    #[test]
    fn misses_do_not_count_as_reads() {
        let s = SharedStore::new();
        let _ = s.get("ns", "missing");
        assert_eq!(s.stats().reads, 0);
    }
}
