//! A log-structured storage backend: append-only segments + in-memory
//! index, with size-triggered compaction and group-commit batching.
//!
//! This is the second [`StoreBackend`](crate::StoreBackend) — the proof
//! that the conformance contract in [`crate::backend`] is real. Writes
//! append a record to the active segment and repoint the index; nothing is
//! updated in place. When the active segment crosses
//! [`LogConfig::segment_target_bytes`] it is sealed and a fresh one opens.
//! Superseded and deleted records become *dead bytes*; once they cross
//! [`LogConfig::compact_min_dead_bytes`] **and**
//! [`LogConfig::compact_dead_ratio`] of the log, a compaction pass
//! rewrites the live records into fresh segments (the simulation's
//! single-threaded analogue of a background compactor — it runs inside
//! the mutating call, at a deterministic point).
//!
//! [`insert_many`](crate::StoreBackend::insert_many) appends the whole
//! batch under one *group commit*: one segment-roll decision and one
//! compaction check per batch instead of per entry — sized for the PR 4
//! per-bundle row workload, where a framework persist lands a couple of
//! dozen ~400 B rows at once.
//!
//! Version tombstones follow the contract in [`crate::backend`]: a delete
//! appends a tombstone record (so the log itself records the deletion) and
//! the index keeps the version counter forever; compaction preserves
//! counters even though it drops the tombstone records themselves — the
//! index, not the log, is the recovery authority for version continuity.

use crate::backend::{BackendStats, KeyVersion, StoreBackend};
use crate::store::Versioned;
use crate::Value;
use std::collections::BTreeMap;

/// Sizing knobs for the log-structured backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogConfig {
    /// Seal the active segment once it holds this many record bytes.
    pub segment_target_bytes: u64,
    /// Compact only when at least this many dead bytes have accumulated.
    pub compact_min_dead_bytes: u64,
    /// ... and dead bytes exceed this fraction of all segment bytes.
    pub compact_dead_ratio: f64,
}

impl Default for LogConfig {
    fn default() -> Self {
        // Sized for the per-bundle row workload: a 64 KiB segment holds a
        // few persist rounds; compaction waits for half the log to die.
        LogConfig {
            segment_target_bytes: 64 * 1024,
            compact_min_dead_bytes: 32 * 1024,
            compact_dead_ratio: 0.5,
        }
    }
}

impl LogConfig {
    /// A deliberately tiny geometry for tests that want to see many
    /// segment rolls and compactions with little data.
    pub fn tiny() -> Self {
        LogConfig {
            segment_target_bytes: 512,
            compact_min_dead_bytes: 1024,
            compact_dead_ratio: 0.3,
        }
    }
}

/// One record in a segment.
#[derive(Debug, Clone)]
enum Record {
    Put {
        namespace: String,
        key: String,
        version: u64,
        value: Value,
    },
    Tombstone {
        namespace: String,
        key: String,
        version: u64,
    },
}

impl Record {
    /// The record's accounting cost: key material + encoded value + a
    /// fixed framing overhead (tag, version, lengths).
    fn cost(&self) -> u64 {
        const FRAME: u64 = 16;
        match self {
            Record::Put {
                namespace,
                key,
                value,
                ..
            } => FRAME + namespace.len() as u64 + key.len() as u64 + value.encoded_len() as u64,
            Record::Tombstone { namespace, key, .. } => {
                FRAME + namespace.len() as u64 + key.len() as u64
            }
        }
    }
}

#[derive(Debug, Default)]
struct Segment {
    records: Vec<Record>,
    bytes: u64,
}

/// Where a live key's current record sits.
#[derive(Debug, Clone, Copy)]
struct Loc {
    segment: u64,
    record: usize,
}

#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    version: u64,
    /// `None` marks a tombstone: the counter survives, the value is gone.
    loc: Option<Loc>,
}

/// The log-structured backend. See the module docs for the design.
#[derive(Debug)]
pub struct LogBackend {
    config: LogConfig,
    /// Sealed + active segments by id; the highest id is the active one.
    segments: BTreeMap<u64, Segment>,
    next_segment: u64,
    /// `namespace → key → entry`. BTreeMaps keep every iteration (reads,
    /// compaction rewrite order) deterministic.
    index: BTreeMap<String, BTreeMap<String, IndexEntry>>,
    dead_bytes: u64,
    total_bytes: u64,
    sealed_segments: u64,
    compactions: u64,
    group_commits: u64,
}

impl Default for LogBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl LogBackend {
    /// Creates an empty log with the default geometry.
    pub fn new() -> Self {
        Self::with_config(LogConfig::default())
    }

    /// Creates an empty log with an explicit geometry.
    pub fn with_config(config: LogConfig) -> Self {
        LogBackend {
            config,
            segments: BTreeMap::new(),
            next_segment: 0,
            index: BTreeMap::new(),
            dead_bytes: 0,
            total_bytes: 0,
            sealed_segments: 0,
            compactions: 0,
            group_commits: 0,
        }
    }

    fn entry(&self, namespace: &str, key: &str) -> Option<&IndexEntry> {
        self.index.get(namespace).and_then(|ns| ns.get(key))
    }

    fn record_at(&self, loc: Loc) -> &Record {
        &self.segments[&loc.segment].records[loc.record]
    }

    /// The live value a location points at.
    fn value_at(&self, loc: Loc) -> &Value {
        match self.record_at(loc) {
            Record::Put { value, .. } => value,
            Record::Tombstone { .. } => {
                unreachable!("index never points a live key at a tombstone")
            }
        }
    }

    /// Appends one record to the active segment (opening one if needed)
    /// and returns its location. Does *not* roll or compact — group
    /// commits decide that once per batch.
    fn append(&mut self, record: Record) -> Loc {
        let cost = record.cost();
        let id = match self.segments.last_key_value() {
            Some((&id, _)) => id,
            None => {
                let id = self.next_segment;
                self.next_segment += 1;
                self.segments.insert(id, Segment::default());
                id
            }
        };
        let seg = self.segments.get_mut(&id).expect("active segment exists");
        seg.records.push(record);
        seg.bytes += cost;
        self.total_bytes += cost;
        Loc {
            segment: id,
            record: seg.records.len() - 1,
        }
    }

    /// Marks the record a superseded index entry pointed at as dead.
    fn kill(&mut self, loc: Loc) {
        self.dead_bytes += self.record_at(loc).cost();
    }

    /// Seals the active segment if it crossed the target, then compacts if
    /// enough of the log has died. One call per logical commit.
    fn finish_commit(&mut self) {
        if let Some((_, seg)) = self.segments.last_key_value() {
            if seg.bytes >= self.config.segment_target_bytes {
                // Sealing is purely logical: the segment stays readable,
                // the next append opens a fresh active segment.
                self.sealed_segments += 1;
                let id = self.next_segment;
                self.next_segment += 1;
                self.segments.insert(id, Segment::default());
            }
        }
        // Tombstone records are dead weight the moment the index carries
        // the counter, so count them toward the compaction trigger too.
        if self.dead_bytes >= self.config.compact_min_dead_bytes
            && (self.dead_bytes as f64)
                >= self.config.compact_dead_ratio * (self.total_bytes as f64)
        {
            self.compact();
        }
    }

    /// Rewrites every live record into fresh segments, dropping dead
    /// records and tombstone records (their version counters live on in
    /// the index). Deterministic: rewrite order is index order.
    fn compact(&mut self) {
        let old_segments = std::mem::take(&mut self.segments);
        self.total_bytes = 0;
        self.dead_bytes = 0;
        // Collect (namespace, key, loc) of live entries in index order.
        let live: Vec<(String, String, Loc)> = self
            .index
            .iter()
            .flat_map(|(ns, keys)| {
                keys.iter()
                    .filter_map(|(k, e)| e.loc.map(|loc| (ns.clone(), k.clone(), loc)))
            })
            .collect();
        for (ns, key, loc) in live {
            let record = old_segments[&loc.segment].records[loc.record].clone();
            let cost = record.cost();
            let id = match self.segments.last_key_value() {
                Some((&id, seg)) if seg.bytes + cost <= self.config.segment_target_bytes => id,
                _ => {
                    let id = self.next_segment;
                    self.next_segment += 1;
                    self.segments.insert(id, Segment::default());
                    id
                }
            };
            let seg = self.segments.get_mut(&id).expect("fresh segment exists");
            seg.records.push(record);
            seg.bytes += cost;
            self.total_bytes += cost;
            let new_loc = Loc {
                segment: id,
                record: seg.records.len() - 1,
            };
            self.index
                .get_mut(&ns)
                .and_then(|m| m.get_mut(&key))
                .expect("live entry still indexed")
                .loc = Some(new_loc);
        }
        self.compactions += 1;
    }

    /// Rebuilds a `namespace → key → (version, live value)` view by
    /// replaying every segment in id/record order — the recovery path a
    /// real log-structured store would run at startup. The replayed view
    /// must agree with the in-memory index on every *live* key; version
    /// counters of keys whose tombstone records were dropped by compaction
    /// are recovered from the index checkpoint, which is why the index —
    /// not the log — is the authority for version continuity.
    pub fn replay(&self) -> BTreeMap<String, BTreeMap<String, (u64, Option<Value>)>> {
        let mut view: BTreeMap<String, BTreeMap<String, (u64, Option<Value>)>> = BTreeMap::new();
        for seg in self.segments.values() {
            for record in &seg.records {
                match record {
                    Record::Put {
                        namespace,
                        key,
                        version,
                        value,
                    } => {
                        view.entry(namespace.clone())
                            .or_default()
                            .insert(key.clone(), (*version, Some(value.clone())));
                    }
                    Record::Tombstone {
                        namespace,
                        key,
                        version,
                    } => {
                        view.entry(namespace.clone())
                            .or_default()
                            .insert(key.clone(), (*version, None));
                    }
                }
            }
        }
        view
    }

    fn insert_one(&mut self, namespace: &str, key: &str, value: Value) -> u64 {
        let prior = self.entry(namespace, key).copied();
        let version = match prior {
            Some(e) => e.version + 1,
            None => 1,
        };
        if let Some(IndexEntry { loc: Some(loc), .. }) = prior {
            self.kill(loc);
        }
        let loc = self.append(Record::Put {
            namespace: namespace.to_owned(),
            key: key.to_owned(),
            version,
            value,
        });
        self.index.entry(namespace.to_owned()).or_default().insert(
            key.to_owned(),
            IndexEntry {
                version,
                loc: Some(loc),
            },
        );
        version
    }
}

impl StoreBackend for LogBackend {
    fn name(&self) -> &'static str {
        "log"
    }

    fn get(&self, namespace: &str, key: &str) -> Option<Versioned> {
        self.entry(namespace, key).and_then(|e| {
            e.loc.map(|loc| Versioned {
                version: e.version,
                value: self.value_at(loc).clone(),
            })
        })
    }

    fn key_version(&self, namespace: &str, key: &str) -> KeyVersion {
        match self.entry(namespace, key) {
            None => KeyVersion::Absent,
            Some(IndexEntry {
                version,
                loc: Some(_),
            }) => KeyVersion::Live(*version),
            Some(IndexEntry { version, loc: None }) => KeyVersion::Tombstone(*version),
        }
    }

    fn identical_live(&self, namespace: &str, key: &str, value: &Value) -> Option<u64> {
        self.entry(namespace, key).and_then(|e| {
            e.loc
                .filter(|&loc| crate::codec::codec_eq(self.value_at(loc), value))
                .map(|_| e.version)
        })
    }

    fn insert(&mut self, namespace: &str, key: &str, value: Value) -> u64 {
        let version = self.insert_one(namespace, key, value);
        self.finish_commit();
        version
    }

    fn insert_many(&mut self, namespace: &str, entries: &[(&str, &Value)]) {
        // Group commit: every record of the batch lands in the log before
        // the single roll/compact decision.
        for (key, value) in entries {
            self.insert_one(namespace, key, (*value).clone());
        }
        self.group_commits += 1;
        self.finish_commit();
    }

    fn remove(&mut self, namespace: &str, key: &str) -> bool {
        let Some(&IndexEntry {
            version,
            loc: Some(loc),
        }) = self.entry(namespace, key)
        else {
            return false;
        };
        self.kill(loc);
        let t = self.append(Record::Tombstone {
            namespace: namespace.to_owned(),
            key: key.to_owned(),
            version,
        });
        // The tombstone record is dead on arrival for compaction purposes:
        // the index carries the counter from here on.
        self.dead_bytes += self.record_at(t).cost();
        self.index
            .get_mut(namespace)
            .and_then(|m| m.get_mut(key))
            .expect("entry just read")
            .loc = None;
        self.finish_commit();
        true
    }

    fn remove_namespace(&mut self, namespace: &str) -> usize {
        let live: Vec<String> = self.list_keys(namespace);
        for key in &live {
            let &IndexEntry { version, loc } =
                self.entry(namespace, key).expect("live key indexed");
            let loc = loc.expect("list_keys returns live keys only");
            self.kill(loc);
            let t = self.append(Record::Tombstone {
                namespace: namespace.to_owned(),
                key: key.clone(),
                version,
            });
            self.dead_bytes += self.record_at(t).cost();
            self.index
                .get_mut(namespace)
                .and_then(|m| m.get_mut(key))
                .expect("entry just read")
                .loc = None;
        }
        // A namespace wipe is one logical commit, like a batch.
        self.finish_commit();
        live.len()
    }

    fn read_namespace(&self, namespace: &str) -> Vec<(String, Versioned)> {
        self.index
            .get(namespace)
            .map(|keys| {
                keys.iter()
                    .filter_map(|(k, e)| {
                        e.loc.map(|loc| {
                            (
                                k.clone(),
                                Versioned {
                                    version: e.version,
                                    value: self.value_at(loc).clone(),
                                },
                            )
                        })
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    fn list_keys(&self, namespace: &str) -> Vec<String> {
        self.index
            .get(namespace)
            .map(|keys| {
                keys.iter()
                    .filter(|(_, e)| e.loc.is_some())
                    .map(|(k, _)| k.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    fn list_namespaces(&self) -> Vec<String> {
        self.index
            .iter()
            .filter(|(_, keys)| keys.values().any(|e| e.loc.is_some()))
            .map(|(ns, _)| ns.clone())
            .collect()
    }

    fn namespace_bytes(&self, namespace: &str) -> u64 {
        self.index
            .get(namespace)
            .map(|keys| {
                keys.values()
                    .filter_map(|e| e.loc)
                    .map(|loc| self.value_at(loc).encoded_len() as u64)
                    .sum()
            })
            .unwrap_or(0)
    }

    fn backend_stats(&self) -> BackendStats {
        BackendStats {
            live_bytes: self
                .index
                .values()
                .flat_map(|keys| keys.values())
                .filter_map(|e| e.loc)
                .map(|loc| self.value_at(loc).encoded_len() as u64)
                .sum(),
            dead_bytes: self.dead_bytes,
            segments: self.segments.len() as u64,
            sealed_segments: self.sealed_segments,
            compactions: self.compactions,
            group_commits: self.group_commits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize, fill: u8) -> Value {
        Value::Bytes(vec![fill; n])
    }

    #[test]
    fn overwrites_append_and_index_repoints() {
        let mut b = LogBackend::with_config(LogConfig::tiny());
        assert_eq!(b.insert("ns", "k", Value::Int(1)), 1);
        assert_eq!(b.insert("ns", "k", Value::Int(2)), 2);
        assert_eq!(
            b.get("ns", "k"),
            Some(Versioned {
                version: 2,
                value: Value::Int(2)
            })
        );
        let s = b.backend_stats();
        assert!(s.dead_bytes > 0, "superseded record counted dead");
    }

    #[test]
    fn segments_seal_at_the_target() {
        let mut b = LogBackend::with_config(LogConfig::tiny());
        for i in 0..20 {
            b.insert("ns", &format!("k{i}"), blob(128, i as u8));
        }
        assert!(
            b.backend_stats().sealed_segments >= 2,
            "2.5 KiB of unique records over a 512 B target must seal: {:?}",
            b.backend_stats()
        );
    }

    #[test]
    fn compaction_reclaims_dead_bytes_and_preserves_state() {
        let mut b = LogBackend::with_config(LogConfig::tiny());
        for round in 0..30 {
            for k in 0..4 {
                b.insert("ns", &format!("k{k}"), blob(64, round));
            }
        }
        let s = b.backend_stats();
        assert!(s.compactions > 0, "29 dead generations force compaction");
        assert!(
            s.dead_bytes < 2048,
            "compaction keeps dead bytes bounded: {s:?}"
        );
        for k in 0..4 {
            let v = b
                .get("ns", &format!("k{k}"))
                .expect("live after compaction");
            assert_eq!(v.version, 30);
            assert_eq!(v.value, blob(64, 29));
        }
    }

    #[test]
    fn tombstone_counters_survive_compaction() {
        let mut b = LogBackend::with_config(LogConfig::tiny());
        for i in 0..8 {
            b.insert("ns", &format!("k{i}"), blob(96, 1));
        }
        assert_eq!(b.insert("ns", "gone", Value::Int(7)), 1);
        assert!(b.remove("ns", "gone"));
        // Churn until a compaction has certainly run.
        for round in 2..40u8 {
            for i in 0..8 {
                b.insert("ns", &format!("k{i}"), blob(96, round));
            }
        }
        assert!(b.backend_stats().compactions > 0);
        assert_eq!(b.key_version("ns", "gone"), KeyVersion::Tombstone(1));
        assert_eq!(
            b.insert("ns", "gone", Value::Int(7)),
            2,
            "counter continued"
        );
    }

    #[test]
    fn group_commit_counts_batches_not_entries() {
        let mut b = LogBackend::new();
        let rows: Vec<(String, Value)> = (0..24)
            .map(|i| (format!("bundle/{i}"), blob(384, i as u8)))
            .collect();
        let refs: Vec<(&str, &Value)> = rows.iter().map(|(k, v)| (k.as_str(), v)).collect();
        b.insert_many("fw", &refs);
        b.insert_many("fw", &refs[..2]);
        let s = b.backend_stats();
        assert_eq!(s.group_commits, 2);
        assert_eq!(b.list_keys("fw").len(), 24);
        assert_eq!(b.get("fw", "bundle/1").unwrap().version, 2);
    }

    /// The recovery property: replaying the raw segments reproduces every
    /// live key's version and value exactly, before and after compaction.
    #[test]
    fn replay_agrees_with_the_index_on_live_keys() {
        let mut b = LogBackend::with_config(LogConfig::tiny());
        for round in 0..20u8 {
            for k in 0..4 {
                b.insert("ns", &format!("k{k}"), blob(64, round));
            }
        }
        b.insert("ns", "gone", Value::Int(1));
        assert!(b.remove("ns", "gone"));
        let check = |b: &LogBackend| {
            let view = b.replay();
            for key in b.list_keys("ns") {
                let got = b.get("ns", &key).expect("live");
                let (v, val) = view["ns"][&key].clone();
                assert_eq!(v, got.version, "replayed version for {key}");
                assert_eq!(val.as_ref(), Some(&got.value), "replayed value for {key}");
            }
        };
        check(&b);
        // Before compaction the tombstone record itself is still replayable.
        if b.backend_stats().compactions == 0 {
            assert_eq!(b.replay()["ns"]["gone"], (1, None));
        }
        // Churn past a compaction and re-check.
        for round in 20..60u8 {
            for k in 0..4 {
                b.insert("ns", &format!("k{k}"), blob(64, round));
            }
        }
        assert!(b.backend_stats().compactions > 0);
        check(&b);
    }

    #[test]
    fn duplicate_keys_in_a_batch_bump_twice() {
        let mut b = LogBackend::new();
        let v1 = Value::Int(1);
        let v2 = Value::Int(2);
        b.insert_many("ns", &[("k", &v1), ("k", &v2)]);
        let got = b.get("ns", "k").unwrap();
        assert_eq!(got.version, 2);
        assert_eq!(got.value, Value::Int(2));
    }
}
