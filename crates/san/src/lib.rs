//! # dosgi-san — simulated SAN / distributed filesystem
//!
//! Section 3.2 of the paper makes an explicit substrate assumption:
//!
//! > *"We assume a underlying SAN or distributed filesystem to ensure that
//! > data written by each node is accessible globally."*
//!
//! This crate is that substrate. [`SharedStore`] is a cluster-wide,
//! namespace-partitioned, versioned object store whose committed writes
//! survive any node crash (crash-stop nodes lose only volatile state — the
//! store itself is the durable tier, like a SAN behind the hosts).
//!
//! On top of it the OSGi layer persists:
//!
//! * the **framework state** the OSGi specification requires to survive
//!   reboots (installed bundles + lifecycle states) — this is what makes the
//!   paper's migration "comparable to a normal startup, probably less";
//! * each bundle's **persistent storage area** (the OSGi `getDataFile`
//!   analogue);
//! * the migration module's **instance registry** metadata.
//!
//! Values are a self-describing [`Value`] tree with a compact binary
//! encoding, so the experiment harness can report true on-disk byte sizes.
//!
//! # Example
//!
//! ```
//! use dosgi_san::{SharedStore, Value};
//!
//! let store = SharedStore::new();
//! store.put("frameworks/n0", "bundle:logsvc", Value::from("ACTIVE")).unwrap();
//! assert_eq!(
//!     store.get("frameworks/n0", "bundle:logsvc"),
//!     Ok(Some(Value::from("ACTIVE")))
//! );
//! // A different node reads the same data: the store is cluster-global.
//! assert_eq!(store.list_keys("frameworks/n0"), vec!["bundle:logsvc"]);
//! ```
//!
//! Data-plane operations return `Result` because the store is *fallible*:
//! the [`fault`] module injects seeded transient I/O errors, brown-out
//! windows, and torn batch writes. With no [`FaultPlan`] attached (the
//! default) they never fail for fault reasons.

pub mod backend;
pub mod codec;
pub mod conformance;
mod error;
pub mod fault;
mod journal;
mod log;
mod profile;
mod store;
mod value;

pub use backend::{BackendKind, BackendStats, KeyVersion, MapBackend, StoreBackend};
pub use error::StoreError;
pub use fault::{FaultInjector, FaultPlan, RetryPolicy};
pub use journal::{Journal, JournalEntry, JournalOp};
pub use log::{LogBackend, LogConfig};
pub use profile::SanProfile;
pub use store::{SharedStore, StoreStats, Versioned};
pub use value::Value;
