//! Backend conformance suite: deterministic op scripts → textual dumps.
//!
//! A [`Script`] is a pure-data sequence of store operations (including
//! fault-plan changes and clock advances). [`run_script`] executes it on a
//! fresh [`SharedStore`] over a chosen [`BackendKind`] and renders every
//! observable effect — per-op results, the final store dump with its
//! version vector, and the final [`StoreStats`](crate::StoreStats) — into
//! one canonical string.
//!
//! That string is the **backend contract**:
//!
//! * The [`builtin_scripts`] renderings are committed as golden fixtures
//!   under `results/san_fixtures/` (one file per script, backend-agnostic
//!   by definition) and compared byte-for-byte by the conformance tests
//!   and the `san_conformance` check-suite step. `SAN_FIXTURE_WRITE=1`
//!   regenerates them, turning an intentional semantic change into a
//!   reviewed fixture diff.
//! * [`random_script`] generates seeded arbitrary scripts for the
//!   cross-backend equivalence property test: the same op+fault stream
//!   must render identically on every registered backend.
//!
//! A third backend joins the project by implementing
//! [`StoreBackend`](crate::StoreBackend), registering in
//! [`BackendKind::all`], and passing this suite unchanged — see
//! DESIGN.md §6e.

use crate::backend::BackendKind;
use crate::fault::FaultPlan;
use crate::{SharedStore, StoreError, Value};
use dosgi_net::SimTime;
use dosgi_testkit::TestRng;
use std::fmt::Write as _;

/// Workspace-relative directory holding the committed fixtures.
pub const FIXTURE_DIR: &str = "results/san_fixtures";

/// Environment variable that switches golden comparison to regeneration.
pub const WRITE_ENV: &str = "SAN_FIXTURE_WRITE";

/// One store operation in a conformance script. Pure data: a script plus a
/// backend kind fully determines the rendered outcome.
#[derive(Debug, Clone)]
pub enum ScriptOp {
    /// `SharedStore::put`.
    Put {
        /// Target namespace.
        namespace: String,
        /// Target key.
        key: String,
        /// Value to write.
        value: Value,
    },
    /// `SharedStore::put_many` (the group-commit batch path).
    PutMany {
        /// Target namespace.
        namespace: String,
        /// Batch entries in order.
        entries: Vec<(String, Value)>,
    },
    /// `SharedStore::get_versioned`.
    Get {
        /// Target namespace.
        namespace: String,
        /// Target key.
        key: String,
    },
    /// `SharedStore::cas`.
    Cas {
        /// Target namespace.
        namespace: String,
        /// Target key.
        key: String,
        /// Version the caller expects (0 = must be absent).
        expected: u64,
        /// Replacement value.
        value: Value,
    },
    /// `SharedStore::delete`.
    Delete {
        /// Target namespace.
        namespace: String,
        /// Target key.
        key: String,
    },
    /// `SharedStore::delete_namespace`.
    DeleteNamespace {
        /// Namespace to drop.
        namespace: String,
    },
    /// `SharedStore::read_namespace`, rendering every pair read.
    ReadNamespace {
        /// Namespace to read.
        namespace: String,
    },
    /// Installs a flaky/torn fault plan (seeded, deterministic).
    Flaky {
        /// Transient I/O error probability, in permille (0–1000).
        io_permille: u32,
        /// Torn-batch probability, in permille (0–1000).
        torn_permille: u32,
        /// Fault RNG seed.
        seed: u64,
    },
    /// Installs a single brown-out window `[from_ms, until_ms)`.
    Brownout {
        /// Window start, milliseconds of sim time.
        from_ms: u64,
        /// Window end (healed at this instant), milliseconds.
        until_ms: u64,
    },
    /// Advances the store's fault clock.
    SetNow {
        /// New clock reading, milliseconds of sim time.
        ms: u64,
    },
    /// Removes any fault plan.
    ClearFaults,
    /// Zeroes the I/O counters (scripts use it to scope the stats section
    /// to the phase under test).
    ResetStats,
}

/// A named, deterministic op sequence whose rendering is the conformance
/// contract.
#[derive(Debug, Clone)]
pub struct Script {
    /// Fixture base name (`results/san_fixtures/<name>.txt`).
    pub name: String,
    /// The operations, applied in order.
    pub ops: Vec<ScriptOp>,
}

impl Script {
    /// Workspace-relative path of this script's committed fixture.
    pub fn fixture_rel_path(&self) -> String {
        format!("{FIXTURE_DIR}/{}.txt", self.name)
    }
}

/// Renders a value compactly and deterministically (floats by bit pattern,
/// bytes as hex) for fixture output.
pub fn render_value(v: &Value) -> String {
    match v {
        Value::Null => "null".to_owned(),
        Value::Bool(b) => format!("bool({b})"),
        Value::Int(i) => format!("int({i})"),
        Value::Float(f) => format!("float(0x{:016x})", f.to_bits()),
        Value::Str(s) => format!("str({s:?})"),
        Value::Bytes(b) => {
            let hex: String = b.iter().map(|x| format!("{x:02x}")).collect();
            format!("bytes({hex})")
        }
        Value::List(l) => {
            let items: Vec<String> = l.iter().map(render_value).collect();
            format!("list[{}]", items.join(", "))
        }
        Value::Map(m) => {
            let items: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("{k}={}", render_value(v)))
                .collect();
            format!("map{{{}}}", items.join(", "))
        }
    }
}

fn render_err(e: &StoreError) -> String {
    format!("err[{}: {e}]", e.kind())
}

/// Executes `script` on a fresh store over `kind` and renders the full
/// observable surface. Two backends conform iff this string is identical
/// for every script.
pub fn run_script(script: &Script, kind: BackendKind) -> String {
    let store = SharedStore::with_kind(kind);
    let mut out = String::new();
    let _ = writeln!(out, "# san conformance fixture: {}", script.name);
    let _ = writeln!(
        out,
        "# ops: {} (backend-agnostic by contract)",
        script.ops.len()
    );
    for (i, op) in script.ops.iter().enumerate() {
        let line = apply_op(&store, op);
        let _ = writeln!(out, "op {i:03} {line}");
    }
    let _ = writeln!(out, "-- store --");
    for (ns, rows) in store.dump() {
        for (key, v) in rows {
            let _ = writeln!(out, "{ns}/{key} v={} {}", v.version, render_value(&v.value));
        }
    }
    let _ = writeln!(out, "-- stats --");
    let st = store.stats();
    let _ = writeln!(out, "reads={}", st.reads);
    let _ = writeln!(out, "writes={}", st.writes);
    let _ = writeln!(out, "bytes_written={}", st.bytes_written);
    let _ = writeln!(out, "bytes_read={}", st.bytes_read);
    let _ = writeln!(out, "faults={}", st.faults);
    let _ = writeln!(out, "writes_skipped={}", st.writes_skipped);
    let _ = writeln!(out, "bytes_skipped={}", st.bytes_skipped);
    out
}

fn apply_op(store: &SharedStore, op: &ScriptOp) -> String {
    match op {
        ScriptOp::Put {
            namespace,
            key,
            value,
        } => {
            let desc = format!("put {namespace}/{key} {}", render_value(value));
            match store.put(namespace, key, value.clone()) {
                Ok(v) => format!("{desc} -> v{v}"),
                Err(e) => format!("{desc} -> {}", render_err(&e)),
            }
        }
        ScriptOp::PutMany { namespace, entries } => {
            let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
            let desc = format!("put_many {namespace} [{}]", keys.join(","));
            match store.put_many(namespace, entries) {
                Ok(n) => format!("{desc} -> ok({n})"),
                Err(e) => format!("{desc} -> {}", render_err(&e)),
            }
        }
        ScriptOp::Get { namespace, key } => {
            let desc = format!("get {namespace}/{key}");
            match store.get_versioned(namespace, key) {
                Ok(Some(v)) => format!("{desc} -> {} @v{}", render_value(&v.value), v.version),
                Ok(None) => format!("{desc} -> none"),
                Err(e) => format!("{desc} -> {}", render_err(&e)),
            }
        }
        ScriptOp::Cas {
            namespace,
            key,
            expected,
            value,
        } => {
            let desc = format!(
                "cas {namespace}/{key} expect=v{expected} {}",
                render_value(value)
            );
            match store.cas(namespace, key, *expected, value.clone()) {
                Ok(v) => format!("{desc} -> v{v}"),
                Err(e) => format!("{desc} -> {}", render_err(&e)),
            }
        }
        ScriptOp::Delete { namespace, key } => {
            let desc = format!("delete {namespace}/{key}");
            match store.delete(namespace, key) {
                Ok(()) => format!("{desc} -> ok"),
                Err(e) => format!("{desc} -> {}", render_err(&e)),
            }
        }
        ScriptOp::DeleteNamespace { namespace } => {
            let desc = format!("delete_namespace {namespace}");
            match store.delete_namespace(namespace) {
                Ok(n) => format!("{desc} -> removed({n})"),
                Err(e) => format!("{desc} -> {}", render_err(&e)),
            }
        }
        ScriptOp::ReadNamespace { namespace } => {
            let desc = format!("read_namespace {namespace}");
            match store.read_namespace(namespace) {
                Ok(pairs) => {
                    let rendered: Vec<String> = pairs
                        .iter()
                        .map(|(k, v)| format!("{k}={}", render_value(v)))
                        .collect();
                    format!("{desc} -> [{}]", rendered.join(", "))
                }
                Err(e) => format!("{desc} -> {}", render_err(&e)),
            }
        }
        ScriptOp::Flaky {
            io_permille,
            torn_permille,
            seed,
        } => {
            store.set_fault_plan(
                FaultPlan::flaky(f64::from(*io_permille) / 1000.0, *seed)
                    .with_torn_writes(f64::from(*torn_permille) / 1000.0),
            );
            format!("flaky io={io_permille}o/oo torn={torn_permille}o/oo seed={seed} -> ok")
        }
        ScriptOp::Brownout { from_ms, until_ms } => {
            store.set_fault_plan(FaultPlan::none().with_brownout(
                SimTime::from_millis(*from_ms),
                SimTime::from_millis(*until_ms),
            ));
            format!("brownout [{from_ms}ms, {until_ms}ms) -> ok")
        }
        ScriptOp::SetNow { ms } => {
            store.set_now(SimTime::from_millis(*ms));
            format!("set_now {ms}ms -> ok")
        }
        ScriptOp::ClearFaults => {
            store.clear_faults();
            "clear_faults -> ok".to_owned()
        }
        ScriptOp::ResetStats => {
            store.reset_stats();
            "reset_stats -> ok".to_owned()
        }
    }
}

fn put(ns: &str, key: &str, value: Value) -> ScriptOp {
    ScriptOp::Put {
        namespace: ns.into(),
        key: key.into(),
        value,
    }
}

fn get(ns: &str, key: &str) -> ScriptOp {
    ScriptOp::Get {
        namespace: ns.into(),
        key: key.into(),
    }
}

fn delete(ns: &str, key: &str) -> ScriptOp {
    ScriptOp::Delete {
        namespace: ns.into(),
        key: key.into(),
    }
}

fn cas(ns: &str, key: &str, expected: u64, value: Value) -> ScriptOp {
    ScriptOp::Cas {
        namespace: ns.into(),
        key: key.into(),
        expected,
        value,
    }
}

/// The committed fixture set. Each script pins one semantic family; the
/// union is the executable specification of the store contract.
pub fn builtin_scripts() -> Vec<Script> {
    vec![
        basic_crud(),
        versioning_tombstones(),
        change_detection(),
        faults(),
        batch_rows(),
    ]
}

/// Looks up a builtin script by fixture name.
pub fn builtin_script(name: &str) -> Option<Script> {
    builtin_scripts().into_iter().find(|s| s.name == name)
}

/// Create/read/update/delete, namespace listing and the not-found surface.
fn basic_crud() -> Script {
    Script {
        name: "basic_crud".into(),
        ops: vec![
            get("fw/n0", "missing"),
            put("fw/n0", "bundle:log", Value::Str("ACTIVE".into())),
            put("fw/n0", "bundle:http", Value::Str("RESOLVED".into())),
            put("fw/n1", "bundle:log", Value::Str("INSTALLED".into())),
            get("fw/n0", "bundle:log"),
            put("fw/n0", "bundle:log", Value::Str("STOPPED".into())),
            get("fw/n0", "bundle:log"),
            ScriptOp::ReadNamespace {
                namespace: "fw/n0".into(),
            },
            delete("fw/n0", "bundle:http"),
            get("fw/n0", "bundle:http"),
            delete("fw/n0", "bundle:http"), // not found
            ScriptOp::DeleteNamespace {
                namespace: "fw/n1".into(),
            },
            ScriptOp::DeleteNamespace {
                namespace: "fw/n1".into(), // already empty
            },
            ScriptOp::ReadNamespace {
                namespace: "fw/n1".into(),
            },
            put(
                "inst/7/data",
                "rows",
                Value::List(vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
            ),
            get("inst/7/data", "rows"),
        ],
    }
}

/// The version counter contract: monotonic per key, survives deletion
/// (tombstones), continues across namespace drops, and gates `cas`.
fn versioning_tombstones() -> Script {
    Script {
        name: "versioning_tombstones".into(),
        ops: vec![
            put("ns", "k", Value::Int(1)),
            put("ns", "k", Value::Int(2)),
            delete("ns", "k"),
            get("ns", "k"),
            // Identical re-put after delete MUST bump the version (the
            // stale-reader regression this suite pins).
            put("ns", "k", Value::Int(2)),
            get("ns", "k"),
            // cas sees a tombstoned key as absent but grants a version that
            // continues the counter.
            delete("ns", "k"),
            cas("ns", "k", 3, Value::Int(9)), // conflict: found=0
            cas("ns", "k", 0, Value::Int(9)), // create-if-absent -> v4
            cas("ns", "k", 4, Value::Int(10)),
            cas("ns", "k", 4, Value::Int(11)), // stale expect -> conflict
            // Namespace-wide deletes tombstone every key.
            put("area", "a", Value::Int(1)),
            put("area", "b", Value::Int(2)),
            put("area", "b", Value::Int(3)),
            ScriptOp::DeleteNamespace {
                namespace: "area".into(),
            },
            put("area", "a", Value::Int(1)), // was v1 -> now v2
            put("area", "b", Value::Int(3)), // was v2 -> now v3
            ScriptOp::ReadNamespace {
                namespace: "area".into(),
            },
        ],
    }
}

/// Byte-identity change detection: skipped writes, float bit-pattern
/// equality, and batch-local comparison for duplicate keys.
fn change_detection() -> Script {
    Script {
        name: "change_detection".into(),
        ops: vec![
            put("cfg", "k", Value::Str("same".into())),
            put("cfg", "k", Value::Str("same".into())), // identical: skip
            put("cfg", "k", Value::Str("new".into())),  // bump
            put("cfg", "f", Value::Float(0.0)),
            put("cfg", "f", Value::Float(-0.0)), // PartialEq-equal, bytes differ: write
            put("cfg", "n", Value::Float(f64::NAN)),
            put("cfg", "n", Value::Float(f64::NAN)), // bit-identical NaN: skip
            ScriptOp::PutMany {
                namespace: "cfg".into(),
                entries: vec![
                    ("k".into(), Value::Str("new".into())), // identical: skip
                    ("p".into(), Value::Int(1)),
                    ("p".into(), Value::Int(1)), // dup identical within batch: skip
                    ("q".into(), Value::Int(1)),
                    ("q".into(), Value::Int(2)), // dup changed within batch: bump twice
                ],
            },
            get("cfg", "p"),
            get("cfg", "q"),
        ],
    }
}

/// The injected-fault surface: deterministic flaky I/O, torn batches with
/// prefix persistence and idempotent rewrite, brown-out windows healing on
/// the clock.
fn faults() -> Script {
    let batch: Vec<(String, Value)> = (0..6)
        .map(|i| (format!("b{i}"), Value::Int(100 + i)))
        .collect();
    let mut ops = vec![ScriptOp::Flaky {
        io_permille: 350,
        torn_permille: 0,
        seed: 1101,
    }];
    // A run of puts under flaky I/O: the pass/fail pattern is pinned by the
    // fixture, so both the injector stream and its position in the wrapper
    // (fault roll before change detection) are part of the contract.
    for i in 0..12 {
        ops.push(put("flaky", &format!("k{i}"), Value::Int(i)));
    }
    ops.extend([
        ScriptOp::ClearFaults,
        ScriptOp::ReadNamespace {
            namespace: "flaky".into(),
        },
        // Torn batch at rate 1.0: a strict prefix lands, rewrite recovers.
        ScriptOp::Flaky {
            io_permille: 0,
            torn_permille: 1000,
            seed: 7,
        },
        ScriptOp::PutMany {
            namespace: "torn".into(),
            entries: batch.clone(),
        },
        ScriptOp::ReadNamespace {
            namespace: "torn".into(),
        },
        ScriptOp::ClearFaults,
        ScriptOp::PutMany {
            namespace: "torn".into(),
            entries: batch,
        },
        ScriptOp::ReadNamespace {
            namespace: "torn".into(),
        },
        // Brown-out: everything fails inside the window, heals at its end.
        ScriptOp::Brownout {
            from_ms: 0,
            until_ms: 50,
        },
        put("torn", "b0", Value::Int(999)),
        get("torn", "b0"),
        ScriptOp::SetNow { ms: 50 },
        get("torn", "b0"),
        ScriptOp::ClearFaults,
    ]);
    Script {
        name: "faults".into(),
        ops,
    }
}

/// The PR 4 per-bundle row workload shape: ~24-row batches of a few hundred
/// bytes each, rewritten with mostly-identical content (group commit +
/// change detection is the hot path the log backend's batching is sized to).
fn batch_rows() -> Script {
    let mut rng = TestRng::new(0x0B07_4005);
    let row = |rng: &mut TestRng, rev: i64| {
        let blob: Vec<u8> = (0..360).map(|_| rng.next_u64() as u8).collect();
        Value::map()
            .with("rev", rev)
            .with("blob", Value::Bytes(blob))
    };
    let rows: Vec<(String, Value)> = (0..24)
        .map(|i| (format!("bundle{i:02}"), row(&mut rng, 1)))
        .collect();
    // Second generation: 3 of 24 rows actually change.
    let mut rows2 = rows.clone();
    for &i in &[3usize, 11, 20] {
        rows2[i].1 = row(&mut rng, 2);
    }
    Script {
        name: "batch_rows".into(),
        ops: vec![
            ScriptOp::PutMany {
                namespace: "inst/3/rows".into(),
                entries: rows.clone(),
            },
            ScriptOp::ResetStats,
            ScriptOp::PutMany {
                namespace: "inst/3/rows".into(),
                entries: rows2,
            },
            get("inst/3/rows", "bundle03"),
            get("inst/3/rows", "bundle04"),
            ScriptOp::DeleteNamespace {
                namespace: "inst/3/rows".into(),
            },
            ScriptOp::PutMany {
                namespace: "inst/3/rows".into(),
                entries: rows,
            },
            get("inst/3/rows", "bundle00"),
        ],
    }
}

/// A seeded arbitrary script for the cross-backend equivalence property
/// test: random ops over a small key space, interleaved with fault-plan
/// swaps, clock advances and stat resets. Same seed → same script.
pub fn random_script(rng: &mut TestRng) -> Script {
    let namespaces = ["a", "b", "a/sub"];
    let keys = ["k0", "k1", "k2", "k3", "k4"];
    let pick_value = |rng: &mut TestRng| -> Value {
        match rng.u64_below(5) {
            0 => Value::Int(rng.u64_below(4) as i64),
            1 => Value::Str(format!("s{}", rng.u64_below(3))),
            2 => Value::Bytes(vec![rng.next_u64() as u8; rng.usize_in(0, 12)]),
            3 => Value::Float(f64::from_bits(0x3ff0_0000_0000_0000 + rng.u64_below(2))),
            _ => Value::List(vec![Value::Int(rng.u64_below(3) as i64)]),
        }
    };
    let n_ops = rng.usize_in(10, 60);
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let ns = namespaces[rng.usize_in(0, namespaces.len() - 1)];
        let key = keys[rng.usize_in(0, keys.len() - 1)];
        ops.push(match rng.u64_below(12) {
            0 | 1 => put(ns, key, pick_value(rng)),
            2 => get(ns, key),
            3 => delete(ns, key),
            4 => cas(ns, key, rng.u64_below(4), pick_value(rng)),
            5 => ScriptOp::DeleteNamespace {
                namespace: ns.into(),
            },
            6 => ScriptOp::ReadNamespace {
                namespace: ns.into(),
            },
            7 => {
                let n = rng.usize_in(1, 6);
                ScriptOp::PutMany {
                    namespace: ns.into(),
                    entries: (0..n)
                        .map(|_| {
                            (
                                keys[rng.usize_in(0, keys.len() - 1)].to_owned(),
                                pick_value(rng),
                            )
                        })
                        .collect(),
                }
            }
            8 => ScriptOp::Flaky {
                io_permille: rng.u64_below(500) as u32,
                torn_permille: rng.u64_below(700) as u32,
                seed: rng.next_u64(),
            },
            9 => ScriptOp::SetNow {
                ms: rng.u64_below(100),
            },
            10 => ScriptOp::ClearFaults,
            _ => ScriptOp::ResetStats,
        });
    }
    Script {
        name: "random".into(),
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_scripts_have_unique_names_and_fixture_paths() {
        let scripts = builtin_scripts();
        assert!(scripts.len() >= 5);
        let mut names: Vec<String> = scripts.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), scripts.len(), "duplicate fixture names");
        assert_eq!(
            builtin_script("basic_crud").unwrap().fixture_rel_path(),
            "results/san_fixtures/basic_crud.txt"
        );
        assert!(builtin_script("no_such_script").is_none());
    }

    #[test]
    fn run_script_is_deterministic_per_backend() {
        for kind in BackendKind::all() {
            for script in builtin_scripts() {
                assert_eq!(
                    run_script(&script, kind),
                    run_script(&script, kind),
                    "script {} not deterministic on {kind}",
                    script.name
                );
            }
        }
    }

    #[test]
    fn random_script_is_seed_deterministic() {
        let a = random_script(&mut TestRng::new(9));
        let b = random_script(&mut TestRng::new(9));
        assert_eq!(
            run_script(&a, BackendKind::Map),
            run_script(&b, BackendKind::Map)
        );
    }

    #[test]
    fn render_value_disambiguates_float_bit_patterns() {
        assert_ne!(
            render_value(&Value::Float(0.0)),
            render_value(&Value::Float(-0.0))
        );
        assert_eq!(render_value(&Value::Int(5)), "int(5)");
        assert_eq!(render_value(&Value::Bytes(vec![0xab, 0x01])), "bytes(ab01)");
    }
}
