//! Compact binary encoding for [`Value`] trees.
//!
//! The format is a simple tag-length-value scheme with varint lengths:
//!
//! ```text
//! 0x00            Null
//! 0x01 / 0x02     Bool false / true
//! 0x03 <zigzag>   Int
//! 0x04 <8 bytes>  Float (little-endian IEEE-754)
//! 0x05 <len> ..   Str (UTF-8)
//! 0x06 <len> ..   Bytes
//! 0x07 <count> .. List
//! 0x08 <count> (<keylen> key <value>)*   Map
//! ```
//!
//! The codec exists so the experiment harness can report *bytes written to
//! the SAN* for framework snapshots and bundle state — real state-transfer
//! cost, not a hand-wave.

use crate::Value;
use std::collections::BTreeMap;

const T_NULL: u8 = 0x00;
const T_FALSE: u8 = 0x01;
const T_TRUE: u8 = 0x02;
const T_INT: u8 = 0x03;
const T_FLOAT: u8 = 0x04;
const T_STR: u8 = 0x05;
const T_BYTES: u8 = 0x06;
const T_LIST: u8 = 0x07;
const T_MAP: u8 = 0x08;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos).ok_or("truncated varint")?;
        *pos += 1;
        v |= u64::from(b & 0x7f)
            .checked_shl(shift)
            .ok_or("varint overflow")?;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err("varint too long".to_owned());
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes `value` into its binary representation. Exactly pre-sized via
/// [`encoded_len`], so the buffer never regrows.
pub fn encode(value: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(value));
    write_value(&mut out, value);
    out
}

/// Encodes `value` by appending to `out` — the buffer-reuse hot path.
/// Reserves the exact encoded size up front ([`encoded_len`] is
/// allocation-free), so a caller looping over a batch with one scratch
/// buffer pays at most one growth for the largest value ever seen.
pub fn encode_into(value: &Value, out: &mut Vec<u8>) {
    out.reserve(encoded_len(value));
    write_value(out, value);
}

fn varint_len(v: u64) -> usize {
    let bits = (64 - v.leading_zeros()).max(1) as usize;
    bits.div_ceil(7)
}

/// Computes `encode(value).len()` without materializing the encoding.
///
/// Mirrors [`write_value`] case by case: one tag byte, varint-sized
/// lengths/counts, then payload bytes. Stats paths (`StoreStats`,
/// `namespace_bytes`) call this on every operation, so it must stay
/// allocation-free.
pub fn encoded_len(value: &Value) -> usize {
    match value {
        Value::Null | Value::Bool(_) => 1,
        Value::Int(i) => 1 + varint_len(zigzag(*i)),
        Value::Float(_) => 1 + 8,
        Value::Str(s) => 1 + varint_len(s.len() as u64) + s.len(),
        Value::Bytes(b) => 1 + varint_len(b.len() as u64) + b.len(),
        Value::List(l) => 1 + varint_len(l.len() as u64) + l.iter().map(encoded_len).sum::<usize>(),
        Value::Map(m) => {
            1 + varint_len(m.len() as u64)
                + m.iter()
                    .map(|(k, v)| varint_len(k.len() as u64) + k.len() + encoded_len(v))
                    .sum::<usize>()
        }
    }
}

/// Equality under the codec: true iff `encode(a) == encode(b)`, computed
/// without encoding either side. Differs from `PartialEq` only for floats,
/// which compare by bit pattern here (`-0.0 != 0.0`, `NaN == NaN` for the
/// same payload) because that is what the encoded bytes do.
pub fn codec_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Bytes(x), Value::Bytes(y)) => x == y,
        (Value::List(x), Value::List(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| codec_eq(a, b))
        }
        (Value::Map(x), Value::Map(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((ka, va), (kb, vb))| ka == kb && codec_eq(va, vb))
        }
        _ => false,
    }
}

fn write_value(out: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => out.push(T_NULL),
        Value::Bool(false) => out.push(T_FALSE),
        Value::Bool(true) => out.push(T_TRUE),
        Value::Int(i) => {
            out.push(T_INT);
            put_varint(out, zigzag(*i));
        }
        Value::Float(f) => {
            out.push(T_FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(T_STR);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(T_BYTES);
            put_varint(out, b.len() as u64);
            out.extend_from_slice(b);
        }
        Value::List(l) => {
            out.push(T_LIST);
            put_varint(out, l.len() as u64);
            for v in l {
                write_value(out, v);
            }
        }
        Value::Map(m) => {
            out.push(T_MAP);
            put_varint(out, m.len() as u64);
            for (k, v) in m {
                put_varint(out, k.len() as u64);
                out.extend_from_slice(k.as_bytes());
                write_value(out, v);
            }
        }
    }
}

/// Decodes a value; the entire input must be consumed.
///
/// # Errors
///
/// Returns a description of the malformation (truncation, bad tag, invalid
/// UTF-8, trailing garbage).
pub fn decode(bytes: &[u8]) -> Result<Value, String> {
    let mut pos = 0;
    let v = read_value(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(format!("trailing garbage at offset {pos}"));
    }
    Ok(v)
}

fn read_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let tag = *bytes.get(*pos).ok_or("truncated value")?;
    *pos += 1;
    match tag {
        T_NULL => Ok(Value::Null),
        T_FALSE => Ok(Value::Bool(false)),
        T_TRUE => Ok(Value::Bool(true)),
        T_INT => Ok(Value::Int(unzigzag(get_varint(bytes, pos)?))),
        T_FLOAT => {
            let end = *pos + 8;
            let slice = bytes.get(*pos..end).ok_or("truncated float")?;
            *pos = end;
            Ok(Value::Float(f64::from_le_bytes(
                slice.try_into().expect("8 bytes"),
            )))
        }
        T_STR => {
            let s = read_slice(bytes, pos)?;
            Ok(Value::Str(
                String::from_utf8(s.to_vec()).map_err(|e| e.to_string())?,
            ))
        }
        T_BYTES => Ok(Value::Bytes(read_slice(bytes, pos)?.to_vec())),
        T_LIST => {
            let n = get_varint(bytes, pos)? as usize;
            let mut l = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                l.push(read_value(bytes, pos)?);
            }
            Ok(Value::List(l))
        }
        T_MAP => {
            let n = get_varint(bytes, pos)? as usize;
            let mut m = BTreeMap::new();
            for _ in 0..n {
                let k = read_slice(bytes, pos)?;
                let k = String::from_utf8(k.to_vec()).map_err(|e| e.to_string())?;
                let v = read_value(bytes, pos)?;
                m.insert(k, v);
            }
            Ok(Value::Map(m))
        }
        other => Err(format!("unknown tag 0x{other:02x}")),
    }
}

fn read_slice<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8], String> {
    let len = get_varint(bytes, pos)? as usize;
    let end = pos.checked_add(len).ok_or("length overflow")?;
    let slice = bytes.get(*pos..end).ok_or("truncated payload")?;
    *pos = end;
    Ok(slice)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosgi_testkit::{prop, prop_verify, prop_verify_eq, Gen, TestRng};

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Float(3.25),
            Value::Str("hello".into()),
            Value::Str(String::new()),
            Value::Bytes(vec![0, 255, 128]),
        ] {
            assert_eq!(decode(&encode(&v)).unwrap(), v, "value {v:?}");
        }
    }

    #[test]
    fn nested_round_trip() {
        let v = Value::map()
            .with(
                "bundles",
                Value::List(vec![
                    Value::map().with("name", "logsvc").with("state", "ACTIVE"),
                    Value::map().with("name", "http").with("state", "RESOLVED"),
                ]),
            )
            .with("start_level", 5i64);
        assert_eq!(decode(&encode(&v)).unwrap(), v);
    }

    #[test]
    fn varint_boundaries() {
        for i in [0u64, 127, 128, 16383, 16384, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, i);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos).unwrap(), i);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn zigzag_round_trip() {
        for i in [0i64, 1, -1, i64::MAX, i64::MIN, 42, -42] {
            assert_eq!(unzigzag(zigzag(i)), i);
        }
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[0xff]).is_err());
        assert!(decode(&[T_STR, 5, b'a']).is_err()); // truncated string
        assert!(decode(&[T_FLOAT, 1, 2]).is_err()); // truncated float
        assert!(decode(&[T_NULL, T_NULL]).is_err()); // trailing garbage
        assert!(decode(&[T_STR, 1, 0xff]).is_err()); // invalid UTF-8
    }

    /// A random `Value` tree, depth-bounded like the old proptest
    /// strategy (leaves at depth 0; lists/maps of up to 8 children above).
    fn arb_value(rng: &mut TestRng, depth: u32) -> Value {
        let variants = if depth == 0 { 6 } else { 8 };
        match rng.u64_below(variants) {
            0 => Value::Null,
            1 => Value::Bool(rng.chance(0.5)),
            2 => Value::Int(rng.any_i64()),
            // Finite floats only: NaN breaks PartialEq round-trip comparison.
            3 => loop {
                let f = f64::from_bits(rng.next_u64());
                if f.is_finite() {
                    break Value::Float(f);
                }
            },
            4 => Value::Str(lowercase_key(rng, 0, 12)),
            5 => {
                let mut b = vec![0u8; rng.usize_in(0, 31)];
                rng.fill_bytes(&mut b);
                Value::Bytes(b)
            }
            6 => Value::List(
                (0..rng.usize_in(0, 7))
                    .map(|_| arb_value(rng, depth - 1))
                    .collect(),
            ),
            _ => Value::Map(
                (0..rng.usize_in(0, 7))
                    .map(|_| (lowercase_key(rng, 1, 8), arb_value(rng, depth - 1)))
                    .collect(),
            ),
        }
    }

    fn lowercase_key(rng: &mut TestRng, min: usize, max: usize) -> String {
        (0..rng.usize_in(min, max))
            .map(|_| (b'a' + rng.u64_below(26) as u8) as char)
            .collect()
    }

    fn value_gen() -> Gen<Value> {
        Gen::new(|rng| arb_value(rng, 3))
    }

    #[test]
    fn prop_round_trip() {
        prop::check("prop_round_trip", &value_gen(), |v| {
            let encoded = encode(v);
            prop_verify_eq!(&decode(&encoded).unwrap(), v);
            Ok(())
        });
    }

    #[test]
    fn prop_decode_never_panics() {
        let garbage = prop::vecs(prop::bytes(), 0, 255);
        prop::check("prop_decode_never_panics", &garbage, |bytes| {
            let _ = decode(bytes);
            Ok(())
        });
    }

    /// Robustness: every proper truncation of a valid encoding must decode
    /// to `Err` — a value either consumes its whole encoding or the decoder
    /// flags trailing garbage, so no prefix can parse cleanly.
    #[test]
    fn truncated_encodings_always_error() {
        let mut rng = TestRng::new(0xdead_beef);
        let gen = value_gen();
        let mut checked = 0u32;
        while checked < 1500 {
            let v = gen.sample(&mut rng);
            let encoded = encode(&v);
            if encoded.len() < 2 {
                continue;
            }
            // Every length from 0 to len-1, capped per value to spread the
            // budget across many shapes.
            for _ in 0..8 {
                let cut = rng.usize_in(0, encoded.len() - 1);
                let res = decode(&encoded[..cut]);
                assert!(
                    res.is_err(),
                    "truncation to {cut}/{} decoded to {res:?} for {v:?}",
                    encoded.len()
                );
                checked += 1;
            }
        }
    }

    /// Robustness: flipping any single bit of a valid encoding must never
    /// panic, and whatever still decodes must itself re-encode into a
    /// decodable (self-consistent) byte string.
    #[test]
    fn bit_flipped_encodings_never_panic() {
        let mut rng = TestRng::new(0xc0de_f1ae);
        let gen = value_gen();
        let mut mutations = 0u32;
        while mutations < 1500 {
            let v = gen.sample(&mut rng);
            let encoded = encode(&v);
            if encoded.is_empty() {
                continue;
            }
            for _ in 0..8 {
                let mut corrupt = encoded.clone();
                let byte = rng.usize_in(0, corrupt.len() - 1);
                let bit = rng.u64_below(8) as u8;
                corrupt[byte] ^= 1 << bit;
                if let Ok(decoded) = decode(&corrupt) {
                    let reencoded = encode(&decoded);
                    let roundtrip = decode(&reencoded)
                        .unwrap_or_else(|e| panic!("re-encode of {decoded:?} not decodable: {e}"));
                    // NaN floats are the one lawful PartialEq violation.
                    if !value_has_nan(&roundtrip) {
                        assert_eq!(roundtrip, decoded);
                    }
                }
                mutations += 1;
            }
        }
    }

    fn value_has_nan(v: &Value) -> bool {
        match v {
            Value::Float(f) => f.is_nan(),
            Value::List(l) => l.iter().any(value_has_nan),
            Value::Map(m) => m.values().any(value_has_nan),
            _ => false,
        }
    }

    /// The streaming size computation must agree with the real encoder on
    /// arbitrary value trees — `encoded_len` never allocates, so this is
    /// the only thing pinning it to `encode`.
    #[test]
    fn prop_encoded_len_matches_encode_len() {
        prop::check("prop_encoded_len_matches_encode_len", &value_gen(), |v| {
            prop_verify!(
                v.encoded_len() == encode(v).len(),
                "encoded_len {} != encode().len() {}",
                v.encoded_len(),
                encode(v).len()
            );
            Ok(())
        });
    }

    #[test]
    fn varint_len_matches_put_varint() {
        for v in [0u64, 1, 127, 128, 16383, 16384, (1 << 63) - 1, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            assert_eq!(varint_len(v), out.len(), "varint_len({v})");
        }
    }

    /// `codec_eq` must coincide exactly with encoded-byte equality,
    /// including the float cases where `PartialEq` disagrees.
    #[test]
    fn prop_codec_eq_matches_encoded_bytes() {
        let pair = Gen::new(|rng: &mut TestRng| {
            let a = arb_value(rng, 2);
            // Half the time compare against a copy, half against a fresh
            // tree, so both branches of the equivalence get real coverage.
            let b = if rng.chance(0.5) {
                a.clone()
            } else {
                arb_value(rng, 2)
            };
            (a, b)
        });
        prop::check("prop_codec_eq_matches_encoded_bytes", &pair, |(a, b)| {
            prop_verify_eq!(codec_eq(a, b), encode(a) == encode(b));
            Ok(())
        });
    }

    #[test]
    fn codec_eq_floats_by_bit_pattern() {
        assert!(!codec_eq(&Value::Float(0.0), &Value::Float(-0.0)));
        assert!(codec_eq(&Value::Float(f64::NAN), &Value::Float(f64::NAN)));
        assert!(codec_eq(&Value::Float(1.5), &Value::Float(1.5)));
        assert!(!codec_eq(&Value::Int(1), &Value::Float(1.0)));
    }
}
