//! Store errors.

use std::fmt;

/// Errors returned by conditional [`SharedStore`](crate::SharedStore)
/// operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A compare-and-swap found a different version than expected.
    CasConflict {
        /// The version the caller expected.
        expected: u64,
        /// The version actually present (0 if the key was absent).
        found: u64,
    },
    /// The key does not exist.
    NotFound {
        /// The namespace queried.
        namespace: String,
        /// The missing key.
        key: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::CasConflict { expected, found } => {
                write!(f, "cas conflict: expected version {expected}, found {found}")
            }
            StoreError::NotFound { namespace, key } => {
                write!(f, "key not found: {namespace}/{key}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = StoreError::CasConflict {
            expected: 1,
            found: 2,
        };
        assert_eq!(e.to_string(), "cas conflict: expected version 1, found 2");
        let e = StoreError::NotFound {
            namespace: "a".into(),
            key: "b".into(),
        };
        assert_eq!(e.to_string(), "key not found: a/b");
    }
}
