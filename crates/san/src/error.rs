//! Store errors.

use std::fmt;

/// Errors returned by conditional [`SharedStore`](crate::SharedStore)
/// operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A compare-and-swap found a different version than expected.
    CasConflict {
        /// The version the caller expected.
        expected: u64,
        /// The version actually present (0 if the key was absent).
        found: u64,
    },
    /// The key does not exist.
    NotFound {
        /// The namespace queried.
        namespace: String,
        /// The missing key.
        key: String,
    },
    /// The SAN is inside an injected brown-out window: every data-plane
    /// operation fails until the window ends. Transient — retry later.
    Unavailable,
    /// A transient injected I/O error on a single operation. Retryable
    /// immediately (each operation draws independently).
    Io {
        /// Which store operation failed (for diagnostics).
        op: &'static str,
    },
    /// A multi-key batch write tore: only a strict prefix was persisted.
    /// Recover by rewriting the whole batch (idempotent).
    TornWrite {
        /// How many leading entries of the batch were persisted.
        written: usize,
    },
}

impl StoreError {
    /// True for fault-injected errors that a bounded retry loop should
    /// absorb; false for semantic errors ([`CasConflict`](Self::CasConflict),
    /// [`NotFound`](Self::NotFound)) where retrying cannot help.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            StoreError::Unavailable | StoreError::Io { .. } | StoreError::TornWrite { .. }
        )
    }

    /// A short snake_case label for the error variant, stable for use in
    /// metric names (`san.faults.<kind>`).
    pub fn kind(&self) -> &'static str {
        match self {
            StoreError::CasConflict { .. } => "cas_conflict",
            StoreError::NotFound { .. } => "not_found",
            StoreError::Unavailable => "unavailable",
            StoreError::Io { .. } => "io",
            StoreError::TornWrite { .. } => "torn_write",
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::CasConflict { expected, found } => {
                write!(
                    f,
                    "cas conflict: expected version {expected}, found {found}"
                )
            }
            StoreError::NotFound { namespace, key } => {
                write!(f, "key not found: {namespace}/{key}")
            }
            StoreError::Unavailable => write!(f, "storage unavailable (brown-out)"),
            StoreError::Io { op } => write!(f, "transient i/o error during {op}"),
            StoreError::TornWrite { written } => {
                write!(f, "torn write: only {written} leading entries persisted")
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = StoreError::CasConflict {
            expected: 1,
            found: 2,
        };
        assert_eq!(e.to_string(), "cas conflict: expected version 1, found 2");
        let e = StoreError::NotFound {
            namespace: "a".into(),
            key: "b".into(),
        };
        assert_eq!(e.to_string(), "key not found: a/b");
        assert_eq!(
            StoreError::Unavailable.to_string(),
            "storage unavailable (brown-out)"
        );
        assert_eq!(
            StoreError::Io { op: "put" }.to_string(),
            "transient i/o error during put"
        );
        assert_eq!(
            StoreError::TornWrite { written: 2 }.to_string(),
            "torn write: only 2 leading entries persisted"
        );
    }

    #[test]
    fn transience_classification() {
        assert!(StoreError::Unavailable.is_transient());
        assert!(StoreError::Io { op: "get" }.is_transient());
        assert!(StoreError::TornWrite { written: 0 }.is_transient());
        assert!(!StoreError::CasConflict {
            expected: 1,
            found: 2
        }
        .is_transient());
        assert!(!StoreError::NotFound {
            namespace: "a".into(),
            key: "b".into()
        }
        .is_transient());
    }
}
