//! Satellite: `cas` under injected faults never double-applies.
//!
//! The wrapper rolls the fault decision *before* touching the backend, so
//! a `cas` that returns a transient error must not have applied — the
//! retried attempt with the same `expected` must therefore succeed, never
//! conflict. A conflict on retry would mean the "failed" attempt actually
//! landed (double-apply), which is exactly the bug class this pins. A
//! storeless oracle tracks the version counter and liveness through
//! updates, deletes and tombstone-crossing re-creates, and must agree with
//! the store after every committed operation — on every backend, with
//! identical traces.

use dosgi_san::{BackendKind, FaultPlan, SharedStore, StoreError, Value};
use dosgi_testkit::{prop, Gen, PropConfig, TestRng};

/// What the single-writer client model expects the store to hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Oracle {
    /// Monotonic per-key counter (includes tombstoned generations).
    counter: u64,
    /// Whether the key currently holds a value.
    live: bool,
}

impl Oracle {
    fn expected(&self) -> u64 {
        if self.live {
            self.counter
        } else {
            0 // tombstoned or absent: cas sees "no key"
        }
    }
}

/// One case: a seeded schedule of cas/delete rounds under a seeded flaky
/// plan.
#[derive(Debug, Clone)]
struct Case {
    fault_seed: u64,
    io_permille: u32,
    rounds: Vec<Round>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Round {
    /// cas(expected = oracle.expected()) with a fresh value.
    Cas,
    /// delete the key (NotFound allowed when not live).
    Delete,
}

fn cases() -> Gen<Case> {
    Gen::new(|rng: &mut TestRng| Case {
        fault_seed: rng.next_u64(),
        io_permille: rng.u64_below(600) as u32, // up to 60% transient errors
        rounds: (0..rng.usize_in(4, 30))
            .map(|_| {
                if rng.chance(0.25) {
                    Round::Delete
                } else {
                    Round::Cas
                }
            })
            .collect(),
    })
}

/// Runs one case on one backend, returning the committed-version trace.
fn run_case(case: &Case, kind: BackendKind) -> Result<Vec<u64>, String> {
    const MAX_ATTEMPTS: u32 = 300;
    let store = SharedStore::with_kind(kind);
    store.set_fault_plan(FaultPlan::flaky(
        f64::from(case.io_permille) / 1000.0,
        case.fault_seed,
    ));
    let mut oracle = Oracle {
        counter: 0,
        live: false,
    };
    let mut trace = Vec::new();
    for (i, round) in case.rounds.iter().enumerate() {
        match round {
            Round::Cas => {
                let value = Value::Int(i as i64);
                let expected = oracle.expected();
                let mut attempts = 0;
                let version = loop {
                    match store.cas("k8s", "lease", expected, value.clone()) {
                        Ok(v) => break v,
                        Err(e) if e.is_transient() => {
                            attempts += 1;
                            if attempts > MAX_ATTEMPTS {
                                return Err(format!(
                                    "round {i}: {MAX_ATTEMPTS} transient errors in a row \
                                     at io_permille={}",
                                    case.io_permille
                                ));
                            }
                        }
                        Err(StoreError::CasConflict { expected, found }) => {
                            return Err(format!(
                                "round {i}: conflict on retry (expected v{expected}, \
                                 found v{found}) — a failed cas must not have applied"
                            ));
                        }
                        Err(e) => return Err(format!("round {i}: unexpected error {e}")),
                    }
                };
                oracle.counter += 1;
                oracle.live = true;
                if version != oracle.counter {
                    return Err(format!(
                        "round {i}: committed v{version}, oracle expects v{} — \
                         a retry double-applied or the counter drifted",
                        oracle.counter
                    ));
                }
                trace.push(version);
            }
            Round::Delete => {
                let mut attempts = 0;
                loop {
                    match store.delete("k8s", "lease") {
                        Ok(()) => {
                            if !oracle.live {
                                return Err(format!(
                                    "round {i}: delete succeeded but oracle says not live"
                                ));
                            }
                            oracle.live = false;
                            break;
                        }
                        Err(StoreError::NotFound { .. }) => {
                            if oracle.live {
                                return Err(format!(
                                    "round {i}: NotFound but oracle says live at v{}",
                                    oracle.counter
                                ));
                            }
                            break;
                        }
                        Err(e) if e.is_transient() => {
                            attempts += 1;
                            if attempts > MAX_ATTEMPTS {
                                return Err(format!("round {i}: delete retries exhausted"));
                            }
                        }
                        Err(e) => return Err(format!("round {i}: unexpected error {e}")),
                    }
                }
                trace.push(0);
            }
        }
        // After every committed round the store must mirror the oracle
        // exactly (peek bypasses faults).
        let got = store.peek_versioned("k8s", "lease");
        match (oracle.live, got) {
            (true, Some(v)) if v.version == oracle.counter => {}
            (false, None) => {}
            (live, got) => {
                return Err(format!(
                    "round {i}: oracle (live={live}, counter={}) disagrees with store {got:?}",
                    oracle.counter
                ));
            }
        }
    }
    Ok(trace)
}

#[test]
fn prop_cas_under_faults_never_double_applies() {
    prop::check_with(
        &PropConfig::with_cases(200),
        "prop_cas_under_faults_never_double_applies",
        &cases(),
        |case| {
            let reference = run_case(case, BackendKind::Map)?;
            for kind in BackendKind::all() {
                let trace = run_case(case, kind)?;
                if trace != reference {
                    return Err(format!(
                        "backend {kind} trace {trace:?} != map trace {reference:?}"
                    ));
                }
            }
            Ok(())
        },
    );
}
