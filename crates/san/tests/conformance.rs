//! The backend conformance suite: golden fixtures and cross-backend
//! equivalence.
//!
//! Every registered [`BackendKind`] must render every builtin script to
//! the byte-identical committed fixture under `results/san_fixtures/`, and
//! arbitrary seeded op+fault streams must render identically across all
//! backends. Together these pin the store contract: a new backend that
//! passes this file observably *is* the SAN.
//!
//! Regenerate fixtures (after an intentional contract change) with
//! `SAN_FIXTURE_WRITE=1 cargo test -p dosgi-san --test conformance`.

use dosgi_san::conformance::{builtin_scripts, random_script, run_script, WRITE_ENV};
use dosgi_san::{BackendKind, LogBackend, LogConfig, SharedStore, Value};
use dosgi_testkit::{prop, unified_diff, Gen, PropConfig, TestRng};

/// Each builtin script renders to its committed fixture — on *every*
/// backend (the fixture file is backend-agnostic by contract).
#[test]
fn golden_fixtures_match_on_every_backend() {
    for script in builtin_scripts() {
        let reference = run_script(&script, BackendKind::Map);
        dosgi_testkit::assert_golden(&script.fixture_rel_path(), &reference, WRITE_ENV);
        for kind in BackendKind::all() {
            let rendered = run_script(&script, kind);
            assert!(
                rendered == reference,
                "backend `{kind}` diverges from the fixture contract on `{}`:\n{}",
                script.name,
                unified_diff(&reference, &rendered, &script.fixture_rel_path())
            );
        }
    }
}

/// Cross-backend equivalence: 200 seeded arbitrary op+fault streams must
/// produce identical observable results (per-op outcomes, final dump,
/// final stats) on every registered backend.
#[test]
fn prop_random_scripts_render_identically_on_all_backends() {
    let scripts = Gen::new(|rng: &mut TestRng| random_script(rng));
    prop::check_with(
        &PropConfig::with_cases(200),
        "prop_random_scripts_render_identically_on_all_backends",
        &scripts,
        |script| {
            let reference = run_script(script, BackendKind::Map);
            for kind in BackendKind::all() {
                let rendered = run_script(script, kind);
                if rendered != reference {
                    return Err(format!(
                        "backend `{kind}` diverges:\n{}",
                        unified_diff(&reference, &rendered, "map-backend rendering")
                    ));
                }
            }
            Ok(())
        },
    );
}

/// The equivalence holds under an aggressive log geometry too: a tiny
/// segment target and eager compaction must be invisible to observers.
#[test]
fn prop_tiny_log_geometry_is_observably_identical() {
    let scripts = Gen::new(|rng: &mut TestRng| random_script(rng));
    prop::check_with(
        &PropConfig::with_cases(60),
        "prop_tiny_log_geometry_is_observably_identical",
        &scripts,
        |script| {
            let reference = run_script(script, BackendKind::Map);
            let store =
                SharedStore::with_backend(Box::new(LogBackend::with_config(LogConfig::tiny())));
            // Re-render manually over the custom store: reuse run_script's
            // canonical rendering by comparing dumps + stats through a
            // fresh default-geometry run first (cheap sanity), then replay
            // ops onto the tiny-geometry store and compare final state.
            let default_log = run_script(script, BackendKind::Log);
            if default_log != reference {
                return Err("default log geometry diverged".to_owned());
            }
            for op in &script.ops {
                apply(&store, op);
            }
            let end = SharedStore::with_kind(BackendKind::Map);
            for op in &script.ops {
                apply(&end, op);
            }
            if store.dump() != end.dump() || store.stats() != end.stats() {
                return Err(format!(
                    "tiny geometry diverged: {:?} vs {:?}",
                    store.stats(),
                    end.stats()
                ));
            }
            Ok(())
        },
    );
}

/// Minimal op applier for the tiny-geometry replay (results are compared
/// via dump+stats, so outcomes are intentionally discarded).
fn apply(store: &SharedStore, op: &dosgi_san::conformance::ScriptOp) {
    use dosgi_san::conformance::ScriptOp as Op;
    use dosgi_san::FaultPlan;
    match op {
        Op::Put {
            namespace,
            key,
            value,
        } => {
            let _ = store.put(namespace, key, value.clone());
        }
        Op::PutMany { namespace, entries } => {
            let _ = store.put_many(namespace, entries);
        }
        Op::Get { namespace, key } => {
            let _ = store.get_versioned(namespace, key);
        }
        Op::Cas {
            namespace,
            key,
            expected,
            value,
        } => {
            let _ = store.cas(namespace, key, *expected, value.clone());
        }
        Op::Delete { namespace, key } => {
            let _ = store.delete(namespace, key);
        }
        Op::DeleteNamespace { namespace } => {
            let _ = store.delete_namespace(namespace);
        }
        Op::ReadNamespace { namespace } => {
            let _ = store.read_namespace(namespace);
        }
        Op::Flaky {
            io_permille,
            torn_permille,
            seed,
        } => store.set_fault_plan(
            FaultPlan::flaky(f64::from(*io_permille) / 1000.0, *seed)
                .with_torn_writes(f64::from(*torn_permille) / 1000.0),
        ),
        Op::Brownout { from_ms, until_ms } => {
            store.set_fault_plan(FaultPlan::none().with_brownout(
                dosgi_net::SimTime::from_millis(*from_ms),
                dosgi_net::SimTime::from_millis(*until_ms),
            ))
        }
        Op::SetNow { ms } => store.set_now(dosgi_net::SimTime::from_millis(*ms)),
        Op::ClearFaults => store.clear_faults(),
        Op::ResetStats => store.reset_stats(),
    }
}

/// The log backend's maintenance machinery actually engages on the fixture
/// workloads (otherwise the "second backend" could be a map in disguise).
#[test]
fn log_backend_compacts_under_churn_without_observable_drift() {
    let store = SharedStore::with_backend(Box::new(LogBackend::with_config(LogConfig::tiny())));
    let oracle = SharedStore::new();
    for round in 0..50i64 {
        for k in 0..6 {
            let v = Value::map().with("round", round).with("k", k as i64);
            store.put("churn", &format!("k{k}"), v.clone()).unwrap();
            oracle.put("churn", &format!("k{k}"), v).unwrap();
        }
    }
    let bs = store.backend_stats();
    assert!(bs.compactions > 0, "tiny geometry must compact: {bs:?}");
    assert!(bs.sealed_segments > 0, "tiny geometry must seal: {bs:?}");
    assert_eq!(store.dump(), oracle.dump());
    assert_eq!(store.stats(), oracle.stats());
}
