//! Satellite: journal replay conformance.
//!
//! A journal written while driving the map backend must replay to an
//! identical store on *every* backend — including from a torn encoding
//! whose final record was truncated mid-frame (a writer crashing during
//! the last append). The replayed store dump is pinned as a golden
//! fixture; regenerate with `SAN_FIXTURE_WRITE=1`.

use dosgi_net::SimTime;
use dosgi_san::conformance::{render_value, WRITE_ENV};
use dosgi_san::{BackendKind, Journal, JournalOp, SharedStore, Value};
use dosgi_testkit::unified_diff;
use std::fmt::Write as _;

/// Drives a map-backend store through a deterministic workload, journaling
/// every *effective* mutation (the journal records what the store actually
/// did, so change-detection skips don't journal).
fn write_workload() -> (SharedStore, Journal) {
    let store = SharedStore::new();
    let journal = Journal::new();
    let mut at = SimTime::ZERO;
    let mut tick = |j: &Journal, op: JournalOp| {
        at += dosgi_net::SimDuration::from_millis(10);
        j.append(at, op).unwrap();
    };
    let put = |store: &SharedStore,
               j: &Journal,
               tick: &mut dyn FnMut(&Journal, JournalOp),
               ns: &str,
               key: &str,
               v: Value| {
        let before = store.peek_versioned(ns, key).map(|x| x.version);
        let after = store.put(ns, key, v.clone()).unwrap();
        if before != Some(after) {
            tick(
                j,
                JournalOp::Put {
                    namespace: ns.into(),
                    key: key.into(),
                    value: v,
                },
            );
        }
    };
    put(
        &store,
        &journal,
        &mut tick,
        "fw/n0",
        "bundle:log",
        Value::Str("ACTIVE".into()),
    );
    put(
        &store,
        &journal,
        &mut tick,
        "fw/n0",
        "bundle:http",
        Value::Str("RESOLVED".into()),
    );
    put(
        &store,
        &journal,
        &mut tick,
        "fw/n0",
        "bundle:log",
        Value::Str("ACTIVE".into()),
    ); // identical: skipped, not journaled
    put(
        &store,
        &journal,
        &mut tick,
        "fw/n0",
        "bundle:log",
        Value::Str("STOPPED".into()),
    );
    put(
        &store,
        &journal,
        &mut tick,
        "inst/3/data",
        "rows",
        Value::List(vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
    );
    tick(
        &journal,
        JournalOp::Checkpoint {
            label: "mid".into(),
        },
    );
    store.delete("fw/n0", "bundle:http").unwrap();
    tick(
        &journal,
        JournalOp::Delete {
            namespace: "fw/n0".into(),
            key: "bundle:http".into(),
        },
    );
    put(
        &store,
        &journal,
        &mut tick,
        "fw/n0",
        "bundle:cfg",
        Value::map().with("level", 5i64),
    );
    put(
        &store,
        &journal,
        &mut tick,
        "inst/3/data",
        "rows",
        Value::List(vec![
            Value::Int(1),
            Value::Int(2),
            Value::Int(3),
            Value::Int(4),
        ]),
    );
    (store, journal)
}

/// Renders a replay outcome: entries applied, head, then the store dump.
fn render_replay(journal: &Journal, store: &SharedStore, applied: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "entries={} applied={}", journal.head(), applied);
    let _ = writeln!(out, "-- store --");
    for (ns, rows) in store.dump() {
        for (key, v) in rows {
            let _ = writeln!(out, "{ns}/{key} v={} {}", v.version, render_value(&v.value));
        }
    }
    out
}

/// Replays `journal` into a fresh store of each backend; asserts all
/// backends agree and returns the rendering.
fn replay_on_all_backends(journal: &Journal) -> String {
    let mut reference: Option<(BackendKind, String)> = None;
    for kind in BackendKind::all() {
        let store = SharedStore::with_kind(kind);
        let applied = journal.replay_into(&store).expect("no faults attached");
        let rendered = render_replay(journal, &store, applied);
        match &reference {
            None => reference = Some((kind, rendered)),
            Some((ref_kind, ref_render)) => {
                assert!(
                    *ref_render == rendered,
                    "replay diverges between {ref_kind} and {kind}:\n{}",
                    unified_diff(ref_render, &rendered, "journal replay")
                );
            }
        }
    }
    reference.expect("at least one backend").1
}

/// Clean replay: both backends converge to the writer's exact live state,
/// pinned as a golden fixture.
#[test]
fn journal_replays_identically_on_all_backends() {
    let (writer_store, journal) = write_workload();
    let rendered = replay_on_all_backends(&journal);
    dosgi_testkit::assert_golden(
        "results/san_fixtures/journal_replay.txt",
        &rendered,
        WRITE_ENV,
    );
    // The replayed live state equals the writer's live state (versions may
    // differ where the writer's history had skipped/identical puts — here
    // it doesn't, because only effective mutations were journaled).
    let replayed = SharedStore::new();
    journal.replay_into(&replayed).unwrap();
    assert_eq!(replayed.dump(), writer_store.dump());
}

/// Torn tail: encode, truncate mid-final-record, decode tolerantly, replay.
/// Both backends must converge on the prefix state, pinned as its own
/// fixture (one journaled mutation short of the clean one).
#[test]
fn torn_tail_journal_replays_the_prefix_on_all_backends() {
    let (_, journal) = write_workload();
    let encoded = journal.encode();
    // Chop into the last record's payload: tolerant decode must stop
    // cleanly at the previous frame boundary.
    let torn = &encoded[..encoded.len() - 3];
    let decoded = Journal::decode_tolerant(torn);
    assert_eq!(
        decoded.head(),
        journal.head() - 1,
        "exactly the final record is lost"
    );
    let rendered = replay_on_all_backends(&decoded);
    dosgi_testkit::assert_golden(
        "results/san_fixtures/journal_replay_torn.txt",
        &rendered,
        WRITE_ENV,
    );
}

/// Whole-encoding robustness: every truncation point replays to a valid
/// prefix state on both backends (no cut can make them diverge).
#[test]
fn every_truncation_point_keeps_backends_equivalent() {
    let (_, journal) = write_workload();
    let encoded = journal.encode();
    // Sample cuts coarsely (every 7 bytes) to keep runtime small while
    // still crossing several frame boundaries.
    for cut in (0..encoded.len()).step_by(7) {
        let decoded = Journal::decode_tolerant(&encoded[..cut]);
        replay_on_all_backends(&decoded);
    }
}
