//! The Monitoring Module: per-subject samplers and series under one roof.

use crate::{Sampler, TimeSeries, WindowedUsage};
use dosgi_net::SimTime;
use dosgi_osgi::UsageSnapshot;
use std::collections::BTreeMap;

/// Aggregated statistics for one monitored subject (a virtual instance,
/// keyed by name).
#[derive(Debug, Clone, PartialEq)]
pub struct SubjectReport {
    /// The subject's key.
    pub subject: String,
    /// Most recent windowed usage, if at least two samples exist.
    pub latest: Option<WindowedUsage>,
    /// Mean CPU share over the series window.
    pub cpu_share_mean: Option<f64>,
    /// EWMA CPU share.
    pub cpu_share_ewma: Option<f64>,
    /// Peak memory seen in the window.
    pub memory_max: Option<f64>,
    /// Mean call rate.
    pub call_rate_mean: Option<f64>,
}

/// The per-node Monitoring Module: feed it cumulative usage snapshots per
/// subject (typically once per sampling period), query windowed statistics.
///
/// This is the component §3.1 could not fully build on a 2008 JVM; the
/// blackboard it produces is the input to the Autonomic Module's policies.
#[derive(Debug, Clone, Default)]
pub struct MonitoringModule {
    subjects: BTreeMap<String, SubjectState>,
}

#[derive(Debug, Clone, Default)]
struct SubjectState {
    sampler: Sampler,
    cpu_share: TimeSeries,
    memory: TimeSeries,
    call_rate: TimeSeries,
    latest: Option<WindowedUsage>,
}

impl MonitoringModule {
    /// Creates an empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a cumulative snapshot for `subject` at `now`. Returns the
    /// windowed usage if a full window closed.
    pub fn record(
        &mut self,
        subject: &str,
        now: SimTime,
        snapshot: UsageSnapshot,
    ) -> Option<WindowedUsage> {
        let state = self.subjects.entry(subject.to_owned()).or_default();
        let window = state.sampler.observe(now, snapshot)?;
        state.cpu_share.push(window.cpu_share);
        state.memory.push(window.memory as f64);
        state.call_rate.push(window.call_rate);
        state.latest = Some(window);
        Some(window)
    }

    /// The latest windowed usage for `subject`.
    pub fn latest(&self, subject: &str) -> Option<WindowedUsage> {
        self.subjects.get(subject).and_then(|s| s.latest)
    }

    /// The CPU-share series for `subject`.
    pub fn cpu_series(&self, subject: &str) -> Option<&TimeSeries> {
        self.subjects.get(subject).map(|s| &s.cpu_share)
    }

    /// The memory series for `subject`.
    pub fn memory_series(&self, subject: &str) -> Option<&TimeSeries> {
        self.subjects.get(subject).map(|s| &s.memory)
    }

    /// The call-rate series for `subject`.
    pub fn call_rate_series(&self, subject: &str) -> Option<&TimeSeries> {
        self.subjects.get(subject).map(|s| &s.call_rate)
    }

    /// Full reports for every subject, sorted by key.
    pub fn report(&self) -> Vec<SubjectReport> {
        self.subjects
            .iter()
            .map(|(k, s)| SubjectReport {
                subject: k.clone(),
                latest: s.latest,
                cpu_share_mean: s.cpu_share.mean(),
                cpu_share_ewma: s.cpu_share.ewma(),
                memory_max: s.memory.max(),
                call_rate_mean: s.call_rate.mean(),
            })
            .collect()
    }

    /// Sum of the latest CPU shares across subjects — the node-level load
    /// the placement logic compares against [`NodeCapacity`].
    ///
    /// [`NodeCapacity`]: crate::NodeCapacity
    pub fn total_cpu_share(&self) -> f64 {
        self.subjects
            .values()
            .filter_map(|s| s.latest.map(|w| w.cpu_share))
            .sum()
    }

    /// Sum of the latest memory gauges across subjects.
    pub fn total_memory(&self) -> u64 {
        self.subjects
            .values()
            .filter_map(|s| s.latest.map(|w| w.memory))
            .sum()
    }

    /// Forgets a subject (after migration away or destruction).
    pub fn forget(&mut self, subject: &str) {
        self.subjects.remove(subject);
    }

    /// Monitored subject keys, sorted.
    pub fn subjects(&self) -> Vec<&str> {
        self.subjects.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosgi_net::SimDuration;

    fn snap(cpu_ms: u64, memory: u64, calls: u64) -> UsageSnapshot {
        UsageSnapshot {
            cpu: SimDuration::from_millis(cpu_ms),
            memory,
            disk: 0,
            calls,
        }
    }

    #[test]
    fn record_builds_series_per_subject() {
        let mut m = MonitoringModule::new();
        assert!(m
            .record("a", SimTime::from_secs(0), snap(0, 10, 0))
            .is_none());
        let w = m
            .record("a", SimTime::from_secs(1), snap(250, 20, 5))
            .unwrap();
        assert!((w.cpu_share - 0.25).abs() < 1e-9);
        m.record("a", SimTime::from_secs(2), snap(750, 30, 15))
            .unwrap();
        let series = m.cpu_series("a").unwrap();
        assert_eq!(series.len(), 2);
        assert!((series.mean().unwrap() - 0.375).abs() < 1e-9);
        assert_eq!(m.latest("a").unwrap().memory, 30);
        assert_eq!(m.subjects(), vec!["a"]);
    }

    #[test]
    fn totals_aggregate_subjects() {
        let mut m = MonitoringModule::new();
        for s in ["a", "b"] {
            m.record(s, SimTime::from_secs(0), snap(0, 0, 0));
            m.record(s, SimTime::from_secs(1), snap(500, 100, 0));
        }
        assert!((m.total_cpu_share() - 1.0).abs() < 1e-9);
        assert_eq!(m.total_memory(), 200);
    }

    #[test]
    fn report_covers_all_subjects() {
        let mut m = MonitoringModule::new();
        m.record("a", SimTime::from_secs(0), snap(0, 0, 0));
        m.record("b", SimTime::from_secs(0), snap(0, 0, 0));
        m.record("a", SimTime::from_secs(1), snap(100, 5, 2));
        let report = m.report();
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].subject, "a");
        assert!(report[0].latest.is_some());
        assert!(report[1].latest.is_none(), "b has only one sample");
    }

    #[test]
    fn forget_removes_subject() {
        let mut m = MonitoringModule::new();
        m.record("a", SimTime::from_secs(0), snap(0, 0, 0));
        m.forget("a");
        assert!(m.subjects().is_empty());
        assert_eq!(m.latest("a"), None);
    }
}
