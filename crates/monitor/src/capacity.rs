//! Node capacity and placement fitting.

use dosgi_net::SimDuration;

/// A node's total resources — what the Migration Module weighs a
/// destination against (§3.2: *"The decision of where to redeploy the
/// virtual instance shall take into account its resource requirements and
/// the resources available on the destination node"*).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeCapacity {
    /// Number of CPU cores.
    pub cpu_cores: f64,
    /// Total memory, bytes.
    pub memory_bytes: u64,
    /// Total disk, bytes.
    pub disk_bytes: u64,
}

impl NodeCapacity {
    /// A typical 2008-class cluster node: 4 cores, 8 GiB RAM, 500 GiB disk.
    pub fn standard() -> Self {
        NodeCapacity {
            cpu_cores: 4.0,
            memory_bytes: 8 << 30,
            disk_bytes: 500 << 30,
        }
    }

    /// A small node for consolidation experiments: 2 cores, 2 GiB.
    pub fn small() -> Self {
        NodeCapacity {
            cpu_cores: 2.0,
            memory_bytes: 2 << 30,
            disk_bytes: 100 << 30,
        }
    }

    /// True if a workload needing `cpu_per_sec` CPU (per second of wall
    /// clock), `memory` and `disk` fits inside the *remaining* capacity
    /// after `used_*` are subtracted.
    #[allow(clippy::too_many_arguments)]
    pub fn fits(
        &self,
        used_cpu_share: f64,
        used_memory: u64,
        used_disk: u64,
        need_cpu_per_sec: SimDuration,
        need_memory: u64,
        need_disk: u64,
    ) -> bool {
        let need_share = need_cpu_per_sec.as_secs_f64();
        used_cpu_share + need_share <= self.cpu_cores
            && used_memory.saturating_add(need_memory) <= self.memory_bytes
            && used_disk.saturating_add(need_disk) <= self.disk_bytes
    }

    /// Fraction of CPU capacity used (`0.0..=1.0+`).
    pub fn cpu_utilization(&self, used_cpu_share: f64) -> f64 {
        used_cpu_share / self.cpu_cores
    }

    /// Fraction of memory capacity used.
    pub fn memory_utilization(&self, used_memory: u64) -> f64 {
        used_memory as f64 / self.memory_bytes as f64
    }
}

impl Default for NodeCapacity {
    fn default() -> Self {
        NodeCapacity::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_checks_all_dimensions() {
        let cap = NodeCapacity {
            cpu_cores: 2.0,
            memory_bytes: 1000,
            disk_bytes: 1000,
        };
        // Plenty of room.
        assert!(cap.fits(0.5, 100, 100, SimDuration::from_millis(500), 100, 100));
        // CPU exhausted: 1.8 + 0.5 > 2.0.
        assert!(!cap.fits(1.8, 0, 0, SimDuration::from_millis(500), 0, 0));
        // Memory exhausted.
        assert!(!cap.fits(0.0, 950, 0, SimDuration::ZERO, 100, 0));
        // Disk exhausted.
        assert!(!cap.fits(0.0, 0, 950, SimDuration::ZERO, 0, 100));
        // Exact fit is a fit.
        assert!(cap.fits(1.0, 500, 500, SimDuration::from_secs(1), 500, 500));
    }

    #[test]
    fn utilization_fractions() {
        let cap = NodeCapacity {
            cpu_cores: 4.0,
            memory_bytes: 100,
            disk_bytes: 1,
        };
        assert_eq!(cap.cpu_utilization(1.0), 0.25);
        assert_eq!(cap.memory_utilization(50), 0.5);
    }

    #[test]
    fn presets() {
        assert!(NodeCapacity::standard().memory_bytes > NodeCapacity::small().memory_bytes);
        assert_eq!(NodeCapacity::default(), NodeCapacity::standard());
    }
}
