//! # dosgi-monitor — the Monitoring Module
//!
//! §3.1 of the paper calls monitoring *"the least mature part of all the
//! work developed as there are no adequate mechanisms to measure and
//! monitor resource usage in the actual JVM specification"* — memory is
//! only visible platform-wide via `MemoryMXBean`, CPU only roughly per
//! thread via `ThreadMXBean`, and the authors pin their hopes on **JSR-284,
//! the Resource Consumption Management API**.
//!
//! The simulation is not subject to the JVM's limits, so this crate simply
//! *implements* the JSR-284 model the paper wanted:
//!
//! * [`ResourceDomain`] — a named accounting domain (one per customer
//!   instance) with per-[`ResourceType`] limits, reservations and
//!   consumption, in the JSR-284 style;
//! * [`Sampler`] — turns cumulative [`UsageSnapshot`]s (from the
//!   `dosgi-osgi` ledger) into windowed rates: CPU share of a core, calls
//!   per second, memory gauge;
//! * [`TimeSeries`] — bounded history with mean/max/EWMA/percentile, the
//!   inputs to autonomic policy conditions;
//! * [`NodeCapacity`] — a node's total resources and the `fits` test the
//!   Migration Module uses when choosing a failover destination.
//!
//! [`UsageSnapshot`]: dosgi_osgi::UsageSnapshot

mod capacity;
mod domain;
mod module;
mod sample;
mod series;

pub use capacity::NodeCapacity;
pub use domain::{DomainEvent, ResourceDomain, ResourceType};
pub use module::{MonitoringModule, SubjectReport};
pub use sample::{Sampler, WindowedUsage};
pub use series::TimeSeries;
