//! JSR-284-style resource domains.

use std::collections::BTreeMap;
use std::fmt;

/// The resource dimensions a domain accounts for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceType {
    /// CPU time, microseconds.
    CpuTime,
    /// Resident memory, bytes.
    Memory,
    /// Persistent storage, bytes.
    DiskSpace,
    /// Live threads, count.
    Threads,
    /// Network bandwidth, bytes/sec.
    NetworkBandwidth,
}

impl fmt::Display for ResourceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceType::CpuTime => "cpu",
            ResourceType::Memory => "memory",
            ResourceType::DiskSpace => "disk",
            ResourceType::Threads => "threads",
            ResourceType::NetworkBandwidth => "net",
        };
        f.write_str(s)
    }
}

/// Notifications emitted by a [`ResourceDomain`] on threshold crossings —
/// the JSR-284 "resource event" concept the Autonomic Module consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainEvent {
    /// Consumption crossed the soft threshold (fraction of the limit).
    SoftLimit {
        /// Which resource.
        resource: ResourceType,
        /// Current consumption.
        used: u64,
        /// The configured hard limit.
        limit: u64,
    },
    /// A consume request was denied because it would exceed the hard limit.
    HardLimit {
        /// Which resource.
        resource: ResourceType,
        /// Consumption at the time of the denial.
        used: u64,
        /// The amount requested.
        requested: u64,
        /// The configured hard limit.
        limit: u64,
    },
}

/// A per-customer resource accounting domain in the JSR-284 style:
/// consumption is metered against optional hard limits, with soft-threshold
/// events for early warning.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceDomain {
    name: String,
    limits: BTreeMap<ResourceType, u64>,
    used: BTreeMap<ResourceType, u64>,
    soft_fraction: f64,
    events: Vec<DomainEvent>,
}

impl ResourceDomain {
    /// Creates a domain named `name` with no limits and a 0.8 soft
    /// threshold.
    pub fn new(name: &str) -> Self {
        ResourceDomain {
            name: name.to_owned(),
            limits: BTreeMap::new(),
            used: BTreeMap::new(),
            soft_fraction: 0.8,
            events: Vec::new(),
        }
    }

    /// The domain's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets a hard limit for `resource` (builder style).
    pub fn with_limit(mut self, resource: ResourceType, limit: u64) -> Self {
        self.limits.insert(resource, limit);
        self
    }

    /// Sets the soft-threshold fraction (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < fraction <= 1.0`.
    pub fn with_soft_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "soft fraction must be in (0,1]"
        );
        self.soft_fraction = fraction;
        self
    }

    /// Attempts to consume `amount` of `resource`.
    ///
    /// Returns `true` and records the consumption if within the hard limit;
    /// returns `false` (and queues a [`DomainEvent::HardLimit`]) otherwise.
    /// Crossing the soft threshold queues a [`DomainEvent::SoftLimit`] once
    /// per crossing.
    pub fn consume(&mut self, resource: ResourceType, amount: u64) -> bool {
        let used = self.used.get(&resource).copied().unwrap_or(0);
        if let Some(&limit) = self.limits.get(&resource) {
            if used.saturating_add(amount) > limit {
                self.events.push(DomainEvent::HardLimit {
                    resource,
                    used,
                    requested: amount,
                    limit,
                });
                return false;
            }
            let soft = (limit as f64 * self.soft_fraction) as u64;
            if used < soft && used + amount >= soft {
                self.events.push(DomainEvent::SoftLimit {
                    resource,
                    used: used + amount,
                    limit,
                });
            }
        }
        self.used.insert(resource, used + amount);
        true
    }

    /// Releases `amount` of `resource` (gauges such as memory go down).
    pub fn release(&mut self, resource: ResourceType, amount: u64) {
        let used = self.used.get(&resource).copied().unwrap_or(0);
        self.used.insert(resource, used.saturating_sub(amount));
    }

    /// Current consumption of `resource`.
    pub fn used(&self, resource: ResourceType) -> u64 {
        self.used.get(&resource).copied().unwrap_or(0)
    }

    /// The hard limit for `resource`, if configured.
    pub fn limit(&self, resource: ResourceType) -> Option<u64> {
        self.limits.get(&resource).copied()
    }

    /// Remaining headroom before the hard limit (`u64::MAX` if unlimited).
    pub fn headroom(&self, resource: ResourceType) -> u64 {
        match self.limit(resource) {
            Some(limit) => limit.saturating_sub(self.used(resource)),
            None => u64::MAX,
        }
    }

    /// Drains queued threshold events.
    pub fn take_events(&mut self) -> Vec<DomainEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_consumption_is_allowed() {
        let mut d = ResourceDomain::new("acme");
        assert!(d.consume(ResourceType::CpuTime, 1_000_000));
        assert_eq!(d.used(ResourceType::CpuTime), 1_000_000);
        assert_eq!(d.headroom(ResourceType::CpuTime), u64::MAX);
        assert!(d.take_events().is_empty());
    }

    #[test]
    fn hard_limit_denies_and_reports() {
        let mut d = ResourceDomain::new("acme").with_limit(ResourceType::Memory, 100);
        assert!(d.consume(ResourceType::Memory, 90));
        assert!(!d.consume(ResourceType::Memory, 20));
        assert_eq!(d.used(ResourceType::Memory), 90);
        assert_eq!(d.headroom(ResourceType::Memory), 10);
        let events = d.take_events();
        // 90 crossed the soft threshold (80), then the denial.
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], DomainEvent::SoftLimit { .. }));
        assert!(matches!(
            events[1],
            DomainEvent::HardLimit {
                requested: 20,
                used: 90,
                limit: 100,
                ..
            }
        ));
    }

    #[test]
    fn soft_limit_fires_once_per_crossing() {
        let mut d = ResourceDomain::new("a")
            .with_limit(ResourceType::Memory, 100)
            .with_soft_fraction(0.5);
        assert!(d.consume(ResourceType::Memory, 49));
        assert!(d.take_events().is_empty());
        assert!(d.consume(ResourceType::Memory, 1)); // crosses 50
        assert_eq!(d.take_events().len(), 1);
        assert!(d.consume(ResourceType::Memory, 10)); // already above: no event
        assert!(d.take_events().is_empty());
        // Release below, cross again: fires again.
        d.release(ResourceType::Memory, 30);
        assert!(d.consume(ResourceType::Memory, 25));
        assert_eq!(d.take_events().len(), 1);
    }

    #[test]
    fn release_saturates() {
        let mut d = ResourceDomain::new("a");
        d.release(ResourceType::Threads, 10);
        assert_eq!(d.used(ResourceType::Threads), 0);
    }

    #[test]
    #[should_panic(expected = "soft fraction")]
    fn bad_soft_fraction_panics() {
        let _ = ResourceDomain::new("a").with_soft_fraction(0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(ResourceType::CpuTime.to_string(), "cpu");
        assert_eq!(ResourceType::NetworkBandwidth.to_string(), "net");
    }
}
