//! Bounded time series with the statistics policy conditions need.

use std::collections::VecDeque;

/// A bounded sliding window of `f64` observations.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    window: usize,
    values: VecDeque<f64>,
    ewma: Option<f64>,
    alpha: f64,
}

impl TimeSeries {
    /// Creates a series keeping the last `window` observations, with EWMA
    /// smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `alpha` outside `(0, 1]`.
    pub fn new(window: usize, alpha: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        TimeSeries {
            window,
            values: VecDeque::with_capacity(window),
            ewma: None,
            alpha,
        }
    }

    /// A series with window 60 and alpha 0.2 — one minute of 1 Hz samples.
    pub fn standard() -> Self {
        TimeSeries::new(60, 0.2)
    }

    /// Appends an observation, evicting the oldest beyond the window.
    pub fn push(&mut self, value: f64) {
        if self.values.len() == self.window {
            self.values.pop_front();
        }
        self.values.push_back(value);
        self.ewma = Some(match self.ewma {
            None => value,
            Some(prev) => self.alpha * value + (1.0 - self.alpha) * prev,
        });
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no observations have been pushed.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The most recent observation.
    pub fn last(&self) -> Option<f64> {
        self.values.back().copied()
    }

    /// Arithmetic mean over the window.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Maximum over the window.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Minimum over the window.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Exponentially weighted moving average.
    pub fn ewma(&self) -> Option<f64> {
        self.ewma
    }

    /// The `p`-th percentile (nearest-rank), `p` in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        if self.values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.values.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN observations"));
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        Some(sorted[rank])
    }

    /// How many of the last `n` observations exceed `threshold` —
    /// "for 3 consecutive samples"-style policy conditions.
    pub fn count_above_in_last(&self, threshold: f64, n: usize) -> usize {
        self.values
            .iter()
            .rev()
            .take(n)
            .filter(|&&v| v > threshold)
            .count()
    }
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosgi_testkit::{prop, prop_verify};

    #[test]
    fn empty_series_returns_none() {
        let s = TimeSeries::standard();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.ewma(), None);
        assert_eq!(s.last(), None);
    }

    #[test]
    fn stats_on_known_data() {
        let mut s = TimeSeries::new(10, 0.5);
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(s.max(), Some(4.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.last(), Some(4.0));
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(100.0), Some(4.0));
        assert_eq!(s.percentile(50.0), Some(3.0)); // nearest rank of 1.5 → idx 2
    }

    #[test]
    fn window_evicts_oldest() {
        let mut s = TimeSeries::new(3, 0.5);
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.min(), Some(2.0));
    }

    #[test]
    fn ewma_converges_toward_input() {
        let mut s = TimeSeries::new(100, 0.5);
        s.push(0.0);
        for _ in 0..20 {
            s.push(10.0);
        }
        let e = s.ewma().unwrap();
        assert!(e > 9.9 && e <= 10.0);
    }

    #[test]
    fn count_above_looks_at_the_tail() {
        let mut s = TimeSeries::new(10, 0.5);
        for v in [9.0, 1.0, 9.0, 9.0] {
            s.push(v);
        }
        assert_eq!(s.count_above_in_last(5.0, 2), 2);
        assert_eq!(s.count_above_in_last(5.0, 3), 2);
        assert_eq!(s.count_above_in_last(5.0, 10), 3);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = TimeSeries::new(0, 0.5);
    }

    #[test]
    fn prop_mean_bounded_by_min_max() {
        let values = prop::vecs(prop::f64s(-1e6, 1e6), 1, 49);
        prop::check("prop_mean_bounded_by_min_max", &values, |values| {
            let mut s = TimeSeries::new(64, 0.3);
            for v in values {
                s.push(*v);
            }
            let (mean, min, max) = (s.mean().unwrap(), s.min().unwrap(), s.max().unwrap());
            prop_verify!(mean >= min - 1e-9 && mean <= max + 1e-9);
            prop_verify!(s.percentile(50.0).unwrap() >= min);
            prop_verify!(s.percentile(50.0).unwrap() <= max);
            Ok(())
        });
    }
}
