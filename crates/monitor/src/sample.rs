//! Sampling: cumulative ledger snapshots → windowed rates.

use dosgi_net::{SimDuration, SimTime};
use dosgi_osgi::UsageSnapshot;

/// Usage over one sampling window, as rates and gauges.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowedUsage {
    /// When the window closed.
    pub at: SimTime,
    /// Window length.
    pub window: SimDuration,
    /// CPU consumed during the window.
    pub cpu: SimDuration,
    /// CPU as a fraction of one core (`0.5` = half a core busy).
    pub cpu_share: f64,
    /// Resident memory at the end of the window (gauge).
    pub memory: u64,
    /// Cumulative disk bytes at the end of the window (counter).
    pub disk: u64,
    /// Service calls during the window.
    pub calls: u64,
    /// Calls per second.
    pub call_rate: f64,
}

/// Converts a stream of cumulative [`UsageSnapshot`]s into
/// [`WindowedUsage`] deltas. One `Sampler` per monitored subject.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sampler {
    prev: Option<(SimTime, UsageSnapshot)>,
}

impl Sampler {
    /// Creates a sampler with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the cumulative snapshot observed at `now`; returns the window
    /// since the previous observation, or `None` on the first call (no
    /// window yet) or when time has not advanced.
    pub fn observe(&mut self, now: SimTime, snapshot: UsageSnapshot) -> Option<WindowedUsage> {
        let result = match self.prev {
            Some((then, prev)) if now > then => {
                let window = now.since(then);
                let cpu = snapshot.cpu.saturating_sub(prev.cpu);
                let calls = snapshot.calls.saturating_sub(prev.calls);
                let secs = window.as_secs_f64();
                Some(WindowedUsage {
                    at: now,
                    window,
                    cpu,
                    cpu_share: cpu.as_secs_f64() / secs,
                    memory: snapshot.memory,
                    disk: snapshot.disk,
                    calls,
                    call_rate: calls as f64 / secs,
                })
            }
            Some(_) => None,
            None => None,
        };
        self.prev = Some((now, snapshot));
        result
    }

    /// The last observed cumulative snapshot, if any.
    pub fn last(&self) -> Option<(SimTime, UsageSnapshot)> {
        self.prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(cpu_ms: u64, memory: u64, calls: u64) -> UsageSnapshot {
        UsageSnapshot {
            cpu: SimDuration::from_millis(cpu_ms),
            memory,
            disk: 0,
            calls,
        }
    }

    #[test]
    fn first_observation_yields_nothing() {
        let mut s = Sampler::new();
        assert_eq!(s.observe(SimTime::from_secs(1), snap(10, 100, 1)), None);
        assert!(s.last().is_some());
    }

    #[test]
    fn window_delta_computes_rates() {
        let mut s = Sampler::new();
        s.observe(SimTime::from_secs(1), snap(100, 50, 10));
        let w = s.observe(SimTime::from_secs(3), snap(600, 80, 30)).unwrap();
        assert_eq!(w.window, SimDuration::from_secs(2));
        assert_eq!(w.cpu, SimDuration::from_millis(500));
        assert!(
            (w.cpu_share - 0.25).abs() < 1e-9,
            "500ms over 2s = 0.25 cores"
        );
        assert_eq!(w.memory, 80);
        assert_eq!(w.calls, 20);
        assert!((w.call_rate - 10.0).abs() < 1e-9);
    }

    #[test]
    fn time_standing_still_yields_nothing() {
        let mut s = Sampler::new();
        s.observe(SimTime::from_secs(1), snap(1, 1, 1));
        assert_eq!(s.observe(SimTime::from_secs(1), snap(2, 2, 2)), None);
    }

    #[test]
    fn counter_reset_saturates_to_zero() {
        // A restarted instance resets its cumulative counters; the delta
        // clamps instead of underflowing.
        let mut s = Sampler::new();
        s.observe(SimTime::from_secs(1), snap(500, 10, 50));
        let w = s.observe(SimTime::from_secs(2), snap(0, 10, 0)).unwrap();
        assert_eq!(w.cpu, SimDuration::ZERO);
        assert_eq!(w.calls, 0);
    }
}
