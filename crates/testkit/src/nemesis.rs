//! Deterministic chaos (nemesis) schedules.
//!
//! A *nemesis* is the adversary of a chaos test: it injects faults —
//! node crashes, network partitions, SAN brown-outs and flakiness,
//! message loss — on a schedule. This module generates such schedules
//! **deterministically from a seed**, as pure data: the testkit knows
//! nothing about clusters or SANs, it only emits `(time, operation)`
//! pairs. The driver that applies a schedule to a system under test (and
//! checks invariants between steps) lives with that system; any failure
//! replays exactly from the same seed.
//!
//! Schedules are *well-formed by construction*:
//!
//! * at most a strict minority of nodes is ever crashed or partitioned
//!   away concurrently, so the surviving majority can keep converging;
//! * every fault is healed before the schedule's horizon, leaving a
//!   configurable quiet tail — the window in which convergence
//!   invariants ("registry agrees everywhere", "every instance serving")
//!   must hold;
//! * at most one fault per category is active at a time.

use crate::rng::{mix_seed, TestRng};

/// One fault (or heal) operation in a nemesis schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum NemesisOp {
    /// Crash-stop a node (volatile state lost; durable state intact).
    CrashNode {
        /// The node index to crash.
        node: usize,
    },
    /// Restart a previously crashed node with fresh volatile state.
    RestartNode {
        /// The node index to restart.
        node: usize,
    },
    /// Partition the listed (minority) nodes away from the rest.
    Partition {
        /// The minority side of the split, sorted.
        minority: Vec<usize>,
    },
    /// Heal any active partition.
    HealPartition,
    /// The SAN stops answering entirely (brown-out) until [`SanHeal`].
    ///
    /// [`SanHeal`]: NemesisOp::SanHeal
    SanBrownout,
    /// The SAN fails a fraction of operations until [`SanHeal`].
    ///
    /// [`SanHeal`]: NemesisOp::SanHeal
    SanFlaky {
        /// Per-operation transient failure probability in `[0, 1]`.
        error_rate: f64,
    },
    /// The SAN becomes reliable again.
    SanHeal,
    /// The network drops a fraction of messages until [`MessageLossOff`].
    ///
    /// [`MessageLossOff`]: NemesisOp::MessageLossOff
    MessageLoss {
        /// Per-message drop probability in `[0, 1]`.
        rate: f64,
    },
    /// The network stops dropping messages.
    MessageLossOff,
}

/// A scheduled operation: apply [`op`](Self::op) once simulated time
/// reaches [`at_us`](Self::at_us).
#[derive(Debug, Clone, PartialEq)]
pub struct NemesisStep {
    /// When to apply, in simulated microseconds from schedule start.
    pub at_us: u64,
    /// What to apply.
    pub op: NemesisOp,
}

/// Which fault categories a schedule may draw from, and its shape knobs.
#[derive(Debug, Clone)]
pub struct NemesisConfig {
    /// How many fault injections to attempt (each pairs with its heal).
    pub faults: usize,
    /// Schedule horizon in simulated microseconds; every heal lands
    /// before `horizon_us - heal_tail_us`.
    pub horizon_us: u64,
    /// Quiet tail with no active faults, for convergence checking.
    pub heal_tail_us: u64,
    /// Earliest injection time (lets the cluster boot undisturbed).
    pub start_us: u64,
    /// Minimum gap between consecutive injections, microseconds.
    pub min_gap_us: u64,
    /// Fault duration bounds, microseconds.
    pub duration_us: (u64, u64),
    /// Allow node crashes (with later restarts).
    pub crash: bool,
    /// Allow minority network partitions.
    pub partition: bool,
    /// Allow SAN brown-outs (total unavailability windows).
    pub brownout: bool,
    /// Allow SAN flakiness (random transient op failures).
    pub flaky: bool,
    /// Allow random message loss.
    pub msg_loss: bool,
}

impl Default for NemesisConfig {
    fn default() -> Self {
        NemesisConfig {
            faults: 6,
            horizon_us: 60_000_000,
            heal_tail_us: 15_000_000,
            start_us: 2_000_000,
            min_gap_us: 1_000_000,
            duration_us: (500_000, 5_000_000),
            crash: true,
            partition: true,
            brownout: true,
            flaky: true,
            msg_loss: true,
        }
    }
}

impl NemesisConfig {
    /// A config with every category disabled; enable one for single-fault
    /// property tests.
    pub fn none() -> Self {
        NemesisConfig {
            crash: false,
            partition: false,
            brownout: false,
            flaky: false,
            msg_loss: false,
            ..NemesisConfig::default()
        }
    }

    /// A single-fault config: exactly the category selected by
    /// `choice % 5` is enabled (stable order: crash, partition, brown-out,
    /// flaky, message loss). This is how seeded property tests cover every
    /// category uniformly.
    pub fn single_fault(choice: u64) -> Self {
        let mut c = NemesisConfig::none();
        match choice % 5 {
            0 => c.crash = true,
            1 => c.partition = true,
            2 => c.brownout = true,
            3 => c.flaky = true,
            _ => c.msg_loss = true,
        }
        c
    }

    fn kinds(&self) -> Vec<Kind> {
        let mut v = Vec::new();
        if self.crash {
            v.push(Kind::Crash);
        }
        if self.partition {
            v.push(Kind::Partition);
        }
        if self.brownout {
            v.push(Kind::Brownout);
        }
        if self.flaky {
            v.push(Kind::Flaky);
        }
        if self.msg_loss {
            v.push(Kind::MsgLoss);
        }
        v
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    Crash,
    Partition,
    Brownout,
    Flaky,
    MsgLoss,
}

/// A complete seeded schedule over a cluster of `nodes` nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct NemesisPlan {
    /// The generating seed (replay key).
    pub seed: u64,
    /// Cluster size the schedule was generated for.
    pub nodes: usize,
    /// Horizon: run the system under test at least this long.
    pub horizon_us: u64,
    /// The operations, sorted by time (ties in emission order).
    pub steps: Vec<NemesisStep>,
}

impl NemesisPlan {
    /// Generates a schedule. Identical `(seed, nodes, config)` triples
    /// yield identical plans — byte for byte.
    pub fn generate(seed: u64, nodes: usize, config: &NemesisConfig) -> Self {
        let mut rng = TestRng::new(mix_seed(0x4E45_4D45_5349_5321, seed));
        let kinds = config.kinds();
        let fault_end = config.horizon_us.saturating_sub(config.heal_tail_us);
        let max_down = nodes.saturating_sub(1) / 2; // strict minority
        let mut steps: Vec<(u64, usize, NemesisOp)> = Vec::new();
        let emit = |steps: &mut Vec<(u64, usize, NemesisOp)>, at: u64, op: NemesisOp| {
            let idx = steps.len();
            steps.push((at, idx, op));
        };
        // Per-category "active until" clocks; a category is only re-armed
        // after its previous fault healed.
        let mut crashed_until: Vec<u64> = vec![0; nodes];
        let mut partition_until = 0u64;
        let mut san_until = 0u64;
        let mut loss_until = 0u64;
        let mut t = config.start_us;
        if !kinds.is_empty() && nodes > 0 {
            for _ in 0..config.faults {
                if t >= fault_end {
                    break;
                }
                let (lo, hi) = config.duration_us;
                let dur = lo + rng.u64_below(hi.saturating_sub(lo).max(1));
                let heal_at = (t + dur).min(fault_end);
                let kind = kinds[rng.u64_below(kinds.len() as u64) as usize];
                match kind {
                    Kind::Crash => {
                        let down_now = crashed_until.iter().filter(|u| **u > t).count();
                        let up: Vec<usize> =
                            (0..nodes).filter(|n| crashed_until[*n] <= t).collect();
                        if down_now < max_down && !up.is_empty() {
                            let node = up[rng.u64_below(up.len() as u64) as usize];
                            crashed_until[node] = heal_at;
                            emit(&mut steps, t, NemesisOp::CrashNode { node });
                            emit(&mut steps, heal_at, NemesisOp::RestartNode { node });
                        }
                    }
                    Kind::Partition => {
                        if partition_until <= t && max_down >= 1 {
                            let size = 1 + rng.u64_below(max_down as u64) as usize;
                            let mut pool: Vec<usize> = (0..nodes).collect();
                            let mut minority = Vec::new();
                            for _ in 0..size {
                                let i = rng.u64_below(pool.len() as u64) as usize;
                                minority.push(pool.swap_remove(i));
                            }
                            minority.sort_unstable();
                            partition_until = heal_at;
                            emit(&mut steps, t, NemesisOp::Partition { minority });
                            emit(&mut steps, heal_at, NemesisOp::HealPartition);
                        }
                    }
                    Kind::Brownout | Kind::Flaky => {
                        if san_until <= t {
                            san_until = heal_at;
                            let op = if kind == Kind::Brownout {
                                NemesisOp::SanBrownout
                            } else {
                                // 2%–30% in 1% steps: high enough to bite,
                                // low enough that retries converge.
                                let pct = 2 + rng.u64_below(29);
                                NemesisOp::SanFlaky {
                                    error_rate: pct as f64 / 100.0,
                                }
                            };
                            emit(&mut steps, t, op);
                            emit(&mut steps, heal_at, NemesisOp::SanHeal);
                        }
                    }
                    Kind::MsgLoss => {
                        if loss_until <= t {
                            loss_until = heal_at;
                            let pct = 5 + rng.u64_below(26); // 5%–30%
                            emit(
                                &mut steps,
                                t,
                                NemesisOp::MessageLoss {
                                    rate: pct as f64 / 100.0,
                                },
                            );
                            emit(&mut steps, heal_at, NemesisOp::MessageLossOff);
                        }
                    }
                }
                t += config.min_gap_us + rng.u64_below(config.min_gap_us.max(1));
            }
        }
        steps.sort_by_key(|a| (a.0, a.1));
        NemesisPlan {
            seed,
            nodes,
            horizon_us: config.horizon_us,
            steps: steps
                .into_iter()
                .map(|(at_us, _, op)| NemesisStep { at_us, op })
                .collect(),
        }
    }

    /// A stable 64-bit fingerprint of the full schedule. Two runs of the
    /// same seed must produce the same fingerprint — the cheap half of the
    /// "replays byte-identically" check.
    pub fn fingerprint(&self) -> u64 {
        let mut h = mix_seed(self.seed, self.nodes as u64 ^ self.horizon_us);
        let fold = |x: u64, h: &mut u64| *h = mix_seed(*h, x);
        for s in &self.steps {
            fold(s.at_us, &mut h);
            let (tag, a, b) = match &s.op {
                NemesisOp::CrashNode { node } => (1u64, *node as u64, 0u64),
                NemesisOp::RestartNode { node } => (2, *node as u64, 0),
                NemesisOp::Partition { minority } => {
                    let mut m = 0u64;
                    for n in minority {
                        m = mix_seed(m, *n as u64);
                    }
                    (3, minority.len() as u64, m)
                }
                NemesisOp::HealPartition => (4, 0, 0),
                NemesisOp::SanBrownout => (5, 0, 0),
                NemesisOp::SanFlaky { error_rate } => (6, error_rate.to_bits(), 0),
                NemesisOp::SanHeal => (7, 0, 0),
                NemesisOp::MessageLoss { rate } => (8, rate.to_bits(), 0),
                NemesisOp::MessageLossOff => (9, 0, 0),
            };
            fold(tag, &mut h);
            fold(a, &mut h);
            fold(b, &mut h);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let cfg = NemesisConfig::default();
        let a = NemesisPlan::generate(42, 5, &cfg);
        let b = NemesisPlan::generate(42, 5, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = NemesisPlan::generate(43, 5, &cfg);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn schedules_are_well_formed() {
        for seed in 0..200u64 {
            let cfg = NemesisConfig::default();
            let plan = NemesisPlan::generate(seed, 5, &cfg);
            let fault_end = cfg.horizon_us - cfg.heal_tail_us;
            let mut down = 0i64;
            let mut partitioned = false;
            let mut san = false;
            let mut lossy = false;
            let mut last = 0;
            for s in &plan.steps {
                assert!(s.at_us >= last, "sorted");
                last = s.at_us;
                assert!(s.at_us <= fault_end, "all activity before the tail");
                match &s.op {
                    NemesisOp::CrashNode { node } => {
                        assert!(*node < 5);
                        down += 1;
                        assert!(down <= 2, "majority stays up");
                    }
                    NemesisOp::RestartNode { .. } => down -= 1,
                    NemesisOp::Partition { minority } => {
                        assert!(!partitioned, "one partition at a time");
                        assert!(!minority.is_empty() && minority.len() <= 2);
                        partitioned = true;
                    }
                    NemesisOp::HealPartition => partitioned = false,
                    NemesisOp::SanBrownout | NemesisOp::SanFlaky { .. } => {
                        assert!(!san, "one SAN fault at a time");
                        san = true;
                    }
                    NemesisOp::SanHeal => san = false,
                    NemesisOp::MessageLoss { rate } => {
                        assert!(!lossy);
                        assert!(*rate > 0.0 && *rate <= 0.31);
                        lossy = true;
                    }
                    NemesisOp::MessageLossOff => lossy = false,
                }
            }
            assert_eq!(down, 0, "every crash healed (seed {seed})");
            assert!(!partitioned && !san && !lossy, "all healed (seed {seed})");
        }
    }

    #[test]
    fn single_fault_configs_cover_each_category() {
        for choice in 0..5u64 {
            let cfg = NemesisConfig::single_fault(choice);
            assert_eq!(
                [
                    cfg.crash,
                    cfg.partition,
                    cfg.brownout,
                    cfg.flaky,
                    cfg.msg_loss
                ]
                .iter()
                .filter(|b| **b)
                .count(),
                1
            );
            // And the plan only contains ops of that category.
            let plan = NemesisPlan::generate(7, 3, &cfg);
            for s in &plan.steps {
                let ok = match s.op {
                    NemesisOp::CrashNode { .. } | NemesisOp::RestartNode { .. } => cfg.crash,
                    NemesisOp::Partition { .. } | NemesisOp::HealPartition => cfg.partition,
                    NemesisOp::SanBrownout => cfg.brownout,
                    NemesisOp::SanFlaky { .. } => cfg.flaky,
                    NemesisOp::SanHeal => cfg.brownout || cfg.flaky,
                    NemesisOp::MessageLoss { .. } | NemesisOp::MessageLossOff => cfg.msg_loss,
                };
                assert!(ok, "plan leaked a disabled category: {:?}", s.op);
            }
        }
    }

    #[test]
    fn empty_config_yields_empty_plan() {
        let plan = NemesisPlan::generate(1, 5, &NemesisConfig::none());
        assert!(plan.steps.is_empty());
    }
}
