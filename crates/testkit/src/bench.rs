//! A tiny wall-clock benchmark harness.
//!
//! Replaces `criterion` for this workspace: warmup, a fixed iteration
//! count, min/mean/median/p95 over per-iteration wall times, a text table
//! on stdout, and a machine-readable JSON report under `results/`.
//!
//! Usage inside a `[[bench]]` target with `harness = false`:
//!
//! ```no_run
//! use dosgi_testkit::bench::Suite;
//!
//! fn main() {
//!     let mut suite = Suite::new("micro");
//!     suite.bench("hot_path", || {
//!         std::hint::black_box(2 + 2);
//!     });
//!     suite.finish();
//! }
//! ```

use std::time::Instant;

/// Per-benchmark sizing. `DOSGI_BENCH_ITERS` overrides `iters` globally.
#[derive(Debug, Clone, Copy)]
pub struct Plan {
    /// Untimed warmup iterations (page in code and data, settle caches).
    pub warmup: u32,
    /// Timed iterations; each is measured individually.
    pub iters: u32,
}

impl Default for Plan {
    fn default() -> Self {
        Plan {
            warmup: 10,
            iters: 60,
        }
    }
}

impl Plan {
    /// A plan for expensive benchmarks (whole-cluster simulations).
    pub fn heavy() -> Self {
        Plan {
            warmup: 1,
            iters: 8,
        }
    }

    fn effective_iters(&self) -> u32 {
        std::env::var("DOSGI_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.iters)
            .max(1)
    }
}

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Benchmark name (unique within a suite).
    pub name: String,
    /// Timed iterations behind the statistics.
    pub iters: u32,
    /// Fastest iteration.
    pub min_ns: u64,
    /// Arithmetic mean.
    pub mean_ns: u64,
    /// 50th percentile (nearest-rank).
    pub median_ns: u64,
    /// 95th percentile (nearest-rank).
    pub p95_ns: u64,
    /// Slowest iteration.
    pub max_ns: u64,
}

impl Report {
    fn from_samples(name: &str, mut ns: Vec<u64>) -> Report {
        ns.sort_unstable();
        let iters = ns.len() as u32;
        let sum: u128 = ns.iter().map(|&n| n as u128).sum();
        let rank = |p: f64| ns[((p * (ns.len() - 1) as f64).round()) as usize];
        Report {
            name: name.to_string(),
            iters,
            min_ns: ns[0],
            mean_ns: (sum / ns.len() as u128) as u64,
            median_ns: rank(0.50),
            p95_ns: rank(0.95),
            max_ns: ns[ns.len() - 1],
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"name\":{:?},\"iters\":{},\"min_ns\":{},\"mean_ns\":{},\
             \"median_ns\":{},\"p95_ns\":{},\"max_ns\":{}}}",
            self.name,
            self.iters,
            self.min_ns,
            self.mean_ns,
            self.median_ns,
            self.p95_ns,
            self.max_ns
        )
    }
}

fn human(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{:.1} µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

/// A named collection of benchmarks producing one JSON report file.
pub struct Suite {
    name: String,
    reports: Vec<Report>,
}

impl Suite {
    /// Creates an empty suite. Call [`finish`](Self::finish) to emit the
    /// report.
    pub fn new(name: &str) -> Suite {
        println!("suite {name}");
        Suite {
            name: name.to_string(),
            reports: Vec::new(),
        }
    }

    /// True when the binary was invoked by `cargo test` (which passes
    /// `--test`): benchmarks should be skipped, compile-checking is enough.
    pub fn invoked_as_test() -> bool {
        std::env::args().any(|a| a == "--test")
    }

    /// Benchmarks `f` under the default [`Plan`].
    pub fn bench(&mut self, name: &str, f: impl FnMut()) {
        self.bench_with(Plan::default(), name, f)
    }

    /// Benchmarks `f` under an explicit plan.
    pub fn bench_with(&mut self, plan: Plan, name: &str, mut f: impl FnMut()) {
        self.bench_batched_with(plan, name, || (), |()| f())
    }

    /// Benchmarks `work` with a fresh untimed `setup` product per
    /// iteration — the analogue of criterion's `iter_batched`.
    pub fn bench_batched<S>(&mut self, name: &str, setup: impl FnMut() -> S, work: impl FnMut(S)) {
        self.bench_batched_with(Plan::default(), name, setup, work)
    }

    /// [`bench_batched`](Self::bench_batched) under an explicit plan.
    pub fn bench_batched_with<S>(
        &mut self,
        plan: Plan,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut work: impl FnMut(S),
    ) {
        let iters = plan.effective_iters();
        for _ in 0..plan.warmup {
            work(setup());
        }
        let mut samples = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            work(input);
            samples.push(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        let report = Report::from_samples(name, samples);
        println!(
            "  {:<40} median {:>10}   p95 {:>10}   ({} iters)",
            report.name,
            human(report.median_ns),
            human(report.p95_ns),
            report.iters
        );
        self.reports.push(report);
    }

    /// Prints a footer and writes `results/bench_<suite>.json` at the
    /// workspace root (falling back to the current directory when no
    /// workspace root is found). Returns the path written, if any.
    pub fn finish(self) -> Option<std::path::PathBuf> {
        let body: Vec<String> = self.reports.iter().map(Report::json).collect();
        let json = format!(
            "{{\"suite\":{:?},\"results\":[{}]}}\n",
            self.name,
            body.join(",")
        );
        let dir = workspace_root().join("results");
        if std::fs::create_dir_all(&dir).is_err() {
            return None;
        }
        let path = dir.join(format!("bench_{}.json", self.name));
        match std::fs::write(&path, json) {
            Ok(()) => {
                println!("suite {} -> {}", self.name, path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("suite {}: could not write report: {e}", self.name);
                None
            }
        }
    }
}

/// Walks up from the current directory to the outermost `Cargo.toml`
/// declaring `[workspace]`; benches run with a crate-local cwd, reports
/// belong at the repo root. Public so bins and tests can locate
/// `results/` regardless of their own cwd.
pub fn workspace_root() -> std::path::PathBuf {
    let start = std::env::current_dir().unwrap_or_else(|_| ".".into());
    let mut found = start.clone();
    for dir in start.ancestors() {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                found = dir.to_path_buf();
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_stats_are_order_statistics() {
        let r = Report::from_samples("x", vec![50, 10, 30, 20, 40]);
        assert_eq!(r.min_ns, 10);
        assert_eq!(r.max_ns, 50);
        assert_eq!(r.median_ns, 30);
        assert_eq!(r.mean_ns, 30);
        assert_eq!(r.p95_ns, 50);
        assert_eq!(r.iters, 5);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = Report::from_samples("codec/encode", vec![1, 2, 3]);
        let j = r.json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"name\":\"codec/encode\""));
        assert!(j.contains("\"median_ns\":2"));
    }

    #[test]
    fn human_units_scale() {
        assert_eq!(human(500), "500 ns");
        assert_eq!(human(25_000), "25.0 µs");
        assert_eq!(human(25_000_000), "25.0 ms");
        assert_eq!(human(12_500_000_000), "12.50 s");
    }

    #[test]
    fn suite_runs_setup_per_iteration() {
        let mut suite = Suite::new("selftest");
        let mut setups = 0u32;
        let mut works = 0u32;
        let plan = Plan {
            warmup: 2,
            iters: 5,
        };
        suite.bench_batched_with(
            plan,
            "counting",
            || {
                setups += 1;
            },
            |()| {
                works += 1;
            },
        );
        if std::env::var("DOSGI_BENCH_ITERS").is_err() {
            assert_eq!(setups, 7); // 2 warmup + 5 timed
            assert_eq!(works, 7);
        }
        assert_eq!(suite.reports.len(), 1);
    }
}
