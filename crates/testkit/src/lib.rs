//! # dosgi-testkit
//!
//! The workspace's self-contained test and measurement substrate. The
//! dependability claims of this repo are only worth what its validation
//! harness can demonstrate, and that harness must run anywhere — including
//! fully offline build environments with an empty cargo registry. So this
//! crate replaces the external `rand` / `proptest` / `criterion` stack
//! with three small, dependency-free modules:
//!
//! * [`rng`] — a seedable xoshiro256** PRNG ([`TestRng`]), the single
//!   source of pseudo-randomness for simulations, load generation and
//!   tests. Deterministic in its seed, pinned by known-answer tests.
//! * [`prop`] — a deterministic property-testing harness: generator
//!   combinators ([`prop::Gen`]), fixed case counts, failing-seed
//!   reporting with `DOSGI_PROP_SEED` replay, and opt-in linear shrinking.
//! * [`bench`] — a wall-clock micro/macro benchmark harness
//!   ([`bench::Suite`]): warmup + N timed iterations, median/p95, JSON
//!   reports under `results/`.
//! * [`nemesis`] — seeded, deterministic chaos schedules
//!   ([`NemesisPlan`]): crash × partition × SAN brown-out × message-loss
//!   fault timelines as pure data, well-formed by construction, for the
//!   chaos harness in `dosgi-core` to apply and check invariants against.
//! * [`json`] — a strict JSON reader ([`Json`]) so tests and check
//!   tooling can parse the bench / telemetry reports this workspace
//!   writes.
//! * [`golden`] — a committed-fixture harness: byte-exact comparison
//!   against files under the workspace root, unified diffs on mismatch,
//!   and an env-var regeneration protocol.
//!
//! Policy: no crate in this workspace may depend on the crates.io
//! registry. If a capability is missing, it is added here.

pub mod bench;
pub mod golden;
pub mod json;
pub mod nemesis;
pub mod prop;
pub mod rng;

pub use bench::{workspace_root, Plan, Report, Suite};
pub use golden::{assert_golden, unified_diff, GoldenOutcome};
pub use json::{Json, JsonError};
pub use nemesis::{NemesisConfig, NemesisOp, NemesisPlan, NemesisStep};
pub use prop::{Config as PropConfig, Gen, PropResult};
pub use rng::{mix_seed, splitmix64, TestRng};
