//! A small JSON reader for validating the workspace's own reports.
//!
//! The bench harness and `dosgi-telemetry` *write* JSON with hand-rolled
//! format strings; this module is the matching *reader* so tests and
//! check tooling can parse those reports back without a registry
//! dependency. It is a strict recursive-descent parser for standard
//! JSON (RFC 8259): objects, arrays, strings with escapes, numbers,
//! booleans, and null.
//!
//! Numbers are kept in two forms: every number parses as `f64`, and
//! numbers that are exactly unsigned/signed integers are additionally
//! available via [`Json::as_u64`] / [`Json::as_i64`] — the workspace's
//! reports are integer-only, so tests normally use those.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, with the raw text kept for exact integer access.
    Num(f64, String),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is normalized (sorted); duplicate keys are
    /// a parse error.
    Obj(BTreeMap<String, Json>),
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse `text` as a single JSON document (trailing whitespace ok).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Array element lookup; `None` on non-arrays or out of range.
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(v) => v.get(i),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(f, _) => Some(*f),
            _ => None,
        }
    }

    /// The number as an exact `u64`, if this is a non-negative integer
    /// literal (no fraction, no exponent, in range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(_, raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as an exact `i64`, if this is an integer literal.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(_, raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            at: self.i,
            msg: msg.into(),
        }
    }

    fn ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let val = self.value()?;
            if m.insert(key.clone(), val).is_some() {
                return Err(self.err(format!("duplicate key {key:?}")));
            }
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            if (0xD800..=0xDBFF).contains(&cp) {
                                // High surrogate: require the paired low one.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("bad surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp).ok_or_else(|| self.err("bad \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(self.err(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // char boundary arithmetic is safe).
                    let rest = &self.b[self.i..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.i + 4 > self.b.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.i += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits_from = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == digits_from {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let frac_from = self.i;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
            if self.i == frac_from {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            let exp_from = self.i;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
            if self.i == exp_from {
                return Err(self.err("expected exponent digits"));
            }
        }
        let raw = std::str::from_utf8(&self.b[start..self.i])
            .unwrap()
            .to_owned();
        let f: f64 = raw.parse().map_err(|_| self.err("unparseable number"))?;
        Ok(Json::Num(f, raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_f64(), Some(1.5));
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("2e3").unwrap().as_f64(), Some(2000.0));
        assert_eq!(
            Json::parse("\"hi\\n\\u0041\"").unwrap().as_str(),
            Some("hi\nA")
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = Json::parse("{\"a\":[1,2,{\"b\":null}],\"c\":{\"d\":\"e\"},\"f\":true}").unwrap();
        assert_eq!(
            doc.get("a").and_then(|a| a.idx(1)).and_then(Json::as_u64),
            Some(2)
        );
        assert!(doc
            .get("a")
            .and_then(|a| a.idx(2))
            .and_then(|o| o.get("b"))
            .unwrap()
            .is_null());
        assert_eq!(
            doc.get("c").and_then(|c| c.get("d")).and_then(Json::as_str),
            Some("e")
        );
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "tru",
            "01x",
            "\"unterminated",
            "{\"a\":1}extra",
            "{\"a\":1,\"a\":2}",
            "\"\\q\"",
            "[1 2]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{1F600}")
        );
        assert!(Json::parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn reads_a_bench_style_report() {
        let doc = Json::parse(
            "{\"suite\":\"demo\",\"results\":[{\"name\":\"x\",\"iters\":3,\"min_ns\":1,\
             \"mean_ns\":2,\"median_ns\":2,\"p95_ns\":3,\"max_ns\":3}]}\n",
        )
        .unwrap();
        assert_eq!(doc.get("suite").and_then(Json::as_str), Some("demo"));
        let first = doc.get("results").and_then(|r| r.idx(0)).unwrap();
        assert_eq!(first.get("iters").and_then(Json::as_u64), Some(3));
    }
}
