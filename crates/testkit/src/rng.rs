//! A small, fast, seedable PRNG: xoshiro256** seeded via SplitMix64.
//!
//! This is the single source of pseudo-randomness in the workspace. It is
//! *not* cryptographic; it exists so that simulations, load generators and
//! property tests are deterministic in a 64-bit seed and reproducible on
//! every platform with no external crates.

/// One step of the SplitMix64 sequence; also usable as a standalone mixer
/// for deriving per-case seeds from a base seed.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes two words into one well-distributed word — used to derive
/// independent sub-seeds (e.g. per-case seeds from a run seed).
#[inline]
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut s = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64(&mut s)
}

/// A seedable xoshiro256** generator.
///
/// Same-seed instances produce identical sequences forever; that property
/// is load-bearing for the whole repo (simulation replay, property-test
/// reproduction, regression cases), so the algorithm must never change
/// silently. See `tests` for pinned known-answer vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded, per the
    /// xoshiro authors' recommendation; any seed, including 0, is fine).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly distributed bits (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `[0, n)`. Unbiased (rejection sampling).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "u64_below(0)");
        // Widening-multiply method (Lemire); reject the biased zone.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform draw from the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "u64_in: empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.u64_below(span + 1)
    }

    /// A uniform draw from the inclusive range `[lo, hi]` of `usize`.
    #[inline]
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// A uniform draw from the inclusive range `[lo, hi]` of `i64`.
    #[inline]
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "i64_in: empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128) as u128;
        if span == u64::MAX as u128 {
            return self.next_u64() as i64;
        }
        (lo as i128 + self.u64_below(span as u64 + 1) as i128) as i64
    }

    /// A uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// A uniform i64 over the full range.
    #[inline]
    pub fn any_i64(&mut self) -> i64 {
        self.next_u64() as i64
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniform byte.
    #[inline]
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Fills `buf` with uniform bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Derives an independent generator (distinct stream) from this one.
    pub fn fork(&mut self) -> TestRng {
        TestRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors_pin_the_algorithm() {
        // If these change, every recorded regression seed in the repo is
        // invalidated. Do not "fix" the constants; fix the generator.
        let mut r = TestRng::new(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
        let mut r = TestRng::new(42);
        assert_eq!(r.next_u64(), 1546998764402558742);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::new(8);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| c.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut r = TestRng::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean={mean}");
    }

    #[test]
    fn ranges_hit_every_value_and_respect_bounds() {
        let mut r = TestRng::new(5);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = r.u64_in(10, 15);
            assert!((10..=15).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "not all values drawn: {seen:?}");
        for _ in 0..1000 {
            let v = r.i64_in(-3, 3);
            assert!((-3..=3).contains(&v));
        }
        assert_eq!(r.u64_in(9, 9), 9);
        let _ = r.i64_in(i64::MIN, i64::MAX); // full span must not overflow
    }

    #[test]
    fn u64_below_is_unbiased_enough() {
        let mut r = TestRng::new(11);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.u64_below(3) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "u64_below(0)")]
    fn zero_range_panics() {
        TestRng::new(1).u64_below(0);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = TestRng::new(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut a = TestRng::new(1);
        let mut f = a.fork();
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| f.next_u64()).collect::<Vec<_>>()
        );
    }
}
