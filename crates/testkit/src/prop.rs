//! A minimal deterministic property-testing harness.
//!
//! Replaces `proptest` for this workspace. Differences are deliberate:
//!
//! * **Deterministic by default.** Every run draws the same cases from a
//!   fixed base seed, so CI and laptops see identical inputs. Failures
//!   print the failing case seed; re-running with
//!   `DOSGI_PROP_SEED=0x<seed>` (or [`Config::only_seed`]) replays exactly
//!   that case.
//! * **Explicit generators.** A [`Gen<T>`] is just a seeded closure —
//!   composition is ordinary function composition, no macro DSL.
//! * **Linear shrinking, opt-in.** [`check_shrink`] walks caller-provided
//!   shrink candidates greedily until none fail; [`check`] skips shrinking.

use crate::rng::{mix_seed, TestRng};
use std::fmt::Debug;
use std::rc::Rc;

/// A reusable generator of `T` values from a [`TestRng`].
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            f: Rc::clone(&self.f),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// Wraps a sampling closure.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        Gen { f: Rc::new(f) }
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }

    /// A generator applying `f` to every sampled value.
    pub fn map<U: 'static>(&self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let inner = Rc::clone(&self.f);
        Gen::new(move |rng| f(inner(rng)))
    }
}

/// Always the same value.
pub fn just<T: Clone + 'static>(value: T) -> Gen<T> {
    Gen::new(move |_| value.clone())
}

/// Uniform `u64` in `[lo, hi]`.
pub fn u64s(lo: u64, hi: u64) -> Gen<u64> {
    Gen::new(move |rng| rng.u64_in(lo, hi))
}

/// Uniform `usize` in `[lo, hi]`.
pub fn usizes(lo: usize, hi: usize) -> Gen<usize> {
    Gen::new(move |rng| rng.usize_in(lo, hi))
}

/// Uniform `u8` in `[lo, hi]`.
pub fn u8s(lo: u8, hi: u8) -> Gen<u8> {
    Gen::new(move |rng| rng.u64_in(lo as u64, hi as u64) as u8)
}

/// Uniform `u16` in `[lo, hi]`.
pub fn u16s(lo: u16, hi: u16) -> Gen<u16> {
    Gen::new(move |rng| rng.u64_in(lo as u64, hi as u64) as u16)
}

/// Uniform `u32` in `[lo, hi]`.
pub fn u32s(lo: u32, hi: u32) -> Gen<u32> {
    Gen::new(move |rng| rng.u64_in(lo as u64, hi as u64) as u32)
}

/// Uniform `i64` in `[lo, hi]`.
pub fn i64s(lo: i64, hi: i64) -> Gen<i64> {
    Gen::new(move |rng| rng.i64_in(lo, hi))
}

/// Uniform `i64` over the whole range.
pub fn any_i64() -> Gen<i64> {
    Gen::new(|rng| rng.any_i64())
}

/// Uniform `f64` in `[lo, hi)`.
pub fn f64s(lo: f64, hi: f64) -> Gen<f64> {
    Gen::new(move |rng| rng.f64_in(lo, hi))
}

/// Fair coin.
pub fn bools() -> Gen<bool> {
    Gen::new(|rng| rng.chance(0.5))
}

/// Uniform byte.
pub fn bytes() -> Gen<u8> {
    Gen::new(|rng| rng.byte())
}

/// A `Vec<T>` with length uniform in `[min_len, max_len]`.
pub fn vecs<T: 'static>(elem: Gen<T>, min_len: usize, max_len: usize) -> Gen<Vec<T>> {
    Gen::new(move |rng| {
        let n = rng.usize_in(min_len, max_len);
        (0..n).map(|_| elem.sample(rng)).collect()
    })
}

/// An ASCII-lowercase string with length uniform in `[min_len, max_len]`.
pub fn lowercase(min_len: usize, max_len: usize) -> Gen<String> {
    Gen::new(move |rng| {
        let n = rng.usize_in(min_len, max_len);
        (0..n)
            .map(|_| (b'a' + rng.u64_below(26) as u8) as char)
            .collect()
    })
}

/// Picks one of the given generators uniformly per sample.
///
/// # Panics
///
/// Panics if `choices` is empty.
pub fn one_of<T: 'static>(choices: Vec<Gen<T>>) -> Gen<T> {
    assert!(!choices.is_empty(), "one_of: no choices");
    Gen::new(move |rng| {
        let i = rng.u64_below(choices.len() as u64) as usize;
        choices[i].sample(rng)
    })
}

/// The outcome of one property evaluation: `Ok(())` or a failure message.
pub type PropResult = Result<(), String>;

/// Fails a property with a formatted message unless `cond` holds — the
/// harness's analogue of `prop_assert!`.
#[macro_export]
macro_rules! prop_verify {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails a property unless the two values compare equal — the harness's
/// analogue of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_verify_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}\n  left: {l:?}\n right: {r:?}",
                format!($($fmt)+)
            ));
        }
    }};
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Cases to run (ignored when replaying a single seed).
    pub cases: u32,
    /// Base seed; per-case seeds are mixed from it. Fixed so that runs are
    /// identical everywhere.
    pub seed: u64,
    /// Upper bound on shrink iterations in [`check_shrink`].
    pub shrink_steps: u32,
    /// When set, run exactly this one case seed (normally injected via the
    /// `DOSGI_PROP_SEED` environment variable).
    pub only_seed: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            seed: 0xD05_61D0_5610_57E5,
            shrink_steps: 500,
            only_seed: seed_from_env(),
        }
    }
}

impl Config {
    /// A config running `cases` cases with everything else default.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Reads `DOSGI_PROP_SEED` (decimal, or hex with an `0x` prefix).
fn seed_from_env() -> Option<u64> {
    let raw = std::env::var("DOSGI_PROP_SEED").ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => panic!("DOSGI_PROP_SEED={raw:?} is not a valid u64"),
    }
}

/// Runs `prop` over `cfg.cases` values drawn from `gen`, panicking with a
/// reproduction seed on the first failure. No shrinking.
pub fn check_with<T: Debug + 'static>(
    cfg: &Config,
    name: &str,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> PropResult,
) {
    run(cfg, name, gen, None::<fn(&T) -> Vec<T>>, prop)
}

/// [`check_with`] under the default [`Config`].
pub fn check<T: Debug + 'static>(name: &str, gen: &Gen<T>, prop: impl Fn(&T) -> PropResult) {
    check_with(&Config::default(), name, gen, prop)
}

/// Like [`check_with`], but on failure greedily walks `shrink` candidates
/// (first failing candidate wins, repeat) before reporting, bounded by
/// `cfg.shrink_steps`.
pub fn check_shrink<T: Debug + 'static>(
    cfg: &Config,
    name: &str,
    gen: &Gen<T>,
    shrink: impl Fn(&T) -> Vec<T>,
    prop: impl Fn(&T) -> PropResult,
) {
    run(cfg, name, gen, Some(shrink), prop)
}

fn run<T: Debug + 'static, S: Fn(&T) -> Vec<T>>(
    cfg: &Config,
    name: &str,
    gen: &Gen<T>,
    shrink: Option<S>,
    prop: impl Fn(&T) -> PropResult,
) {
    let case_seeds: Vec<u64> = match cfg.only_seed {
        Some(seed) => vec![seed],
        None => (0..cfg.cases)
            .map(|i| mix_seed(cfg.seed, i as u64))
            .collect(),
    };
    for (i, &case_seed) in case_seeds.iter().enumerate() {
        let mut rng = TestRng::new(case_seed);
        let value = gen.sample(&mut rng);
        if let Err(first_err) = prop(&value) {
            let (value, err, shrunk) = match &shrink {
                None => (value, first_err, 0),
                Some(s) => shrink_loop(cfg, s, &prop, value, first_err),
            };
            let shrunk_note = if shrunk > 0 {
                format!(" (shrunk {shrunk} steps)")
            } else {
                String::new()
            };
            panic!(
                "property '{name}' failed on case {i} with seed \
                 0x{case_seed:016x}{shrunk_note}\n  input: {value:?}\n  cause: {err}\n  \
                 reproduce with: DOSGI_PROP_SEED=0x{case_seed:x} cargo test {name}"
            );
        }
    }
}

fn shrink_loop<T: Debug>(
    cfg: &Config,
    shrink: impl Fn(&T) -> Vec<T>,
    prop: &impl Fn(&T) -> PropResult,
    mut value: T,
    mut err: String,
) -> (T, String, u32) {
    let mut steps = 0;
    let mut budget = cfg.shrink_steps;
    'outer: while budget > 0 {
        for candidate in shrink(&value) {
            budget = budget.saturating_sub(1);
            if let Err(candidate_err) = prop(&candidate) {
                value = candidate;
                err = candidate_err;
                steps += 1;
                continue 'outer;
            }
            if budget == 0 {
                break;
            }
        }
        break;
    }
    (value, err, steps)
}

/// Shrink candidates for a vector: drop one element at a time (front-to-
/// back), plus each half. Linear and cheap; pair with [`check_shrink`].
pub fn shrink_vec<T: Clone>(v: &[T]) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    if v.is_empty() {
        return out;
    }
    if v.len() > 1 {
        out.push(v[..v.len() / 2].to_vec());
        out.push(v[v.len() / 2..].to_vec());
    }
    for i in 0..v.len() {
        let mut shorter = v.to_vec();
        shorter.remove(i);
        out.push(shorter);
    }
    out
}

/// Shrink candidates for an integer: zero, then successive halvings toward
/// zero.
pub fn shrink_u64(v: u64) -> Vec<u64> {
    if v == 0 {
        return Vec::new();
    }
    let mut out = vec![0, v / 2];
    if v > 1 {
        out.push(v - 1);
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn no_env() -> Config {
        // Unit tests must not inherit a replay seed from the environment.
        Config {
            only_seed: None,
            ..Config::default()
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let count = RefCell::new(0u32);
        let cfg = Config {
            cases: 40,
            ..no_env()
        };
        check_with(&cfg, "counts", &u64s(0, 10), |v| {
            *count.borrow_mut() += 1;
            prop_verify!(*v <= 10);
            Ok(())
        });
        assert_eq!(*count.borrow(), 40);
    }

    #[test]
    fn failure_reports_reproducible_seed() {
        let cfg = no_env();
        let gen = u64s(0, 1000);
        let err = catch_unwind(AssertUnwindSafe(|| {
            check_with(&cfg, "fails_over_500", &gen, |v| {
                prop_verify!(*v <= 500, "{v} > 500");
                Ok(())
            });
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap().clone();
        assert!(msg.contains("DOSGI_PROP_SEED=0x"), "{msg}");
        // Extract the seed and replay: must fail again, deterministically.
        let seed_hex = msg
            .split("seed 0x")
            .nth(1)
            .unwrap()
            .chars()
            .take_while(|c| c.is_ascii_hexdigit())
            .collect::<String>();
        let seed = u64::from_str_radix(&seed_hex, 16).unwrap();
        let replay = Config {
            only_seed: Some(seed),
            ..no_env()
        };
        let failing_value = RefCell::new(None);
        let replay_err = catch_unwind(AssertUnwindSafe(|| {
            check_with(&replay, "fails_over_500", &gen, |v| {
                *failing_value.borrow_mut() = Some(*v);
                prop_verify!(*v <= 500, "{v} > 500");
                Ok(())
            });
        }))
        .unwrap_err();
        let replay_msg = replay_err.downcast_ref::<String>().unwrap();
        assert!(replay_msg.contains(&seed_hex), "{replay_msg}");
        assert!(failing_value.borrow().unwrap() > 500);
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let draw_all = || {
            let cfg = Config {
                cases: 16,
                ..no_env()
            };
            let values = RefCell::new(Vec::new());
            check_with(&cfg, "collect", &u64s(0, u64::MAX), |v| {
                values.borrow_mut().push(*v);
                Ok(())
            });
            values.into_inner()
        };
        assert_eq!(draw_all(), draw_all());
    }

    #[test]
    fn shrinking_finds_a_smaller_counterexample() {
        // Property: vec has no element >= 100. Failing vecs shrink toward a
        // single offending element.
        let cfg = no_env();
        let gen = vecs(u64s(0, 150), 0, 20);
        let err = catch_unwind(AssertUnwindSafe(|| {
            check_shrink(
                &cfg,
                "small_elems",
                &gen,
                |v| shrink_vec(v),
                |v| {
                    prop_verify!(v.iter().all(|&x| x < 100), "{v:?} has a big element");
                    Ok(())
                },
            );
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("shrunk"), "{msg}");
        // The reported input must be a minimal-length counterexample.
        let start = msg.find("input: [").unwrap() + "input: ".len();
        let end = msg[start..].find(']').unwrap() + start + 1;
        let reported = &msg[start..end];
        let elems = reported.trim_matches(['[', ']']).split(',').count();
        assert_eq!(elems, 1, "expected 1-element shrink, got {reported}");
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::new(1);
        let g = one_of(vec![
            u8s(0, 3).map(|v| v as u64),
            u64s(100, 200),
            just(7u64),
        ]);
        for _ in 0..200 {
            let v = g.sample(&mut rng);
            assert!(v <= 3 || (100..=200).contains(&v) || v == 7, "{v}");
        }
        let s = lowercase(1, 8).sample(&mut rng);
        assert!((1..=8).contains(&s.len()));
        assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        let v = vecs(bools(), 2, 5).sample(&mut rng);
        assert!((2..=5).contains(&v.len()));
    }

    #[test]
    fn shrink_helpers_move_toward_small() {
        assert!(shrink_u64(0).is_empty());
        assert_eq!(shrink_u64(1), vec![0]);
        assert!(shrink_u64(10).contains(&5));
        let candidates = shrink_vec(&[1, 2, 3]);
        assert!(candidates.iter().all(|c| c.len() < 3));
        assert!(candidates.contains(&vec![2, 3]));
    }
}
