//! Golden-file (committed-fixture) test harness.
//!
//! A golden test renders some observable surface to a deterministic string,
//! then compares it byte-for-byte against a fixture committed under the
//! workspace root. On mismatch the test fails with a unified diff; setting
//! the suite's regeneration environment variable (e.g.
//! `SAN_FIXTURE_WRITE=1`) rewrites the fixture from the current output so
//! an *intentional* contract change is a reviewed file diff, not a silent
//! drift.
//!
//! The harness is generic: it knows about paths, diffs and the regen
//! protocol, not about what is being pinned. The SAN backend conformance
//! suite (`dosgi-san::conformance`) is its first client.

use crate::bench::workspace_root;
use std::fs;
use std::path::PathBuf;

/// Outcome of a golden comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoldenOutcome {
    /// Fixture exists and matches the rendered output byte-for-byte.
    Match,
    /// The regen variable was set: the fixture was (re)written.
    Updated,
    /// Fixture differs; payload is a unified diff (`-` fixture, `+` actual).
    Mismatch(String),
    /// Fixture file does not exist and regeneration was not requested.
    Missing(PathBuf),
}

/// Resolves a fixture path relative to the workspace root.
pub fn fixture_path(rel: &str) -> PathBuf {
    workspace_root().join(rel)
}

/// Compares `actual` against the fixture at `rel` (workspace-relative).
/// When the environment variable `write_env` is set to a non-empty value
/// other than `0`, rewrites the fixture instead of comparing.
pub fn compare(rel: &str, actual: &str, write_env: &str) -> GoldenOutcome {
    let path = fixture_path(rel);
    let regen = std::env::var(write_env).is_ok_and(|v| !v.is_empty() && v != "0");
    if regen {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("create fixture directory");
        }
        fs::write(&path, actual).expect("write fixture");
        return GoldenOutcome::Updated;
    }
    match fs::read_to_string(&path) {
        Err(_) => GoldenOutcome::Missing(path),
        Ok(expected) if expected == actual => GoldenOutcome::Match,
        Ok(expected) => GoldenOutcome::Mismatch(unified_diff(&expected, actual, rel)),
    }
}

/// Asserts `actual` matches the fixture, panicking with a unified diff and
/// regeneration instructions otherwise. This is the assertion golden tests
/// call.
pub fn assert_golden(rel: &str, actual: &str, write_env: &str) {
    match compare(rel, actual, write_env) {
        GoldenOutcome::Match => {}
        GoldenOutcome::Updated => {
            eprintln!("golden: rewrote {rel} ({write_env} set)");
        }
        GoldenOutcome::Missing(path) => {
            panic!(
                "golden fixture missing: {}\n  run with {write_env}=1 to create it",
                path.display()
            );
        }
        GoldenOutcome::Mismatch(diff) => {
            panic!(
                "golden fixture mismatch: {rel}\n{diff}\n  if the change is intentional, \
                 rerun with {write_env}=1 and commit the updated fixture"
            );
        }
    }
}

/// A minimal unified diff: common prefix and suffix are elided to a few
/// context lines, the differing middle is shown in full as `-` (fixture)
/// and `+` (actual) lines. Line-exact, not word-exact — fixtures are
/// line-oriented by construction.
pub fn unified_diff(expected: &str, actual: &str, label: &str) -> String {
    const CONTEXT: usize = 3;
    let e: Vec<&str> = expected.lines().collect();
    let a: Vec<&str> = actual.lines().collect();

    let mut prefix = 0;
    while prefix < e.len() && prefix < a.len() && e[prefix] == a[prefix] {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < e.len() - prefix && suffix < a.len() - prefix {
        if e[e.len() - 1 - suffix] != a[a.len() - 1 - suffix] {
            break;
        }
        suffix += 1;
    }

    let mut out = String::new();
    out.push_str(&format!("--- fixture {label}\n+++ actual\n"));
    let ctx_start = prefix.saturating_sub(CONTEXT);
    out.push_str(&format!(
        "@@ -{},{} +{},{} @@\n",
        ctx_start + 1,
        e.len() - suffix - ctx_start,
        ctx_start + 1,
        a.len() - suffix - ctx_start
    ));
    for line in &e[ctx_start..prefix] {
        out.push_str(&format!(" {line}\n"));
    }
    for line in &e[prefix..e.len() - suffix] {
        out.push_str(&format!("-{line}\n"));
    }
    for line in &a[prefix..a.len() - suffix] {
        out.push_str(&format!("+{line}\n"));
    }
    let ctx_end = (e.len() - suffix + CONTEXT).min(e.len());
    for line in &e[e.len() - suffix..ctx_end] {
        out.push_str(&format!(" {line}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_diff_to_headers_only() {
        let d = unified_diff("a\nb\n", "a\nb\n", "t");
        assert!(!d.contains("\n-"));
        assert!(!d.contains("\n+a"));
    }

    #[test]
    fn diff_marks_changed_middle_with_context() {
        let expected = "l1\nl2\nl3\nl4\nl5\nl6\nl7\n";
        let actual = "l1\nl2\nl3\nCHANGED\nl5\nl6\nl7\n";
        let d = unified_diff(expected, actual, "t");
        assert!(d.contains("-l4\n"), "{d}");
        assert!(d.contains("+CHANGED\n"), "{d}");
        assert!(d.contains(" l3\n"), "context before: {d}");
        assert!(d.contains(" l5\n"), "context after: {d}");
        assert!(!d.contains("-l1"), "unchanged prefix must not appear as -");
    }

    #[test]
    fn diff_handles_pure_insertion_and_deletion() {
        let d = unified_diff("a\nb\n", "a\nx\nb\n", "t");
        assert!(d.contains("+x\n"), "{d}");
        let d = unified_diff("a\nx\nb\n", "a\nb\n", "t");
        assert!(d.contains("-x\n"), "{d}");
    }

    #[test]
    fn compare_missing_fixture_reports_missing() {
        match compare(
            "results/definitely/not/a/real/fixture.txt",
            "x",
            "DOSGI_GOLDEN_TEST_NO_SUCH_VAR",
        ) {
            GoldenOutcome::Missing(p) => {
                assert!(p.ends_with("results/definitely/not/a/real/fixture.txt"));
            }
            other => panic!("expected Missing, got {other:?}"),
        }
    }
}
