//! Service property values.

use dosgi_san::Value;
use std::fmt;

/// A value in a service's property dictionary.
///
/// Mirrors the property types OSGi filters operate on. Ordered comparisons
/// (`>=`, `<=`) are defined for numeric values; strings compare
/// lexicographically, as in the OSGi filter specification.
#[derive(Debug, Clone, PartialEq)]
pub enum PropValue {
    /// A string.
    Str(String),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A list of strings (multi-valued property; a filter equality matches
    /// if *any* element matches).
    List(Vec<String>),
}

impl PropValue {
    /// Renders the value the way a filter literal would be written.
    pub fn literal(&self) -> String {
        match self {
            PropValue::Str(s) => s.clone(),
            PropValue::Int(i) => i.to_string(),
            PropValue::Float(f) => f.to_string(),
            PropValue::Bool(b) => b.to_string(),
            PropValue::List(l) => l.join(","),
        }
    }

    /// Converts to a SAN [`Value`] for persistence.
    pub fn to_value(&self) -> Value {
        match self {
            PropValue::Str(s) => Value::map().with("t", "s").with("v", s.as_str()),
            PropValue::Int(i) => Value::map().with("t", "i").with("v", *i),
            PropValue::Float(f) => Value::map().with("t", "f").with("v", *f),
            PropValue::Bool(b) => Value::map().with("t", "b").with("v", *b),
            PropValue::List(l) => Value::map().with("t", "l").with(
                "v",
                Value::List(l.iter().map(|s| Value::from(s.as_str())).collect()),
            ),
        }
    }

    /// Reads back a value produced by [`to_value`](Self::to_value).
    ///
    /// # Errors
    ///
    /// Returns a description when the tree is not a valid encoding.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let t = v
            .get("t")
            .and_then(Value::as_str)
            .ok_or("missing prop tag")?;
        let val = v.get("v").ok_or("missing prop value")?;
        match t {
            "s" => Ok(PropValue::Str(
                val.as_str().ok_or("bad str prop")?.to_owned(),
            )),
            "i" => Ok(PropValue::Int(val.as_int().ok_or("bad int prop")?)),
            "f" => Ok(PropValue::Float(val.as_float().ok_or("bad float prop")?)),
            "b" => Ok(PropValue::Bool(val.as_bool().ok_or("bad bool prop")?)),
            "l" => {
                let items = val.as_list().ok_or("bad list prop")?;
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(item.as_str().ok_or("bad list element")?.to_owned());
                }
                Ok(PropValue::List(out))
            }
            other => Err(format!("unknown prop tag {other:?}")),
        }
    }
}

impl fmt::Display for PropValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.literal())
    }
}

impl From<&str> for PropValue {
    fn from(v: &str) -> Self {
        PropValue::Str(v.to_owned())
    }
}
impl From<String> for PropValue {
    fn from(v: String) -> Self {
        PropValue::Str(v)
    }
}
impl From<i64> for PropValue {
    fn from(v: i64) -> Self {
        PropValue::Int(v)
    }
}
impl From<i32> for PropValue {
    fn from(v: i32) -> Self {
        PropValue::Int(v as i64)
    }
}
impl From<f64> for PropValue {
    fn from(v: f64) -> Self {
        PropValue::Float(v)
    }
}
impl From<bool> for PropValue {
    fn from(v: bool) -> Self {
        PropValue::Bool(v)
    }
}
impl From<Vec<String>> for PropValue {
    fn from(v: Vec<String>) -> Self {
        PropValue::List(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals() {
        assert_eq!(PropValue::from("x").literal(), "x");
        assert_eq!(PropValue::from(3i64).literal(), "3");
        assert_eq!(PropValue::from(true).literal(), "true");
        assert_eq!(
            PropValue::List(vec!["a".into(), "b".into()]).literal(),
            "a,b"
        );
    }

    #[test]
    fn value_round_trip() {
        for p in [
            PropValue::from("hello"),
            PropValue::from(-7i64),
            PropValue::from(2.5f64),
            PropValue::from(false),
            PropValue::List(vec!["x".into(), "y".into()]),
        ] {
            assert_eq!(PropValue::from_value(&p.to_value()).unwrap(), p);
        }
    }

    #[test]
    fn from_value_rejects_garbage() {
        assert!(PropValue::from_value(&Value::Int(3)).is_err());
        assert!(PropValue::from_value(&Value::map().with("t", "z").with("v", 1i64)).is_err());
        assert!(PropValue::from_value(&Value::map().with("t", "i").with("v", "nope")).is_err());
    }
}
