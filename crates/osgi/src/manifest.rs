//! Bundle manifests: the static description of a module.

use crate::{PackageName, SymbolicName, Version, VersionRange};
use dosgi_san::Value;

/// A package a bundle offers to others (`Export-Package`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackageExport {
    /// The exported package.
    pub name: PackageName,
    /// The version of the export.
    pub version: Version,
    /// The simple names of the "classes" the package contains.
    pub symbols: Vec<String>,
}

/// A package a bundle needs from others (`Import-Package`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackageImport {
    /// The imported package.
    pub name: PackageName,
    /// Acceptable exporter versions.
    pub range: VersionRange,
    /// Optional imports do not block resolution when unsatisfiable.
    pub optional: bool,
}

/// The static description of a bundle: identity, wiring requirements and
/// content.
///
/// Build one with [`ManifestBuilder`]. Manifests serialize to
/// [`dosgi_san::Value`] so the framework can persist its installed-bundle
/// table to the SAN, which is what lets another node re-materialize the
/// bundle after a migration or failover.
#[derive(Debug, Clone, PartialEq)]
pub struct BundleManifest {
    /// `Bundle-SymbolicName`.
    pub symbolic_name: SymbolicName,
    /// `Bundle-Version`.
    pub version: Version,
    /// Exported packages.
    pub exports: Vec<PackageExport>,
    /// Imported packages.
    pub imports: Vec<PackageImport>,
    /// Private packages: loadable by this bundle only.
    pub private: Vec<PackageExport>,
    /// The start level the bundle belongs to (default 1).
    pub start_level: u32,
    /// Whether the bundle keeps conversation state between requests.
    ///
    /// §3.2 of the paper distinguishes *stateless* bundles (restart on the
    /// target is enough) from *stateful* ones (persistent state is read back
    /// from the SAN; running context is lost unless the replication
    /// extension is enabled).
    pub stateful: bool,
}

impl BundleManifest {
    /// Serializes the manifest into a SAN value tree.
    pub fn to_value(&self) -> Value {
        fn exports_to_value(list: &[PackageExport]) -> Value {
            Value::List(
                list.iter()
                    .map(|e| {
                        Value::map()
                            .with("name", e.name.as_str())
                            .with("version", e.version.to_string())
                            .with(
                                "symbols",
                                Value::List(
                                    e.symbols.iter().map(|s| Value::from(s.as_str())).collect(),
                                ),
                            )
                    })
                    .collect(),
            )
        }
        Value::map()
            .with("sn", self.symbolic_name.as_str())
            .with("version", self.version.to_string())
            .with("exports", exports_to_value(&self.exports))
            .with("private", exports_to_value(&self.private))
            .with(
                "imports",
                Value::List(
                    self.imports
                        .iter()
                        .map(|i| {
                            Value::map()
                                .with("name", i.name.as_str())
                                .with("range", i.range.to_string())
                                .with("optional", i.optional)
                        })
                        .collect(),
                ),
            )
            .with("start_level", i64::from(self.start_level))
            .with("stateful", self.stateful)
    }

    /// Reads a manifest back from its [`to_value`](Self::to_value) form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        fn exports_from_value(v: Option<&Value>) -> Result<Vec<PackageExport>, String> {
            let list = v.and_then(Value::as_list).ok_or("missing export list")?;
            list.iter()
                .map(|e| {
                    let name = e
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or("export missing name")?;
                    let version = e
                        .get("version")
                        .and_then(Value::as_str)
                        .ok_or("export missing version")?;
                    let symbols = e
                        .get("symbols")
                        .and_then(Value::as_list)
                        .ok_or("export missing symbols")?
                        .iter()
                        .map(|s| s.as_str().map(str::to_owned).ok_or("bad symbol"))
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(PackageExport {
                        name: PackageName::new(name)?,
                        version: version.parse()?,
                        symbols,
                    })
                })
                .collect()
        }
        let sn = v.get("sn").and_then(Value::as_str).ok_or("missing sn")?;
        let version = v
            .get("version")
            .and_then(Value::as_str)
            .ok_or("missing version")?;
        let imports = v
            .get("imports")
            .and_then(Value::as_list)
            .ok_or("missing imports")?
            .iter()
            .map(|i| {
                let name = i
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("import missing name")?;
                let range = i
                    .get("range")
                    .and_then(Value::as_str)
                    .ok_or("import missing range")?;
                Ok::<PackageImport, String>(PackageImport {
                    name: PackageName::new(name)?,
                    range: range.parse()?,
                    optional: i.get("optional").and_then(Value::as_bool).unwrap_or(false),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BundleManifest {
            symbolic_name: SymbolicName::new(sn)?,
            version: version.parse()?,
            exports: exports_from_value(v.get("exports"))?,
            private: exports_from_value(v.get("private"))?,
            imports,
            start_level: v
                .get("start_level")
                .and_then(Value::as_int)
                .unwrap_or(1)
                .try_into()
                .map_err(|_| "negative start level")?,
            stateful: v.get("stateful").and_then(Value::as_bool).unwrap_or(false),
        })
    }

    /// All packages whose symbols this bundle itself contains (exports +
    /// private).
    pub fn own_packages(&self) -> impl Iterator<Item = &PackageExport> {
        self.exports.iter().chain(self.private.iter())
    }
}

/// Builder for [`BundleManifest`].
///
/// # Example
///
/// ```
/// use dosgi_osgi::{ManifestBuilder, Version, VersionRange};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let manifest = ManifestBuilder::new("org.example.httpsvc", Version::new(2, 1, 0))
///     .export_package("org.example.http", Version::new(2, 0, 0), ["Server", "Request"])
///     .import_package("org.example.log", "[1.0,2.0)".parse()?)
///     .start_level(2)
///     .stateful(true)
///     .build()?;
/// assert_eq!(manifest.exports.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ManifestBuilder {
    symbolic_name: String,
    version: Version,
    exports: Vec<(String, Version, Vec<String>)>,
    private: Vec<(String, Version, Vec<String>)>,
    imports: Vec<(String, VersionRange, bool)>,
    start_level: u32,
    stateful: bool,
}

impl ManifestBuilder {
    /// Starts a manifest for `symbolic_name` at `version`.
    pub fn new(symbolic_name: &str, version: Version) -> Self {
        ManifestBuilder {
            symbolic_name: symbolic_name.to_owned(),
            version,
            exports: Vec::new(),
            private: Vec::new(),
            imports: Vec::new(),
            start_level: 1,
            stateful: false,
        }
    }

    /// Adds an exported package containing the given symbols.
    pub fn export_package<I, S>(mut self, name: &str, version: Version, symbols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.exports.push((
            name.to_owned(),
            version,
            symbols.into_iter().map(Into::into).collect(),
        ));
        self
    }

    /// Adds a private (non-exported) package containing the given symbols.
    pub fn private_package<I, S>(mut self, name: &str, symbols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.private.push((
            name.to_owned(),
            Version::ZERO,
            symbols.into_iter().map(Into::into).collect(),
        ));
        self
    }

    /// Adds a mandatory package import.
    pub fn import_package(mut self, name: &str, range: VersionRange) -> Self {
        self.imports.push((name.to_owned(), range, false));
        self
    }

    /// Adds an optional package import.
    pub fn import_package_optional(mut self, name: &str, range: VersionRange) -> Self {
        self.imports.push((name.to_owned(), range, true));
        self
    }

    /// Sets the bundle's start level (default 1).
    pub fn start_level(mut self, level: u32) -> Self {
        self.start_level = level;
        self
    }

    /// Marks the bundle stateful (see [`BundleManifest::stateful`]).
    pub fn stateful(mut self, stateful: bool) -> Self {
        self.stateful = stateful;
        self
    }

    /// Validates and builds the manifest.
    ///
    /// # Errors
    ///
    /// Returns an error string if any name is malformed, a package is both
    /// exported and imported by the same bundle (not modeled), a package is
    /// exported twice, or the start level is zero.
    pub fn build(self) -> Result<BundleManifest, String> {
        if self.start_level == 0 {
            return Err("start level must be >= 1".to_owned());
        }
        let mut exports = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (name, version, symbols) in self.exports {
            let name = PackageName::new(&name)?;
            if !seen.insert(name.clone()) {
                return Err(format!("package {name} exported twice"));
            }
            exports.push(PackageExport {
                name,
                version,
                symbols,
            });
        }
        let mut private = Vec::new();
        for (name, version, symbols) in self.private {
            let name = PackageName::new(&name)?;
            if !seen.insert(name.clone()) {
                return Err(format!("package {name} declared twice"));
            }
            private.push(PackageExport {
                name,
                version,
                symbols,
            });
        }
        let mut imports = Vec::new();
        for (name, range, optional) in self.imports {
            let name = PackageName::new(&name)?;
            if seen.contains(&name) {
                return Err(format!("package {name} both owned and imported"));
            }
            imports.push(PackageImport {
                name,
                range,
                optional,
            });
        }
        Ok(BundleManifest {
            symbolic_name: SymbolicName::new(&self.symbolic_name)?,
            version: self.version,
            exports,
            imports,
            private,
            start_level: self.start_level,
            stateful: self.stateful,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BundleManifest {
        ManifestBuilder::new("org.example.http", Version::new(2, 1, 0))
            .export_package("org.example.http.api", Version::new(2, 0, 0), ["Server"])
            .private_package("org.example.http.impl", ["ServerImpl", "Worker"])
            .import_package("org.example.log", "[1.0,2.0)".parse().unwrap())
            .import_package_optional("org.example.metrics", VersionRange::ANY)
            .start_level(3)
            .stateful(true)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_expected_manifest() {
        let m = sample();
        assert_eq!(m.symbolic_name.as_str(), "org.example.http");
        assert_eq!(m.exports.len(), 1);
        assert_eq!(m.private.len(), 1);
        assert_eq!(m.imports.len(), 2);
        assert!(m.imports[1].optional);
        assert_eq!(m.start_level, 3);
        assert!(m.stateful);
        assert_eq!(m.own_packages().count(), 2);
    }

    #[test]
    fn builder_rejects_invalid_names() {
        assert!(ManifestBuilder::new("bad name", Version::ZERO)
            .build()
            .is_err());
        assert!(ManifestBuilder::new("ok", Version::ZERO)
            .export_package("bad pkg", Version::ZERO, Vec::<String>::new())
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_conflicting_declarations() {
        // Exported twice.
        assert!(ManifestBuilder::new("a", Version::ZERO)
            .export_package("p.q", Version::ZERO, ["X"])
            .export_package("p.q", Version::new(1, 0, 0), ["Y"])
            .build()
            .is_err());
        // Owned and imported.
        assert!(ManifestBuilder::new("a", Version::ZERO)
            .export_package("p.q", Version::ZERO, ["X"])
            .import_package("p.q", VersionRange::ANY)
            .build()
            .is_err());
        // Zero start level.
        assert!(ManifestBuilder::new("a", Version::ZERO)
            .start_level(0)
            .build()
            .is_err());
    }

    #[test]
    fn value_round_trip() {
        let m = sample();
        let v = m.to_value();
        let back = BundleManifest::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn from_value_rejects_garbage() {
        assert!(BundleManifest::from_value(&Value::Null).is_err());
        assert!(BundleManifest::from_value(&Value::map().with("sn", "x")).is_err());
    }

    #[test]
    fn defaults() {
        let m = ManifestBuilder::new("a.b", Version::new(1, 0, 0))
            .build()
            .unwrap();
        assert_eq!(m.start_level, 1);
        assert!(!m.stateful);
        assert!(m.exports.is_empty());
    }
}
