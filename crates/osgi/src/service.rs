//! The dynamic service invocation model.

use crate::{BundleId, ServiceError, UsageLedger};
use dosgi_net::SimDuration;
use dosgi_san::Value;

/// A service implementation registered with the framework.
///
/// Real OSGi services are plain Java objects invoked through interfaces;
/// this simulation uses dynamic dispatch on a method name with [`Value`]
/// arguments, which is expressive enough for the paper's test services (log,
/// HTTP, JMX/metrics) and keeps the registry type-erased.
///
/// Implementations report their resource demands through the
/// [`CallContext`]; this is the measurement point the paper's Monitoring
/// Module lacks on a stock JVM (it pins its hopes on JSR-284) and that we
/// build in natively.
pub trait Service: Send {
    /// Invokes `method` with `arg`, returning the result value.
    ///
    /// # Errors
    ///
    /// [`ServiceError::MethodNotFound`] for unknown methods, or
    /// [`ServiceError::Failed`] for application failures.
    fn call(
        &mut self,
        ctx: &mut CallContext<'_>,
        method: &str,
        arg: &Value,
    ) -> Result<Value, ServiceError>;
}

impl<F> Service for F
where
    F: FnMut(&mut CallContext<'_>, &str, &Value) -> Result<Value, ServiceError> + Send,
{
    fn call(
        &mut self,
        ctx: &mut CallContext<'_>,
        method: &str,
        arg: &Value,
    ) -> Result<Value, ServiceError> {
        self(ctx, method, arg)
    }
}

/// Per-invocation context handed to a [`Service`].
///
/// Lets the implementation charge its resource consumption to the owning
/// bundle's ledger — the JSR-284-style accounting hook — and read/write the
/// bundle's persistent storage area (how *stateful* bundles in the paper's
/// §3.2 sense persist state that must survive migration).
#[derive(Debug)]
pub struct CallContext<'a> {
    bundle: BundleId,
    ledger: &'a mut UsageLedger,
    data: Option<&'a mut std::collections::BTreeMap<String, Value>>,
    dirty: bool,
}

impl<'a> CallContext<'a> {
    /// Creates a context charging `bundle` on `ledger`, without a storage
    /// area (storage calls become no-ops that return `None`).
    pub fn new(bundle: BundleId, ledger: &'a mut UsageLedger) -> Self {
        CallContext {
            bundle,
            ledger,
            data: None,
            dirty: false,
        }
    }

    /// Creates a context with the bundle's persistent storage area
    /// attached.
    pub fn with_store(
        bundle: BundleId,
        ledger: &'a mut UsageLedger,
        data: &'a mut std::collections::BTreeMap<String, Value>,
    ) -> Self {
        CallContext {
            bundle,
            ledger,
            data: Some(data),
            dirty: false,
        }
    }

    /// Reads from the bundle's persistent storage area.
    pub fn store_get(&self, key: &str) -> Option<Value> {
        self.data.as_ref().and_then(|d| d.get(key).cloned())
    }

    /// Writes to the bundle's persistent storage area (the framework
    /// flushes dirty areas to the SAN after the call), charging the bytes
    /// to the bundle's disk account.
    pub fn store_put(&mut self, key: &str, value: Value) {
        self.ledger
            .charge_disk(self.bundle, value.encoded_len() as u64);
        if let Some(d) = self.data.as_mut() {
            d.insert(key.to_owned(), value);
            self.dirty = true;
        }
    }

    /// True if the call wrote to the storage area.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// The bundle that owns the service being invoked.
    pub fn bundle(&self) -> BundleId {
        self.bundle
    }

    /// Records `d` of CPU time consumed by this call.
    pub fn charge_cpu(&mut self, d: SimDuration) {
        self.ledger.charge_cpu(self.bundle, d);
    }

    /// Records `bytes` of memory newly held by the bundle.
    pub fn alloc(&mut self, bytes: u64) {
        self.ledger.alloc(self.bundle, bytes);
    }

    /// Records `bytes` of memory released by the bundle.
    pub fn free(&mut self, bytes: u64) {
        self.ledger.free(self.bundle, bytes);
    }

    /// Records `bytes` written to the bundle's persistent storage area.
    pub fn charge_disk(&mut self, bytes: u64) {
        self.ledger.charge_disk(self.bundle, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_services() {
        let mut ledger = UsageLedger::new();
        let mut svc = |ctx: &mut CallContext<'_>, method: &str, arg: &Value| match method {
            "echo" => {
                ctx.charge_cpu(SimDuration::from_micros(50));
                Ok(arg.clone())
            }
            other => Err(ServiceError::Failed(format!("no {other}"))),
        };
        let mut ctx = CallContext::new(BundleId(1), &mut ledger);
        let out = Service::call(&mut svc, &mut ctx, "echo", &Value::Int(7)).unwrap();
        assert_eq!(out, Value::Int(7));
        assert!(Service::call(&mut svc, &mut ctx, "bogus", &Value::Null).is_err());
        assert_eq!(
            ledger.snapshot(BundleId(1)).cpu,
            SimDuration::from_micros(50)
        );
    }

    #[test]
    fn context_charges_the_right_bundle() {
        let mut ledger = UsageLedger::new();
        {
            let mut ctx = CallContext::new(BundleId(2), &mut ledger);
            assert_eq!(ctx.bundle(), BundleId(2));
            ctx.alloc(1024);
            ctx.free(24);
            ctx.charge_disk(100);
        }
        let snap = ledger.snapshot(BundleId(2));
        assert_eq!(snap.memory, 1000);
        assert_eq!(snap.disk, 100);
        assert_eq!(ledger.snapshot(BundleId(3)).memory, 0);
    }
}
