//! The wiring resolver: matches package imports to exports.

use crate::{BundleId, BundleManifest, PackageName, Version};
use std::collections::{BTreeMap, HashMap};

/// The resolved wiring of one bundle: for each imported package, which
/// bundle exports it (and at which version).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Wiring {
    /// `package → (exporter, export version)`.
    pub imports: BTreeMap<PackageName, (BundleId, Version)>,
}

impl Wiring {
    /// The exporter wired for `package`, if any.
    pub fn exporter_of(&self, package: &PackageName) -> Option<BundleId> {
        self.imports.get(package).map(|(b, _)| *b)
    }
}

/// The outcome of a resolution pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResolutionReport {
    /// Bundles that resolved, with their wiring.
    pub resolved: BTreeMap<BundleId, Wiring>,
    /// Bundles that could not resolve, with their unsatisfiable mandatory
    /// imports.
    pub failed: BTreeMap<BundleId, Vec<PackageName>>,
}

/// Resolves `candidates` against themselves plus `already_resolved`
/// exporters.
///
/// Semantics follow OSGi's resolver in the aspects the paper relies on:
///
/// * an import is satisfied by an export with the same package name and a
///   version inside the import's range;
/// * among multiple candidates, the **highest version** wins, ties broken
///   by **lowest bundle id** (oldest installed);
/// * optional imports never block resolution; they wire if possible;
/// * resolution is a fixpoint: bundles may depend on each other (cycles are
///   fine), and a bundle failing to resolve removes its exports from the
///   candidate pool, which may cascade.
///
/// `uses`-constraint consistency checking is not modeled.
pub fn resolve(
    candidates: &BTreeMap<BundleId, &BundleManifest>,
    already_resolved: &BTreeMap<BundleId, &BundleManifest>,
) -> ResolutionReport {
    // Start optimistically: every candidate might resolve.
    let mut viable: BTreeMap<BundleId, &BundleManifest> = candidates.clone();
    let mut failed: BTreeMap<BundleId, Vec<PackageName>> = BTreeMap::new();

    loop {
        // Exporter pool: already-resolved bundles plus currently-viable
        // candidates.
        let mut pool: HashMap<&PackageName, Vec<(BundleId, Version)>> = HashMap::new();
        for (&id, m) in already_resolved.iter().chain(viable.iter()) {
            for e in &m.exports {
                pool.entry(&e.name).or_default().push((id, e.version));
            }
        }
        for offers in pool.values_mut() {
            // Highest version first, then lowest id.
            offers.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        }

        let mut newly_failed: Vec<(BundleId, Vec<PackageName>)> = Vec::new();
        for (&id, m) in &viable {
            let missing: Vec<PackageName> = m
                .imports
                .iter()
                .filter(|imp| !imp.optional)
                .filter(|imp| {
                    !pool
                        .get(&imp.name)
                        .is_some_and(|offers| offers.iter().any(|(_, v)| imp.range.contains(*v)))
                })
                .map(|imp| imp.name.clone())
                .collect();
            if !missing.is_empty() {
                newly_failed.push((id, missing));
            }
        }

        if newly_failed.is_empty() {
            // Fixpoint reached: wire everything still viable.
            let mut resolved = BTreeMap::new();
            for (&id, m) in &viable {
                let mut wiring = Wiring::default();
                for imp in &m.imports {
                    let pick = pool
                        .get(&imp.name)
                        .and_then(|offers| offers.iter().find(|(_, v)| imp.range.contains(*v)))
                        .copied();
                    match pick {
                        Some((exporter, version)) => {
                            wiring.imports.insert(imp.name.clone(), (exporter, version));
                        }
                        None => debug_assert!(imp.optional, "mandatory import unwired"),
                    }
                }
                resolved.insert(id, wiring);
            }
            return ResolutionReport { resolved, failed };
        }

        for (id, missing) in newly_failed {
            viable.remove(&id);
            failed.insert(id, missing);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ManifestBuilder, VersionRange};

    fn exporter(name: &str, pkg: &str, v: Version) -> BundleManifest {
        ManifestBuilder::new(name, v)
            .export_package(pkg, v, ["X"])
            .build()
            .unwrap()
    }

    fn importer(name: &str, pkg: &str, range: &str) -> BundleManifest {
        ManifestBuilder::new(name, Version::new(1, 0, 0))
            .import_package(pkg, range.parse().unwrap())
            .build()
            .unwrap()
    }

    fn run(
        candidates: &[(u64, &BundleManifest)],
        resolved: &[(u64, &BundleManifest)],
    ) -> ResolutionReport {
        let c: BTreeMap<BundleId, &BundleManifest> =
            candidates.iter().map(|(i, m)| (BundleId(*i), *m)).collect();
        let r: BTreeMap<BundleId, &BundleManifest> =
            resolved.iter().map(|(i, m)| (BundleId(*i), *m)).collect();
        resolve(&c, &r)
    }

    #[test]
    fn wires_import_to_matching_export() {
        let log = exporter("log", "api.log", Version::new(1, 2, 0));
        let app = importer("app", "api.log", "[1.0,2.0)");
        let report = run(&[(1, &log), (2, &app)], &[]);
        assert!(report.failed.is_empty());
        let wiring = &report.resolved[&BundleId(2)];
        assert_eq!(
            wiring.imports[&PackageName::new("api.log").unwrap()],
            (BundleId(1), Version::new(1, 2, 0))
        );
        assert_eq!(
            wiring.exporter_of(&PackageName::new("api.log").unwrap()),
            Some(BundleId(1))
        );
    }

    #[test]
    fn highest_version_wins_then_lowest_id() {
        let old = exporter("log", "api.log", Version::new(1, 0, 0));
        let new1 = exporter("log2", "api.log", Version::new(1, 5, 0));
        let new2 = exporter("log3", "api.log", Version::new(1, 5, 0));
        let app = importer("app", "api.log", "1.0");
        let report = run(&[(1, &old), (3, &new2), (2, &new1), (4, &app)], &[]);
        let wiring = &report.resolved[&BundleId(4)];
        // 1.5.0 beats 1.0.0; between ids 2 and 3 at 1.5.0, id 2 wins.
        assert_eq!(
            wiring.imports[&PackageName::new("api.log").unwrap()],
            (BundleId(2), Version::new(1, 5, 0))
        );
    }

    #[test]
    fn version_range_excludes_wires_nothing() {
        let log = exporter("log", "api.log", Version::new(2, 0, 0));
        let app = importer("app", "api.log", "[1.0,2.0)");
        let report = run(&[(1, &log), (2, &app)], &[]);
        assert_eq!(
            report.failed[&BundleId(2)],
            vec![PackageName::new("api.log").unwrap()]
        );
        assert!(report.resolved.contains_key(&BundleId(1)));
    }

    #[test]
    fn optional_import_does_not_block() {
        let app = ManifestBuilder::new("app", Version::new(1, 0, 0))
            .import_package_optional("api.absent", VersionRange::ANY)
            .build()
            .unwrap();
        let report = run(&[(1, &app)], &[]);
        assert!(report.failed.is_empty());
        assert!(report.resolved[&BundleId(1)].imports.is_empty());
    }

    #[test]
    fn cyclic_dependencies_resolve_together() {
        let a = ManifestBuilder::new("a", Version::new(1, 0, 0))
            .export_package("pkg.a", Version::new(1, 0, 0), ["A"])
            .import_package("pkg.b", VersionRange::ANY)
            .build()
            .unwrap();
        let b = ManifestBuilder::new("b", Version::new(1, 0, 0))
            .export_package("pkg.b", Version::new(1, 0, 0), ["B"])
            .import_package("pkg.a", VersionRange::ANY)
            .build()
            .unwrap();
        let report = run(&[(1, &a), (2, &b)], &[]);
        assert!(report.failed.is_empty());
        assert_eq!(report.resolved.len(), 2);
    }

    #[test]
    fn failure_cascades_through_dependents() {
        // c needs missing.pkg; b needs c's export; a needs b's export.
        let c = ManifestBuilder::new("c", Version::new(1, 0, 0))
            .export_package("pkg.c", Version::new(1, 0, 0), ["C"])
            .import_package("missing.pkg", VersionRange::ANY)
            .build()
            .unwrap();
        let b = ManifestBuilder::new("b", Version::new(1, 0, 0))
            .export_package("pkg.b", Version::new(1, 0, 0), ["B"])
            .import_package("pkg.c", VersionRange::ANY)
            .build()
            .unwrap();
        let a = importer("a", "pkg.b", "0");
        let report = run(&[(1, &c), (2, &b), (3, &a)], &[]);
        assert_eq!(report.failed.len(), 3);
        assert!(report.resolved.is_empty());
        assert_eq!(
            report.failed[&BundleId(1)],
            vec![PackageName::new("missing.pkg").unwrap()]
        );
    }

    #[test]
    fn already_resolved_bundles_export_into_the_pool() {
        let host = exporter("host", "api.log", Version::new(1, 0, 0));
        let app = importer("app", "api.log", "1.0");
        let report = run(&[(5, &app)], &[(1, &host)]);
        assert!(report.failed.is_empty());
        assert_eq!(
            report.resolved[&BundleId(5)].exporter_of(&PackageName::new("api.log").unwrap()),
            Some(BundleId(1))
        );
    }

    #[test]
    fn self_export_satisfies_own_import_is_not_modeled_as_conflict() {
        // A bundle never imports a package it owns (builder forbids it),
        // but two bundles may export the same package at different versions;
        // importers pick per the version rule.
        let v1 = exporter("p1", "pkg", Version::new(1, 0, 0));
        let v2 = exporter("p2", "pkg", Version::new(2, 0, 0));
        let old_client = importer("old", "pkg", "[1.0,2.0)");
        let new_client = importer("new", "pkg", "[2.0,3.0)");
        let report = run(
            &[(1, &v1), (2, &v2), (3, &old_client), (4, &new_client)],
            &[],
        );
        assert!(report.failed.is_empty());
        let p = PackageName::new("pkg").unwrap();
        assert_eq!(
            report.resolved[&BundleId(3)].exporter_of(&p),
            Some(BundleId(1))
        );
        assert_eq!(
            report.resolved[&BundleId(4)].exporter_of(&p),
            Some(BundleId(2))
        );
    }
}
