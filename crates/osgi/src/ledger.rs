//! Per-bundle resource usage accounting.
//!
//! §3.1 of the paper laments that the JVM offers no per-customer resource
//! accounting (only whole-platform `MemoryMXBean`, rough per-thread CPU via
//! `ThreadMXBean`) and looks forward to JSR-284, the Resource Consumption
//! API. The simulation does not have that limitation: every service call
//! charges its CPU, memory and disk demand to the owning bundle's
//! [`UsageLedger`], and the `dosgi-monitor` crate aggregates ledgers into
//! per-instance resource domains.

use crate::BundleId;
use dosgi_net::SimDuration;
use std::collections::BTreeMap;

/// A point-in-time reading of one bundle's accumulated usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UsageSnapshot {
    /// Total CPU time consumed.
    pub cpu: SimDuration,
    /// Memory currently held, in bytes.
    pub memory: u64,
    /// Total bytes written to persistent storage.
    pub disk: u64,
    /// Number of service calls served.
    pub calls: u64,
}

/// Accumulated resource usage per bundle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UsageLedger {
    entries: BTreeMap<BundleId, UsageSnapshot>,
}

impl UsageLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    fn entry(&mut self, bundle: BundleId) -> &mut UsageSnapshot {
        self.entries.entry(bundle).or_default()
    }

    /// Adds CPU time to a bundle's account.
    pub fn charge_cpu(&mut self, bundle: BundleId, d: SimDuration) {
        self.entry(bundle).cpu += d;
    }

    /// Adds held memory to a bundle's account.
    pub fn alloc(&mut self, bundle: BundleId, bytes: u64) {
        self.entry(bundle).memory += bytes;
    }

    /// Releases held memory (saturating: freeing more than held clamps to
    /// zero rather than corrupting the account).
    pub fn free(&mut self, bundle: BundleId, bytes: u64) {
        let e = self.entry(bundle);
        e.memory = e.memory.saturating_sub(bytes);
    }

    /// Adds persistent-storage writes to a bundle's account.
    pub fn charge_disk(&mut self, bundle: BundleId, bytes: u64) {
        self.entry(bundle).disk += bytes;
    }

    /// Increments the bundle's served-call counter.
    pub fn count_call(&mut self, bundle: BundleId) {
        self.entry(bundle).calls += 1;
    }

    /// The bundle's current snapshot (zeroes if never charged).
    pub fn snapshot(&self, bundle: BundleId) -> UsageSnapshot {
        self.entries.get(&bundle).copied().unwrap_or_default()
    }

    /// Sum over all bundles — the "whole JVM" view that is all a stock JVM
    /// would give the paper's authors.
    pub fn total(&self) -> UsageSnapshot {
        let mut acc = UsageSnapshot::default();
        for s in self.entries.values() {
            acc.cpu += s.cpu;
            acc.memory += s.memory;
            acc.disk += s.disk;
            acc.calls += s.calls;
        }
        acc
    }

    /// Iterates over `(bundle, snapshot)` pairs in bundle order.
    pub fn iter(&self) -> impl Iterator<Item = (BundleId, UsageSnapshot)> + '_ {
        self.entries.iter().map(|(k, v)| (*k, *v))
    }

    /// Drops a bundle's account (on uninstall).
    pub fn forget(&mut self, bundle: BundleId) {
        self.entries.remove(&bundle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_bundle() {
        let mut l = UsageLedger::new();
        l.charge_cpu(BundleId(1), SimDuration::from_micros(10));
        l.charge_cpu(BundleId(1), SimDuration::from_micros(5));
        l.charge_cpu(BundleId(2), SimDuration::from_micros(3));
        l.count_call(BundleId(1));
        assert_eq!(l.snapshot(BundleId(1)).cpu, SimDuration::from_micros(15));
        assert_eq!(l.snapshot(BundleId(1)).calls, 1);
        assert_eq!(l.snapshot(BundleId(2)).cpu, SimDuration::from_micros(3));
        assert_eq!(l.snapshot(BundleId(9)), UsageSnapshot::default());
    }

    #[test]
    fn memory_is_a_gauge_not_a_counter() {
        let mut l = UsageLedger::new();
        l.alloc(BundleId(1), 100);
        l.alloc(BundleId(1), 50);
        l.free(BundleId(1), 30);
        assert_eq!(l.snapshot(BundleId(1)).memory, 120);
        // Over-free clamps.
        l.free(BundleId(1), 1_000_000);
        assert_eq!(l.snapshot(BundleId(1)).memory, 0);
    }

    #[test]
    fn total_aggregates_all_bundles() {
        let mut l = UsageLedger::new();
        l.alloc(BundleId(1), 100);
        l.alloc(BundleId(2), 200);
        l.charge_disk(BundleId(2), 77);
        let t = l.total();
        assert_eq!(t.memory, 300);
        assert_eq!(t.disk, 77);
    }

    #[test]
    fn forget_removes_account() {
        let mut l = UsageLedger::new();
        l.alloc(BundleId(1), 100);
        l.forget(BundleId(1));
        assert_eq!(l.total().memory, 0);
        assert_eq!(l.iter().count(), 0);
    }
}
