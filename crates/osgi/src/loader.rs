//! Class spaces: symbol lookup through the OSGi delegation order.

use crate::{BundleId, PackageName, SymbolName};
use std::fmt;

/// Where a successfully loaded class came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassRef {
    /// The symbol that was requested.
    pub symbol: SymbolName,
    /// The bundle that defines it, or `None` for boot-delegated symbols.
    pub defined_by: Option<BundleId>,
    /// How the lookup was satisfied.
    pub via: LoadPath,
}

/// The delegation step that satisfied a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadPath {
    /// Boot delegation (the platform's own packages, e.g. `std.*`).
    Boot,
    /// An imported package, wired to another bundle's export.
    Import,
    /// The bundle's own content (exported or private package).
    Own,
    /// The virtual-instance delegating loader consulting the host framework
    /// (the paper's explicit-export mechanism; set by the `dosgi-vosgi`
    /// crate).
    HostDelegation,
}

/// Class-loading failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// No step of the delegation chain defines the symbol.
    NotFound(SymbolName),
    /// The package exists in the exporter but does not contain the symbol.
    NoSuchSymbol {
        /// The package that was consulted.
        package: PackageName,
        /// The missing simple name.
        simple: String,
    },
    /// The requesting bundle is not resolved, so it has no class space.
    Unresolved(BundleId),
    /// The vosgi sandbox denied delegation to the host (package not in the
    /// instance's explicit export list).
    NotExported(PackageName),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::NotFound(s) => write!(f, "class not found: {s}"),
            LoadError::NoSuchSymbol { package, simple } => {
                write!(f, "package {package} has no class {simple}")
            }
            LoadError::Unresolved(b) => write!(f, "bundle {b} is not resolved"),
            LoadError::NotExported(p) => {
                write!(f, "package {p} is not exported to this virtual instance")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// The boot-delegation list: package prefixes served by the platform itself
/// rather than any bundle (the `java.*` analogue).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BootDelegation {
    prefixes: Vec<String>,
}

impl BootDelegation {
    /// The default boot delegation: `std.*` and `platform.*`.
    pub fn standard() -> Self {
        BootDelegation {
            prefixes: vec!["std".to_owned(), "platform".to_owned()],
        }
    }

    /// A boot delegation with the given prefixes.
    pub fn with_prefixes<I, S>(prefixes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        BootDelegation {
            prefixes: prefixes.into_iter().map(Into::into).collect(),
        }
    }

    /// True if `package` is boot-delegated.
    pub fn covers(&self, package: &PackageName) -> bool {
        self.prefixes.iter().any(|p| package.starts_with(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_delegation_prefixes() {
        let boot = BootDelegation::standard();
        assert!(boot.covers(&PackageName::new("std.collections").unwrap()));
        assert!(boot.covers(&PackageName::new("platform").unwrap()));
        assert!(!boot.covers(&PackageName::new("org.example").unwrap()));
        assert!(!boot.covers(&PackageName::new("stdlib").unwrap()));
        let custom = BootDelegation::with_prefixes(["corp.base"]);
        assert!(custom.covers(&PackageName::new("corp.base.util").unwrap()));
        assert!(!BootDelegation::default().covers(&PackageName::new("std.io").unwrap()));
    }

    #[test]
    fn error_display() {
        let s = SymbolName::parse("a.b.C").unwrap();
        assert_eq!(LoadError::NotFound(s).to_string(), "class not found: a.b.C");
        assert_eq!(
            LoadError::NotExported(PackageName::new("a.b").unwrap()).to_string(),
            "package a.b is not exported to this virtual instance"
        );
        assert_eq!(
            LoadError::Unresolved(BundleId(2)).to_string(),
            "bundle b2 is not resolved"
        );
    }
}
