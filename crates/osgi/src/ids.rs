//! Identifiers: bundle ids, service ids, symbolic names, versions and
//! version ranges.

use std::fmt;
use std::str::FromStr;

/// A bundle's framework-local numeric identity, assigned at install time and
/// never reused within a framework instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BundleId(pub u64);

impl fmt::Display for BundleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A registered service's framework-local numeric identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ServiceId(pub u64);

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.split('.').all(|seg| {
            !seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        })
}

/// A bundle symbolic name (`Bundle-SymbolicName`), e.g.
/// `org.example.logsvc`. Dot-separated segments of `[A-Za-z0-9_-]`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolicName(String);

impl SymbolicName {
    /// Validates and wraps a symbolic name.
    ///
    /// # Errors
    ///
    /// Returns the offending string if it is not a valid dotted name.
    pub fn new(s: &str) -> Result<Self, String> {
        if valid_name(s) {
            Ok(SymbolicName(s.to_owned()))
        } else {
            Err(format!("invalid symbolic name: {s:?}"))
        }
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SymbolicName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for SymbolicName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A Java-style package name, e.g. `org.example.log`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PackageName(String);

impl PackageName {
    /// Validates and wraps a package name.
    ///
    /// # Errors
    ///
    /// Returns the offending string if it is not a valid dotted name.
    pub fn new(s: &str) -> Result<Self, String> {
        if valid_name(s) {
            Ok(PackageName(s.to_owned()))
        } else {
            Err(format!("invalid package name: {s:?}"))
        }
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True if this package matches `prefix` followed by `.*` semantics
    /// (used by boot-delegation lists such as `std.*`).
    pub fn starts_with(&self, prefix: &str) -> bool {
        self.0 == prefix || self.0.starts_with(&format!("{prefix}."))
    }
}

impl fmt::Display for PackageName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for PackageName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A fully qualified "class" name, e.g. `org.example.log.Logger`: a package
/// plus a final simple name. The simulation's unit of class loading.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolName {
    package: PackageName,
    simple: String,
}

impl SymbolName {
    /// Parses `org.example.log.Logger` into package `org.example.log` and
    /// simple name `Logger`.
    ///
    /// # Errors
    ///
    /// Returns the offending string if there is no package part or either
    /// half is malformed.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (pkg, simple) = s
            .rsplit_once('.')
            .ok_or_else(|| format!("symbol {s:?} has no package"))?;
        if simple.is_empty() || !valid_name(simple) {
            return Err(format!("invalid simple name in {s:?}"));
        }
        Ok(SymbolName {
            package: PackageName::new(pkg)?,
            simple: simple.to_owned(),
        })
    }

    /// Builds a symbol from its parts.
    pub fn in_package(package: PackageName, simple: &str) -> Self {
        SymbolName {
            package,
            simple: simple.to_owned(),
        }
    }

    /// The package half.
    pub fn package(&self) -> &PackageName {
        &self.package
    }

    /// The simple (unqualified) name.
    pub fn simple(&self) -> &str {
        &self.simple
    }
}

impl fmt::Display for SymbolName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.package, self.simple)
    }
}

/// An OSGi version: `major.minor.micro` (qualifiers are not modeled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version {
    /// Major component.
    pub major: u32,
    /// Minor component.
    pub minor: u32,
    /// Micro component.
    pub micro: u32,
}

impl Version {
    /// Builds a version from components.
    pub const fn new(major: u32, minor: u32, micro: u32) -> Self {
        Version {
            major,
            minor,
            micro,
        }
    }

    /// Version `0.0.0`, the OSGi default.
    pub const ZERO: Version = Version::new(0, 0, 0);
}

impl FromStr for Version {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split('.');
        let mut next = |name: &str| -> Result<u32, String> {
            match parts.next() {
                None => Ok(0),
                Some(p) => p
                    .parse::<u32>()
                    .map_err(|_| format!("invalid {name} in version {s:?}")),
            }
        };
        let major = match s.split('.').next() {
            Some("") | None => return Err(format!("empty version {s:?}")),
            _ => next("major")?,
        };
        let minor = next("minor")?;
        let micro = next("micro")?;
        if parts.next().is_some() {
            return Err(format!("too many components in version {s:?}"));
        }
        Ok(Version::new(major, minor, micro))
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.micro)
    }
}

/// An OSGi version range, e.g. `[1.0,2.0)`, `(1.2.3,1.9]`, or the shorthand
/// `1.0` meaning *at least 1.0* (`[1.0,∞)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VersionRange {
    /// Lower bound.
    pub min: Version,
    /// Whether the lower bound itself is included.
    pub min_inclusive: bool,
    /// Upper bound; `None` means unbounded.
    pub max: Option<Version>,
    /// Whether the upper bound itself is included.
    pub max_inclusive: bool,
}

impl VersionRange {
    /// The range accepting any version: `[0.0.0,∞)`.
    pub const ANY: VersionRange = VersionRange {
        min: Version::ZERO,
        min_inclusive: true,
        max: None,
        max_inclusive: false,
    };

    /// `[min,∞)` — the OSGi shorthand form.
    pub const fn at_least(min: Version) -> Self {
        VersionRange {
            min,
            min_inclusive: true,
            max: None,
            max_inclusive: false,
        }
    }

    /// `[v,v]` — exactly one version.
    pub const fn exact(v: Version) -> Self {
        VersionRange {
            min: v,
            min_inclusive: true,
            max: Some(v),
            max_inclusive: true,
        }
    }

    /// `[min,max)` — the common "compatible until next major" form.
    pub const fn half_open(min: Version, max: Version) -> Self {
        VersionRange {
            min,
            min_inclusive: true,
            max: Some(max),
            max_inclusive: false,
        }
    }

    /// True if `v` falls within the range.
    pub fn contains(&self, v: Version) -> bool {
        let lower_ok = if self.min_inclusive {
            v >= self.min
        } else {
            v > self.min
        };
        let upper_ok = match self.max {
            None => true,
            Some(max) => {
                if self.max_inclusive {
                    v <= max
                } else {
                    v < max
                }
            }
        };
        lower_ok && upper_ok
    }
}

impl Default for VersionRange {
    fn default() -> Self {
        VersionRange::ANY
    }
}

impl FromStr for VersionRange {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let first = s.chars().next().ok_or("empty version range")?;
        if first != '[' && first != '(' {
            // Shorthand: "1.0" == [1.0,∞)
            return Ok(VersionRange::at_least(s.parse()?));
        }
        let last = s.chars().last().expect("non-empty");
        if last != ']' && last != ')' {
            return Err(format!("unterminated version range {s:?}"));
        }
        let inner = &s[1..s.len() - 1];
        let (lo, hi) = inner
            .split_once(',')
            .ok_or_else(|| format!("version range {s:?} needs two bounds"))?;
        let max = match hi.trim() {
            // "[1.0,)" — explicit unbounded upper.
            "" => None,
            other => Some(other.parse()?),
        };
        Ok(VersionRange {
            min: lo.trim().parse()?,
            min_inclusive: first == '[',
            max,
            max_inclusive: last == ']',
        })
    }
}

impl fmt::Display for VersionRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max {
            None if self.min_inclusive && self.min == Version::ZERO => write!(f, "[0.0.0,)"),
            None => write!(
                f,
                "{}{},)",
                if self.min_inclusive { '[' } else { '(' },
                self.min
            ),
            Some(max) => write!(
                f,
                "{}{},{}{}",
                if self.min_inclusive { '[' } else { '(' },
                self.min,
                max,
                if self.max_inclusive { ']' } else { ')' }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosgi_testkit::{prop, prop_verify_eq, Gen};

    #[test]
    fn symbolic_name_validation() {
        assert!(SymbolicName::new("org.example.log-svc").is_ok());
        assert!(SymbolicName::new("a").is_ok());
        assert!(SymbolicName::new("").is_err());
        assert!(SymbolicName::new(".a").is_err());
        assert!(SymbolicName::new("a..b").is_err());
        assert!(SymbolicName::new("a b").is_err());
        assert_eq!(SymbolicName::new("x.y").unwrap().to_string(), "x.y");
    }

    #[test]
    fn symbol_name_splits_package() {
        let s = SymbolName::parse("org.example.log.Logger").unwrap();
        assert_eq!(s.package().as_str(), "org.example.log");
        assert_eq!(s.simple(), "Logger");
        assert_eq!(s.to_string(), "org.example.log.Logger");
        assert!(SymbolName::parse("NoPackage").is_err());
        assert!(SymbolName::parse("pkg.").is_err());
    }

    #[test]
    fn package_prefix_matching() {
        let p = PackageName::new("std.collections").unwrap();
        assert!(p.starts_with("std"));
        assert!(p.starts_with("std.collections"));
        assert!(!p.starts_with("std.coll"));
        assert!(!p.starts_with("stdx"));
    }

    #[test]
    fn version_parsing() {
        assert_eq!("1.2.3".parse::<Version>().unwrap(), Version::new(1, 2, 3));
        assert_eq!("1.2".parse::<Version>().unwrap(), Version::new(1, 2, 0));
        assert_eq!("1".parse::<Version>().unwrap(), Version::new(1, 0, 0));
        assert!("".parse::<Version>().is_err());
        assert!("1.2.3.4".parse::<Version>().is_err());
        assert!("1.x".parse::<Version>().is_err());
        assert_eq!(Version::new(1, 2, 3).to_string(), "1.2.3");
    }

    #[test]
    fn version_ordering() {
        assert!(Version::new(1, 0, 0) < Version::new(1, 0, 1));
        assert!(Version::new(1, 9, 9) < Version::new(2, 0, 0));
        assert!(Version::new(0, 10, 0) > Version::new(0, 9, 9));
    }

    #[test]
    fn range_parsing_and_contains() {
        let r: VersionRange = "[1.0,2.0)".parse().unwrap();
        assert!(r.contains(Version::new(1, 0, 0)));
        assert!(r.contains(Version::new(1, 9, 9)));
        assert!(!r.contains(Version::new(2, 0, 0)));
        assert!(!r.contains(Version::new(0, 9, 0)));

        let r: VersionRange = "(1.0,2.0]".parse().unwrap();
        assert!(!r.contains(Version::new(1, 0, 0)));
        assert!(r.contains(Version::new(2, 0, 0)));

        let r: VersionRange = "1.5".parse().unwrap();
        assert!(r.contains(Version::new(1, 5, 0)));
        assert!(r.contains(Version::new(99, 0, 0)));
        assert!(!r.contains(Version::new(1, 4, 9)));

        assert!(VersionRange::ANY.contains(Version::ZERO));
        assert!("[1.0".parse::<VersionRange>().is_err());
        assert!("[1.0]".parse::<VersionRange>().is_err());
    }

    #[test]
    fn range_constructors() {
        assert!(VersionRange::exact(Version::new(1, 2, 3)).contains(Version::new(1, 2, 3)));
        assert!(!VersionRange::exact(Version::new(1, 2, 3)).contains(Version::new(1, 2, 4)));
        let r = VersionRange::half_open(Version::new(1, 0, 0), Version::new(2, 0, 0));
        assert!(r.contains(Version::new(1, 5, 0)));
        assert!(!r.contains(Version::new(2, 0, 0)));
        assert_eq!(VersionRange::default(), VersionRange::ANY);
    }

    #[test]
    fn range_display_round_trip() {
        for s in ["[1.0.0,2.0.0)", "(1.2.3,4.5.6]", "[0.0.0,)"] {
            let r: VersionRange = s.parse().unwrap();
            assert_eq!(r.to_string(), s);
        }
    }

    #[test]
    fn prop_version_display_parse_round_trip() {
        let triples = Gen::new(|rng| {
            (
                rng.u64_in(0, 99) as u32,
                rng.u64_in(0, 99) as u32,
                rng.u64_in(0, 99) as u32,
            )
        });
        prop::check(
            "prop_version_display_parse_round_trip",
            &triples,
            |&(a, b, c)| {
                let v = Version::new(a, b, c);
                prop_verify_eq!(v.to_string().parse::<Version>().unwrap(), v);
                Ok(())
            },
        );
    }

    #[test]
    fn prop_half_open_contains_iff_ordered() {
        let triples = Gen::new(|rng| {
            (
                rng.u64_in(0, 19) as u32,
                rng.u64_in(0, 19) as u32,
                rng.u64_in(0, 19) as u32,
            )
        });
        prop::check(
            "prop_half_open_contains_iff_ordered",
            &triples,
            |&(a, b, x)| {
                let (lo, hi) = (a.min(b), a.max(b));
                let r = VersionRange::half_open(Version::new(lo, 0, 0), Version::new(hi, 0, 0));
                let v = Version::new(x, 0, 0);
                prop_verify_eq!(r.contains(v), x >= lo && x < hi);
                Ok(())
            },
        );
    }
}
