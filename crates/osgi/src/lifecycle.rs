//! The bundle lifecycle state machine.

use std::fmt;

/// The lifecycle states of an OSGi bundle.
///
/// ```text
///            install            resolve            start
///   (none) ─────────▶ INSTALLED ───────▶ RESOLVED ───────▶ STARTING ─▶ ACTIVE
///                         ▲                  │ ▲                          │
///                         │ update           │ │        stop             │
///                         └──────────────────┘ └──────── STOPPING ◀──────┘
///                              uninstall  ──▶ UNINSTALLED (terminal)
/// ```
///
/// `Starting`/`Stopping` are transient: the framework passes through them
/// synchronously while the activator runs, but they are real states — an
/// activator that fails leaves the bundle `Resolved`, and monitoring can
/// observe them on slow activators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum BundleState {
    /// Installed but its imports are not yet wired.
    #[default]
    Installed,
    /// Imports wired; classes loadable; not running.
    Resolved,
    /// The activator's `start` is executing.
    Starting,
    /// Running: services registered, consuming resources.
    Active,
    /// The activator's `stop` is executing.
    Stopping,
    /// Removed; terminal.
    Uninstalled,
}

impl BundleState {
    /// True for [`BundleState::Active`].
    pub fn is_active(self) -> bool {
        self == BundleState::Active
    }

    /// True if classes can be loaded from the bundle (resolved or beyond,
    /// except uninstalled).
    pub fn is_resolved(self) -> bool {
        matches!(
            self,
            BundleState::Resolved
                | BundleState::Starting
                | BundleState::Active
                | BundleState::Stopping
        )
    }

    /// True if a `start` operation is legal from this state.
    pub fn can_start(self) -> bool {
        matches!(self, BundleState::Installed | BundleState::Resolved)
    }

    /// True if a `stop` operation is legal from this state.
    pub fn can_stop(self) -> bool {
        self == BundleState::Active
    }

    /// True if the bundle can be uninstalled from this state.
    pub fn can_uninstall(self) -> bool {
        !matches!(
            self,
            BundleState::Uninstalled | BundleState::Starting | BundleState::Stopping
        )
    }

    /// The OSGi constant-style name (`"ACTIVE"`, `"INSTALLED"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            BundleState::Installed => "INSTALLED",
            BundleState::Resolved => "RESOLVED",
            BundleState::Starting => "STARTING",
            BundleState::Active => "ACTIVE",
            BundleState::Stopping => "STOPPING",
            BundleState::Uninstalled => "UNINSTALLED",
        }
    }

    /// Parses the constant-style name produced by [`as_str`](Self::as_str).
    ///
    /// # Errors
    ///
    /// Returns the offending string for unknown names.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "INSTALLED" => Ok(BundleState::Installed),
            "RESOLVED" => Ok(BundleState::Resolved),
            "STARTING" => Ok(BundleState::Starting),
            "ACTIVE" => Ok(BundleState::Active),
            "STOPPING" => Ok(BundleState::Stopping),
            "UNINSTALLED" => Ok(BundleState::Uninstalled),
            other => Err(format!("unknown bundle state {other:?}")),
        }
    }
}

impl fmt::Display for BundleState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [BundleState; 6] = [
        BundleState::Installed,
        BundleState::Resolved,
        BundleState::Starting,
        BundleState::Active,
        BundleState::Stopping,
        BundleState::Uninstalled,
    ];

    #[test]
    fn string_round_trip() {
        for s in ALL {
            assert_eq!(BundleState::parse(s.as_str()).unwrap(), s);
            assert_eq!(s.to_string(), s.as_str());
        }
        assert!(BundleState::parse("BOGUS").is_err());
    }

    #[test]
    fn predicates() {
        assert!(BundleState::Active.is_active());
        assert!(!BundleState::Resolved.is_active());
        assert!(BundleState::Resolved.is_resolved());
        assert!(BundleState::Active.is_resolved());
        assert!(!BundleState::Installed.is_resolved());
        assert!(!BundleState::Uninstalled.is_resolved());
    }

    #[test]
    fn start_stop_legality() {
        assert!(BundleState::Installed.can_start());
        assert!(BundleState::Resolved.can_start());
        assert!(!BundleState::Active.can_start());
        assert!(!BundleState::Uninstalled.can_start());
        assert!(BundleState::Active.can_stop());
        assert!(!BundleState::Resolved.can_stop());
    }

    #[test]
    fn uninstall_legality() {
        assert!(BundleState::Installed.can_uninstall());
        assert!(BundleState::Active.can_uninstall());
        assert!(!BundleState::Uninstalled.can_uninstall());
        assert!(!BundleState::Starting.can_uninstall());
    }

    #[test]
    fn default_is_installed() {
        assert_eq!(BundleState::default(), BundleState::Installed);
    }
}
